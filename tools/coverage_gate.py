"""Line-coverage gate for the discovery, detection, sharding, engine and
kernel layers.

Runs the discovery + detection + sharding + engine + kernels test
selection (including the rule-maintenance differential gate in
``tests/discovery/test_maintenance.py``) under a coverage tracer and
fails when the measured line coverage of ``src/repro/discovery/``,
``src/repro/detection/``, ``src/repro/sharding/``,
``src/repro/engine/``, or ``src/repro/kernels/`` drops below the
committed floor.  Built on the
standard library's ``trace`` module so it needs no dependency (this
environment ships without the third-party ``coverage`` package; the
measurement contract is the same if a future environment swaps it in).

Usage::

    PYTHONPATH=src python tools/coverage_gate.py            # gate (used by `make coverage`)
    PYTHONPATH=src python tools/coverage_gate.py --report   # per-file table too

The floors are deliberately below current measurements (headroom for
refactors) but high enough that a new module landing without tests, or a
test selection rot, trips the gate.
"""

from __future__ import annotations

import argparse
import sys
import trace
from pathlib import Path
from typing import Dict, Iterable, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
sys.path.insert(0, str(SRC_ROOT))

#: measured directory → minimum line coverage (fraction); all measure
#: ~90% today, floored at 85% so refactors have headroom
FLOORS: Dict[str, float] = {
    "src/repro/discovery": 0.85,
    "src/repro/detection": 0.85,
    "src/repro/sharding": 0.85,
    "src/repro/engine": 0.85,
    "src/repro/kernels": 0.85,
}

#: individual files gated on their own floor — the out-of-core session's
#: edit-overlay, object-store and remote-client layers are small enough
#: that a directory average would hide any one losing its tests entirely
FILE_FLOORS: Dict[str, float] = {
    "src/repro/sharding/overlay.py": 0.85,
    "src/repro/sharding/object_store.py": 0.85,
    "src/repro/sharding/remote.py": 0.85,
    "src/repro/sharding/prefetch.py": 0.85,
    "src/repro/engine/worker_pool.py": 0.85,
}

#: the test selection exercising those directories; the 256k
#: bounded-memory tests are excluded — under the tracer they take tens
#: of minutes and their tracemalloc assertions measure the tracer's own
#: bookkeeping, while covering no lines the smaller differentials miss
TEST_ARGS = [
    "-q",
    "-p",
    "no:cacheprovider",
    "-k",
    "not OutOfCoreBoundedMemory",
    "tests/discovery",
    "tests/detection",
    "tests/sharding",
    "tests/engine",
    "tests/kernels",
]


class _PathIgnore:
    """Filename-keyed replacement for ``trace._Ignore``.

    The stdlib helper caches its verdicts by *bare module basename*, so
    once any ``stats.py`` or ``__init__.py`` under ``sys.prefix`` is
    ignored, every same-named project file is silently ignored too and
    reports 0% coverage.  Keying the cache by filename keeps the speed
    of ignoredirs without the collisions.
    """

    def __init__(self, dirs: Iterable[str]):
        import os

        self._dirs = tuple(os.path.join(os.path.realpath(d), "") for d in dirs)
        self._cache: Dict[str, bool] = {}

    def names(self, filename: str, modulename: str) -> bool:
        verdict = self._cache.get(filename)
        if verdict is None:
            verdict = self._cache[filename] = filename.startswith(self._dirs)
        return verdict


def run_tests_traced() -> Tuple[int, Set[Tuple[str, int]]]:
    """Run the test selection under the stdlib tracer; returns the pytest
    exit code and the set of (filename, lineno) lines executed."""
    import pytest

    tracer = trace.Trace(count=1, trace=0)
    tracer.ignore = _PathIgnore([sys.prefix, sys.exec_prefix])
    exit_code = tracer.runfunc(pytest.main, list(TEST_ARGS))
    counts = tracer.results().counts  # (filename, lineno) → hits
    return int(exit_code), set(counts)


def executable_lines(path: Path) -> Set[int]:
    """The line numbers the tracer could possibly report for a file
    (docstrings, blank lines and comments excluded)."""
    # trace's private helper reads the compiled code objects, which is
    # exactly the denominator the tracer's own reports use.
    return set(trace._find_executable_linenos(str(path)))


def measure_directory(
    directory: Path, executed: Set[Tuple[str, int]]
) -> Tuple[int, int, List[Tuple[str, int, int]]]:
    """(covered, total, per-file rows) over a directory's python files."""
    covered_total = 0
    lines_total = 0
    rows: List[Tuple[str, int, int]] = []
    for path in sorted(directory.rglob("*.py")):
        lines = executable_lines(path)
        resolved = str(path.resolve())
        hit = {lineno for filename, lineno in executed if filename == resolved}
        covered = len(lines & hit)
        covered_total += covered
        lines_total += len(lines)
        rows.append((str(path.relative_to(REPO_ROOT)), covered, len(lines)))
    return covered_total, lines_total, rows


def main(argv: Iterable[str] = ()) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report", action="store_true", help="print the per-file coverage table"
    )
    args = parser.parse_args(list(argv))

    exit_code, executed = run_tests_traced()
    if exit_code != 0:
        print(f"coverage gate: test run failed (pytest exit {exit_code})")
        return exit_code

    failures = []
    print("\ncoverage gate:")
    for relative, floor in FLOORS.items():
        covered, total, rows = measure_directory(REPO_ROOT / relative, executed)
        ratio = covered / total if total else 1.0
        verdict = "ok" if ratio >= floor else "BELOW FLOOR"
        print(
            f"  {relative:24s} {covered:5d}/{total:5d} lines "
            f"{ratio:6.1%}  (floor {floor:.0%})  {verdict}"
        )
        if args.report:
            for name, file_covered, file_total in rows:
                file_ratio = file_covered / file_total if file_total else 1.0
                print(f"    {name:44s} {file_covered:4d}/{file_total:4d} {file_ratio:6.1%}")
        if ratio < floor:
            failures.append(relative)
    for relative, floor in FILE_FLOORS.items():
        path = REPO_ROOT / relative
        lines = executable_lines(path)
        resolved = str(path.resolve())
        covered = len(lines & {ln for fn, ln in executed if fn == resolved})
        ratio = covered / len(lines) if lines else 1.0
        verdict = "ok" if ratio >= floor else "BELOW FLOOR"
        print(
            f"  {relative:40s} {covered:5d}/{len(lines):5d} lines "
            f"{ratio:6.1%}  (floor {floor:.0%})  {verdict}"
        )
        if ratio < floor:
            failures.append(relative)
    if failures:
        print(f"\ncoverage gate FAILED: {failures} below their floors")
        return 1
    print("\ncoverage gate ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
