"""Columnar distinct-value encoding.

One pass factorizes a column into contiguous ``int32`` codes assigned in
first-appearance order — the same order every scalar dict in the
pipeline uses for insertion, which is what lets the kernels reproduce
scalar dict orders exactly.  Everything derived from the codes is lazy:

* ``rows_by_code`` — one stable argsort + bincount split, giving each
  distinct value its ascending row-id array;
* ``lengths`` — ``len()`` per distinct value, vectorized consumers index
  it by code;
* ``signatures`` — a uint8 char-class bitmask per distinct value, the
  sound prefilter of the batch matcher (a value whose signature sets a
  bit outside a pattern's allowed mask cannot match it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.kernels.runtime import HAVE_NUMPY, np
from repro.patterns.alphabet import CharClass, classify_char

#: one bit per leaf class of the generalization tree (``\A`` = all bits)
CLASS_BITS: Dict[CharClass, int] = {
    CharClass.UPPER: 1,
    CharClass.LOWER: 2,
    CharClass.DIGIT: 4,
    CharClass.SYMBOL: 8,
}

#: the mask with every class bit set (what ``\A`` allows)
ALL_CLASS_BITS = 0xF


def signature_bits(value: str) -> int:
    """The char-class bitmask of one value (0 for the empty string)."""
    bits = 0
    for char in set(value):
        bits |= CLASS_BITS[classify_char(char)]
    return bits


class ColumnEncoding:
    """One column factorized into distinct values and int32 codes."""

    __slots__ = ("distinct", "codes", "_rows_by_code", "_counts", "_lengths", "_signatures")

    def __init__(self, distinct: List[str], codes) -> None:
        #: distinct values in first-appearance order; ``distinct[codes[i]]``
        #: is row ``i``'s value
        self.distinct = distinct
        #: int32 numpy array, one code per row
        self.codes = codes
        self._rows_by_code: Optional[list] = None
        self._counts = None
        self._lengths = None
        self._signatures = None

    @property
    def n_rows(self) -> int:
        return len(self.codes)

    @property
    def n_distinct(self) -> int:
        return len(self.distinct)

    def counts(self):
        """int64 array: number of rows per code."""
        counts = self._counts
        if counts is None:
            counts = self._counts = np.bincount(
                self.codes, minlength=len(self.distinct)
            )
        return counts

    def rows_by_code(self) -> list:
        """Per code, the ascending int64 array of rows holding it.

        Built with one stable argsort over the whole column; stability
        keeps each code's rows in original (ascending) row order.
        """
        rows = self._rows_by_code
        if rows is None:
            order = np.argsort(self.codes, kind="stable")
            counts = self.counts()
            rows = self._rows_by_code = np.split(
                order, np.cumsum(counts[:-1])
            ) if len(self.distinct) else []
        return rows

    def lengths(self):
        """int32 array: ``len(distinct[code])`` per code."""
        lengths = self._lengths
        if lengths is None:
            lengths = self._lengths = np.fromiter(
                (len(value) for value in self.distinct),
                dtype=np.int32,
                count=len(self.distinct),
            )
        return lengths

    def signatures(self):
        """uint8 array: char-class bitmask per code (see CLASS_BITS)."""
        signatures = self._signatures
        if signatures is None:
            signatures = self._signatures = np.fromiter(
                (signature_bits(value) for value in self.distinct),
                dtype=np.uint8,
                count=len(self.distinct),
            )
        return signatures


def encode_column(values: Sequence[str]) -> ColumnEncoding:
    """Factorize one column (codes in first-appearance order)."""
    if not HAVE_NUMPY:
        raise RuntimeError("encode_column requires numpy; gate on kernels_enabled()")
    return encode_chunks((values,))


def encode_chunks(chunks) -> ColumnEncoding:
    """Factorize one logical column delivered as value chunks (e.g. one
    chunk per resident shard), without concatenating them.

    Codes accumulate in a compact ``array('i')`` — on a large column the
    boxed-int list the obvious implementation builds would transiently
    rival the encoded output itself.
    """
    if not HAVE_NUMPY:
        raise RuntimeError("encode_chunks requires numpy; gate on kernels_enabled()")
    from array import array

    index: Dict[str, int] = {}
    distinct: List[str] = []
    codes = array("i")
    append = codes.append
    setdefault = index.setdefault
    for values in chunks:
        for value in values:
            code = setdefault(value, len(distinct))
            if code == len(distinct):
                distinct.append(value)
            append(code)
    return ColumnEncoding(distinct, np.frombuffer(codes, dtype=np.int32).copy())
