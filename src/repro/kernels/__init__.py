"""Vectorized columnar kernels for the discovery hot path.

The scalar pipeline works one string at a time: ``ColumnTokenization``
walks characters, ``InvertedList.from_tokenization`` appends one posting
per (row, token), the decision function rebuilds per-entry statistics
from posting lists, and ``extract_pair_groups`` grows a dict-of-dicts
row by row.  The kernels in this package run the same computation at the
*distinct-value* level over contiguous numpy id arrays:

* :mod:`repro.kernels.encoder` — factorize a column into int32 codes in
  first-appearance order, plus lazy per-distinct lengths, char-class
  signatures, and rows-by-code (one stable argsort);
* :mod:`repro.kernels.tokenize` — batch (key, position, text) triples
  per distinct value, rows inherit by id lookup;
* :mod:`repro.kernels.match` — one-pass batch pattern matching with a
  sound length / literal-prefix / char-class-signature prefilter,
  sharing verdict tables with :class:`repro.perf.memo.MatchMemo`;
* :mod:`repro.kernels.groupby` — argsort-based pair-group builder for
  :mod:`repro.sharding.stats`;
* :mod:`repro.kernels.mine` — the Figure 2 loop body (constant decision
  function, greedy selection, variable blocking) over encoded columns.

Every kernel is an *equivalence-preserving* replacement: given the same
inputs it returns byte-identical Python structures (same dict insertion
orders, same floats, same tie-breaks) as the scalar code it shadows.
``tests/kernels`` asserts this on randomized columns, and the PR-4/PR-5
differential harnesses remain the end-to-end oracle.  When numpy is
absent the :mod:`repro.kernels.runtime` gate reports the kernels as
unavailable and every caller stays on the scalar path.
"""

from repro.kernels.runtime import HAVE_NUMPY, forced_kernel_mode, kernels_enabled

__all__ = ["HAVE_NUMPY", "forced_kernel_mode", "kernels_enabled"]
