"""Vectorized pair-group builder.

Reproduces :func:`repro.sharding.stats.extract_pair_groups` — the nested
``LHS value → RHS value → [global row ids]`` map — from one argsort over
combined ``(lhs_code << 32) | rhs_code`` keys instead of a per-row
dict-of-dict loop.

Ordering is part of the contract (the scalar map's insertion orders flow
into violation emission):

* outer keys appear in first-occurrence order of the LHS value, which is
  exactly ascending LHS *code* order (codes are assigned on first
  appearance), so iterating the sorted groups directly is correct;
* inner keys appear in first-occurrence order of the RHS value *within
  that LHS group* — which is **not** global RHS code order — so each LHS
  group's subgroups are reordered by their first (minimum) row id;
* row lists ascend because the argsort is stable.
"""

from __future__ import annotations

from typing import Sequence

from repro.dataset.rowids import row_ids_from_numpy
from repro.kernels.encoder import encode_column
from repro.kernels.runtime import np
from repro.sharding.stats import PairGroups


def pair_groups_kernel(
    lhs_values: Sequence[str],
    rhs_values: Sequence[str],
    offset: int,
) -> PairGroups:
    """One shard's pair groups, byte-identical to the scalar extractor."""
    n = len(lhs_values)
    groups: PairGroups = {}
    if n == 0:
        return groups
    lhs = encode_column(lhs_values)
    rhs = encode_column(rhs_values)
    combined = (lhs.codes.astype(np.int64) << 32) | rhs.codes.astype(np.int64)
    order = np.argsort(combined, kind="stable")
    ordered = combined[order]
    if offset:
        order = order + offset
    order = order.astype(np.int32, copy=False)
    # group boundaries: positions where the combined key changes
    boundaries = np.flatnonzero(ordered[1:] != ordered[:-1]) + 1
    starts = [0, *boundaries.tolist(), n]
    lhs_distinct = lhs.distinct
    rhs_distinct = rhs.distinct
    current_code = -1
    subgroups = []  # (first_row, rhs_value, rows) of the current LHS code

    def flush() -> None:
        if not subgroups:
            return
        subgroups.sort(key=lambda item: item[0])
        groups[lhs_distinct[current_code]] = {
            rhs_value: rows for _first, rhs_value, rows in subgroups
        }
        subgroups.clear()

    for i in range(len(starts) - 1):
        start, stop = starts[i], starts[i + 1]
        key = int(ordered[start])
        lhs_code = key >> 32
        rhs_code = key & 0xFFFFFFFF
        rows = row_ids_from_numpy(order[start:stop])
        if lhs_code != current_code:
            flush()
            current_code = lhs_code
        subgroups.append((rows[0], rhs_distinct[rhs_code], rows))
    flush()
    return groups
