"""The Figure 2 loop body over encoded columns.

These kernels reproduce the scalar miners *exactly* — same candidate
dicts in the same insertion order, same tie-breaks, same floats — while
doing all per-row work as numpy array operations over interned id
arrays:

* the inverted list never materializes postings: each entry is the list
  of distinct-value *codes* carrying its (token, position) key, and the
  row ids, support and RHS distribution fall out of ``rows_by_code`` /
  ``bincount``-style reductions;
* the decision function's pattern synthesis and match re-check run over
  the entry's *distinct* covered values (the scalar helpers are
  duplicate- and order-insensitive, which the equivalence tests pin
  down), with verdicts shared through the same ``MATCH_MEMO`` tables;
* variable mining reduces the column pair to distinct
  ``(lhs_code, rhs_code)`` counts once (one ``np.unique``) and evaluates
  every prefix length / token position against those counts.

Each kernel bails out with ``None`` when the caller customized the
pluggable pieces (a non-default decision function or miner subclass) —
the discoverer then falls back to the scalar loop body for that
candidate, so extensions keep working unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.constrained.constrained_pattern import constrained_prefix
from repro.dataset.rowids import row_ids_from_numpy
from repro.discovery.config import DiscoveryConfig
from repro.discovery.constant_miner import ConstantPfdMiner
from repro.discovery.decision import MajorityDecision, PatternTupleCandidate
from repro.discovery.variable_miner import VariableCandidate, VariablePfdMiner
from repro.kernels.encoder import ColumnEncoding
from repro.kernels.match import batch_verdicts
from repro.kernels.runtime import np
from repro.kernels.tokenize import Triples
from repro.patterns.generalize import generalize_strings, generalize_with_literal_prefix
from repro.patterns.pattern import Pattern
from repro.patterns.tokenizer import cached_tokenize
from repro.perf.memo import MATCH_MEMO
from repro.perf.timers import StageTimers, stage_or_null as _stage

_RHS_MASK = 0xFFFFFFFF


def _merged_rows(rows_by_code: list, codes: Sequence[int]):
    """Ascending row ids of several codes (each block already ascends)."""
    if len(codes) == 1:
        return rows_by_code[codes[0]]
    return np.sort(np.concatenate([rows_by_code[code] for code in codes]))


# -- constant mining ---------------------------------------------------------------


def mine_constant_kernel(
    lhs: ColumnEncoding,
    rhs: ColumnEncoding,
    triples_by_code: List[Triples],
    config: DiscoveryConfig,
    miner: ConstantPfdMiner,
    timers: Optional[StageTimers] = None,
) -> Optional[List[PatternTupleCandidate]]:
    """``miner.mine(...)`` over encoded columns, or ``None`` when the
    miner's decision function is customized beyond what this kernel
    reproduces (the caller then runs the scalar loop body)."""
    if type(miner.decision) is not MajorityDecision:
        return None

    # Entry map: (token, position) → codes carrying it.  Iterating codes
    # in first-appearance order reproduces the scalar inverted list's
    # key insertion order (the first row containing a key is always the
    # first appearance of one of its codes).
    with _stage(timers, "index_build"):
        entry_codes: Dict[Tuple[str, int], List[int]] = {}
        for code, triples in enumerate(triples_by_code):
            for key, position, _text in triples:
                entry = entry_codes.get((key, position))
                if entry is None:
                    entry_codes[(key, position)] = [code]
                else:
                    entry.append(code)

    with _stage(timers, "mine_constant"):
        rows_by_code = lhs.rows_by_code()
        counts = lhs.counts()
        lhs_distinct = lhs.distinct
        lhs_lengths = lhs.lengths()
        lhs_signatures = lhs.signatures()
        rhs_codes = rhs.codes
        rhs_distinct = rhs.distinct
        min_support = config.min_support
        min_agreement = config.min_agreement
        candidates: List[PatternTupleCandidate] = []

        for (token, position), codes in entry_codes.items():
            support = 0
            for code in codes:
                support += int(counts[code])
            if support < min_support:
                continue
            rows = _merged_rows(rows_by_code, codes)
            entry_rhs = rhs_codes[rows]
            top_values, top_counts = np.unique(entry_rhs, return_counts=True)
            best = 0
            if len(top_values) > 1:
                # the scalar tie-break: max by (count, RHS string)
                for i in range(1, len(top_values)):
                    if (top_counts[i], rhs_distinct[top_values[i]]) > (
                        top_counts[best],
                        rhs_distinct[top_values[best]],
                    ):
                        best = i
            top_code = int(top_values[best])
            top_count = int(top_counts[best])
            top_value = rhs_distinct[top_code]
            if top_value == "":
                continue
            if top_count / support < min_agreement:
                continue
            covered_values = [lhs_distinct[code] for code in codes]
            if position == 0 and all(v.startswith(token) for v in covered_values):
                pattern = generalize_with_literal_prefix(covered_values, len(token))
            else:
                pattern = MajorityDecision._contains_token_pattern(
                    token, position, covered_values
                )
            if pattern is None:
                continue
            if len(codes) >= 64:
                code_index = np.asarray(codes)
                verdicts = batch_verdicts(
                    pattern,
                    covered_values,
                    memo=MATCH_MEMO,
                    lengths=lhs_lengths[code_index],
                    signatures=lhs_signatures[code_index],
                )
            else:
                verdicts = batch_verdicts(pattern, covered_values, memo=MATCH_MEMO)
            if all(verdicts):
                matching_rows = rows
            else:
                kept = [code for code, ok in zip(codes, verdicts) if ok]
                if not kept:
                    continue
                matching_rows = _merged_rows(rows_by_code, kept)
            n_matching = len(matching_rows)
            if n_matching < min_support:
                continue
            agree_mask = rhs_codes[matching_rows] == top_code
            n_agreeing = int(agree_mask.sum())
            if n_agreeing / n_matching < min_agreement:
                continue
            candidates.append(
                PatternTupleCandidate(
                    lhs_pattern=pattern,
                    rhs_constant=top_value,
                    support=n_matching,
                    agreement=n_agreeing / n_matching,
                    covered_tuple_ids=row_ids_from_numpy(matching_rows),
                    violating_tuple_ids=row_ids_from_numpy(matching_rows[~agree_mask]),
                    source_token=token,
                    source_position=position,
                )
            )
        return miner.select(candidates)


def coverage_kernel(
    candidates: Sequence[PatternTupleCandidate], lhs: ColumnEncoding
) -> float:
    """``miner.coverage(...)`` over an encoded column (same int ratio)."""
    non_empty = int(lhs.counts()[lhs.lengths() > 0].sum())
    if non_empty == 0:
        return 0.0
    covered = np.zeros(lhs.n_rows, dtype=bool)
    for candidate in candidates:
        covered[candidate.covered_tuple_ids] = True
    return int(covered.sum()) / non_empty


# -- variable mining ---------------------------------------------------------------


def mine_variable_kernel(
    lhs: ColumnEncoding,
    rhs: ColumnEncoding,
    mode: str,
    config: DiscoveryConfig,
    miner: VariablePfdMiner,
    timers: Optional[StageTimers] = None,
) -> Optional[List[VariableCandidate]]:
    """``miner.mine(...)`` over encoded columns, or ``None`` for miner
    subclasses (the caller then runs the scalar path)."""
    if type(miner) is not VariablePfdMiner:
        return None
    with _stage(timers, "mine_variable"):
        pair_mask = (lhs.lengths()[lhs.codes] > 0) & (rhs.lengths()[rhs.codes] > 0)
        n_pairs = int(pair_mask.sum())
        if n_pairs < 2 * config.min_support:
            return []
        combined = (lhs.codes[pair_mask].astype(np.int64) << 32) | rhs.codes[
            pair_mask
        ].astype(np.int64)
        keys, key_counts = np.unique(combined, return_counts=True)
        pair_lhs = (keys >> 32).tolist()
        pair_rhs = (keys & _RHS_MASK).tolist()
        pair_counts = key_counts.tolist()
        if mode in ("prefix", "ngram"):
            candidate = _mine_prefix_kernel(
                lhs, pair_lhs, pair_rhs, pair_counts, config
            )
        else:
            candidate = _mine_token_kernel(
                lhs, pair_lhs, pair_rhs, pair_counts, config, miner
            )
        return [candidate] if candidate is not None else []


def _block_stats(
    block_keys: Sequence, pair_rhs: Sequence[int], pair_counts: Sequence[int]
) -> Tuple[float, int, int, int]:
    """(agreement, #blocks, #multi-row blocks, total rows) of blocked
    distinct pairs — the kernel form of ``_block_agreement``."""
    blocks: Dict[object, Dict[int, int]] = {}
    for block_key, rhs_code, count in zip(block_keys, pair_rhs, pair_counts):
        by_rhs = blocks.get(block_key)
        if by_rhs is None:
            by_rhs = blocks[block_key] = {}
        by_rhs[rhs_code] = by_rhs.get(rhs_code, 0) + count
    total = 0
    agreeing = 0
    multi = 0
    for by_rhs in blocks.values():
        block_total = sum(by_rhs.values())
        total += block_total
        agreeing += max(by_rhs.values())
        if block_total >= 2:
            multi += 1
    if total == 0:
        return 0.0, 0, 0, 0
    return agreeing / total, len(blocks), multi, total


def _mine_prefix_kernel(
    lhs: ColumnEncoding,
    pair_lhs: List[int],
    pair_rhs: List[int],
    pair_counts: List[int],
    config: DiscoveryConfig,
) -> Optional[VariableCandidate]:
    distinct = lhs.distinct
    length_of = {code: len(distinct[code]) for code in set(pair_lhs)}
    lengths = sorted(set(length_of.values()))
    if not lengths:
        return None
    typical_length = lengths[len(lengths) // 2]
    n_rows = lhs.n_rows
    for k in config.effective_prefix_lengths(typical_length):
        if k >= typical_length:
            break
        usable = [
            i for i, code in enumerate(pair_lhs) if length_of[code] > k
        ]
        usable_rows = sum(pair_counts[i] for i in usable)
        if usable_rows < 2 * config.min_support:
            continue
        agreement, n_blocks, n_multi, _total = _block_stats(
            [distinct[pair_lhs[i]][:k] for i in usable],
            [pair_rhs[i] for i in usable],
            [pair_counts[i] for i in usable],
        )
        coverage = usable_rows / max(1, n_rows)
        if n_multi < 1 or n_blocks < 2:
            continue
        if agreement < config.min_agreement:
            continue
        if coverage < config.min_coverage:
            continue
        usable_values = [distinct[code] for code in dict.fromkeys(pair_lhs[i] for i in usable)]
        remainder = generalize_strings([value[k:] for value in usable_values])
        if remainder is None:
            remainder = Pattern.any_string()
        head = generalize_strings([value[:k] for value in usable_values])
        pattern = constrained_prefix(k, remainder, head=head)
        return VariableCandidate(
            constrained_pattern=pattern,
            coverage=coverage,
            agreement=agreement,
            n_blocks=n_blocks,
            n_multi_blocks=n_multi,
            description=f"first {k} characters determine the RHS",
        )
    return None


def _mine_token_kernel(
    lhs: ColumnEncoding,
    pair_lhs: List[int],
    pair_rhs: List[int],
    pair_counts: List[int],
    config: DiscoveryConfig,
    miner: VariablePfdMiner,
) -> Optional[VariableCandidate]:
    distinct = lhs.distinct
    tokens_of = {code: cached_tokenize(distinct[code]) for code in set(pair_lhs)}
    n_rows = lhs.n_rows
    for position in range(config.max_constrained_token_position + 1):
        usable = [
            i
            for i, code in enumerate(pair_lhs)
            if len(tokens_of[code]) > position
        ]
        usable_rows = sum(pair_counts[i] for i in usable)
        if usable_rows < 2 * config.min_support:
            continue
        agreement, n_blocks, n_multi, _total = _block_stats(
            [
                (
                    position,
                    tokens_of[pair_lhs[i]][position].normalized
                    or tokens_of[pair_lhs[i]][position].text,
                )
                for i in usable
            ],
            [pair_rhs[i] for i in usable],
            [pair_counts[i] for i in usable],
        )
        coverage = usable_rows / max(1, n_rows)
        if n_multi < 1 or n_blocks < 2:
            continue
        if agreement < config.min_agreement:
            continue
        if coverage < config.min_coverage:
            continue
        usable_codes = list(dict.fromkeys(pair_lhs[i] for i in usable))
        # the scalar pattern builder is duplicate-/order-insensitive, so
        # the deduplicated per-distinct token lists yield the same pattern
        pattern = miner._token_constraint_pattern(
            [tokens_of[code] for code in usable_codes], position
        )
        if pattern is None:
            continue
        matched = 0
        matches = MATCH_MEMO.matcher(pattern)
        verdict_of: Dict[int, bool] = {}
        for code in usable_codes:
            joined = " ".join(token.text for token in tokens_of[code])
            verdict_of[code] = matches(joined)
        for i in usable:
            if verdict_of[pair_lhs[i]]:
                matched += pair_counts[i]
        if matched / usable_rows < config.min_coverage:
            continue
        return VariableCandidate(
            constrained_pattern=pattern,
            coverage=coverage,
            agreement=agreement,
            n_blocks=n_blocks,
            n_multi_blocks=n_multi,
            description=f"the token at position {position} determines the RHS",
        )
    return None
