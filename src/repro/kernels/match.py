"""Batch pattern matching over distinct values.

Evaluates one compiled pattern against a whole list of distinct values
in a single pass:

1. memoized verdicts are read from the pattern's
   :class:`~repro.perf.memo.MatchMemo` table (the same table every
   scalar ``matches`` call uses, so the two paths share work);
2. unknown values go through a *sound* prefilter — length bounds,
   literal prefix, and the char-class signature mask — vectorized with
   numpy when the batch is large enough to amortize array construction;
3. only the survivors run the regex/NFA matcher, and their verdicts are
   written back to the memo table.

Every prefilter rejection is provably a non-match (a matching string
must satisfy the pattern's min/max length, start with its literal
prefix, and use only characters whose classes some atom can consume),
so the returned verdicts are exactly ``[pattern.matches(v) for v in
values]``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Sequence

from repro.kernels.encoder import ALL_CLASS_BITS, CLASS_BITS
from repro.kernels.runtime import np
from repro.patterns.alphabet import CharClass, classify_char
from repro.patterns.pattern import Pattern
from repro.patterns.syntax import ClassAtom, Literal
from repro.perf import register_cache_clearer
from repro.perf.memo import MatchMemo

_MISS = object()

#: below this many unknown values the numpy prefilter costs more than a
#: plain loop (array construction dominates)
_VECTOR_THRESHOLD = 64


@lru_cache(maxsize=4096)
def pattern_class_mask(pattern: Pattern) -> int:
    """The union of char-class bits the pattern's atoms can consume.

    A value whose signature (see
    :meth:`repro.kernels.encoder.ColumnEncoding.signatures`) sets a bit
    outside this mask contains a character no atom can match.  Patterns
    mentioning ``\\A`` allow everything.
    """
    mask = 0
    for element in pattern.elements:
        atom = element.atom
        if isinstance(atom, Literal):
            mask |= CLASS_BITS[classify_char(atom.char)]
        elif isinstance(atom, ClassAtom):
            if atom.char_class is CharClass.ANY:
                return ALL_CLASS_BITS
            mask |= CLASS_BITS[atom.char_class]
        else:  # unknown atom kind: no filtering claim possible
            return ALL_CLASS_BITS
    return mask


register_cache_clearer(pattern_class_mask.cache_clear)


def batch_verdicts(
    pattern: Pattern,
    values: Sequence[str],
    memo: Optional[MatchMemo] = None,
    lengths=None,
    signatures=None,
) -> List[bool]:
    """``[pattern.matches(v) for v in values]`` in one pass.

    ``lengths`` and ``signatures`` optionally carry precomputed arrays
    aligned with ``values`` (the mining kernels pass slices of the
    column encoding); otherwise lengths are computed on the fly and the
    signature prefilter is skipped.
    """
    n = len(values)
    verdicts: List[bool] = [False] * n
    table = memo.match_table(pattern) if memo is not None else None
    if table is not None:
        unknown = []
        append = unknown.append
        get = table.get
        for i, value in enumerate(values):
            cached = get(value, _MISS)
            if cached is _MISS:
                append(i)
            else:
                verdicts[i] = cached
        memo.count_batch(hits=n - len(unknown), misses=len(unknown))
    else:
        unknown = list(range(n))
    if not unknown:
        return verdicts

    min_length = pattern.min_length()
    max_length = pattern.max_length()
    prefix = pattern.literal_prefix()
    mask = pattern_class_mask(pattern)
    compute = pattern.matches

    survivors = unknown
    if np is not None and len(unknown) >= _VECTOR_THRESHOLD:
        idx = np.asarray(unknown, dtype=np.int64)
        if lengths is not None:
            value_lengths = np.asarray(lengths)[idx]
        else:
            value_lengths = np.fromiter(
                (len(values[i]) for i in unknown),
                dtype=np.int64,
                count=len(unknown),
            )
        keep = value_lengths >= min_length
        if max_length is not None:
            keep &= value_lengths <= max_length
        if signatures is not None and mask != ALL_CLASS_BITS:
            keep &= (np.asarray(signatures)[idx] & ~np.uint8(mask)) == 0
        survivors = idx[keep].tolist()
        if table is not None:
            for i in idx[~keep].tolist():
                table[values[i]] = False
        for i in survivors:
            value = values[i]
            if prefix and not value.startswith(prefix):
                verdict = False
            else:
                verdict = compute(value)
            verdicts[i] = verdict
            if table is not None:
                table[value] = verdict
        return verdicts

    for i in survivors:
        value = values[i]
        length = len(value)
        if (
            length < min_length
            or (max_length is not None and length > max_length)
            or (prefix and not value.startswith(prefix))
        ):
            verdict = False
        else:
            verdict = compute(value)
        verdicts[i] = verdict
        if table is not None:
            table[value] = verdict
    return verdicts


def batch_matching_values(
    pattern: Pattern,
    values: Sequence[str],
    memo: Optional[MatchMemo] = None,
) -> List[str]:
    """The subsequence of ``values`` matching ``pattern`` (one batch
    pass; order preserved)."""
    verdicts = batch_verdicts(pattern, values, memo=memo)
    return [value for value, verdict in zip(values, verdicts) if verdict]
