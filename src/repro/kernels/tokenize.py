"""Batch tokenization over the distinct-value array.

Produces exactly the (key, position, text) triples of
:meth:`repro.discovery.inverted_index.ColumnTokenization.extract`, once
per *distinct* value; rows inherit their triples by code lookup.  The
token mode uses one compiled ``\\S+`` scan per value instead of the
scalar per-character loop — Python's ``str.isspace()`` and the regex
``\\s`` class agree on every code point, so the split is identical.
N-gram and prefix modes are plain slicing, already the cheapest form.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.kernels.encoder import ColumnEncoding
from repro.patterns.tokenizer import _PUNCTUATION_STRIP
from repro.perf.interning import InternPool

#: one row's triples: ((key, position, raw token text), …)
Triples = Tuple[Tuple[str, int, str], ...]

_WORDS = re.compile(r"\S+")


def value_triples(
    value: str, mode: str, ngram_size: int, pool: InternPool
) -> Triples:
    """One distinct value's (key, position, text) triples.

    Byte-identical to the triples ``ColumnTokenization.extract`` caches
    per distinct value (keys interned, empty keys impossible for
    non-empty token text).
    """
    if value == "":
        return ()
    intern = pool.intern
    if mode == "token":
        triples = []
        for position, match in enumerate(_WORDS.finditer(value)):
            text = match.group()
            key = text.strip(_PUNCTUATION_STRIP) or text
            triples.append((intern(key), position, intern(text)))
        return tuple(triples)
    if mode == "ngram":
        if len(value) < ngram_size:
            return ()
        triples = []
        for start in range(len(value) - ngram_size + 1):
            interned = intern(value[start : start + ngram_size])
            triples.append((interned, start, interned))
        return tuple(triples)
    if mode == "prefix":
        triples = []
        for size in (1, 2, 3, 4, 5):
            if size <= len(value):
                interned = intern(value[:size])
                triples.append((interned, 0, interned))
        return tuple(triples)
    raise ValueError(f"unknown token mode {mode!r}")


def batch_tokenize(
    encoding: ColumnEncoding,
    mode: str,
    ngram_size: int,
    pool: Optional[InternPool] = None,
) -> List[Triples]:
    """Per-code triples for a whole encoded column, one pass over the
    distinct values."""
    pool = InternPool() if pool is None else pool
    return [
        value_triples(value, mode, ngram_size, pool)
        for value in encoding.distinct
    ]


def tokenization_from_encoding(
    encoding: ColumnEncoding,
    mode: str,
    ngram_size: int,
    triples_by_code: Optional[List[Triples]] = None,
):
    """The row-level ``ColumnTokenization`` view of an encoded column
    (rows inherit their code's triples by lookup).

    Used when a candidate needs the scalar loop body (customized miners
    the kernels do not reproduce) — the distinct-level work is reused,
    only the per-row list is materialized.
    """
    # local import: repro.discovery pulls in the discoverer, which
    # imports this module — a top-level import would be circular
    from repro.discovery.inverted_index import ColumnTokenization

    if triples_by_code is None:
        triples_by_code = batch_tokenize(encoding, mode, ngram_size)
    row_tokens = [triples_by_code[code] for code in encoding.codes.tolist()]
    return ColumnTokenization(mode, ngram_size, row_tokens)
