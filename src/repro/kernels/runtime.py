"""Kernel availability and mode resolution.

numpy is an *optional* accelerator: the import is attempted exactly once
here, and everything else in the package asks :func:`kernels_enabled`
instead of importing numpy itself.  Callers resolve a three-state mode:

* ``"off"`` — never use kernels, even with numpy installed;
* ``"on"``  — use kernels; degrades to the scalar path (rather than
  failing) when numpy is genuinely absent, because results are
  identical either way — the execution plan records the downgrade;
* ``"auto"`` — defer to the process default mode (``"auto"`` unless a
  test pinned it with :func:`forced_kernel_mode`), which ultimately
  means "use kernels exactly when numpy is importable".

``None`` also means "the process default".  The distinction matters for
tests: a config left at ``use_kernels="auto"`` follows
:func:`forced_kernel_mode`, while an explicit ``"on"``/``"off"`` wins
over it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

try:  # pragma: no cover - exercised via tests/kernels/test_fallback.py
    import numpy as np
except Exception:  # pragma: no cover - numpy genuinely absent
    np = None  # type: ignore[assignment]

#: Whether the numpy-backed kernels can run in this process.
HAVE_NUMPY = np is not None

#: The accepted values of ``DiscoveryConfig.use_kernels``.
KERNEL_MODES = ("auto", "on", "off")

_default_mode = "auto"


def default_kernel_mode() -> str:
    """The process-wide mode used when a caller passes ``None``."""
    return _default_mode


def kernels_enabled(mode: Optional[str] = None) -> bool:
    """Resolve a kernel mode to "should this call use the numpy path"."""
    if mode is not None and mode not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {mode!r}; expected one of {KERNEL_MODES}"
        )
    if mode is None or mode == "auto":
        mode = _default_mode
    if mode == "off":
        return False
    # "on" and "auto" both require numpy; "on" without numpy degrades to
    # the (equivalent) scalar path instead of erroring.
    return HAVE_NUMPY


@contextmanager
def forced_kernel_mode(mode: str) -> Iterator[None]:
    """Pin the process default mode (equivalence tests toggle this to
    drive the same code through both paths)."""
    global _default_mode
    if mode not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {mode!r}; expected one of {KERNEL_MODES}"
        )
    previous = _default_mode
    _default_mode = mode
    try:
        yield
    finally:
        _default_mode = previous
