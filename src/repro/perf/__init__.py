"""Hot-path performance subsystem.

Shared, process-wide acceleration state used by the patterns, discovery,
and detection layers:

* :mod:`repro.perf.pattern_cache` — compiled-regex / NFA LRU caches keyed
  by the immutable pattern value;
* :mod:`repro.perf.interning` — token-interning pool for the inverted
  index build;
* :mod:`repro.perf.memo` — :class:`MatchMemo`, per-distinct-value match
  and projection verdicts shared by all rules touching a column;
* :mod:`repro.perf.table_cache` — per-table derived artifacts (pattern
  column indexes) with mutation-version invalidation;
* :mod:`repro.perf.timers` — lightweight stage timers.

Everything here is a pure cache: results are byte-identical with the
caches cleared, disabled (:func:`caches_disabled`), or hot — guaranteed
by the equivalence tests in ``tests/perf/``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, List

from repro.perf.interning import InternPool, TOKEN_POOL
from repro.perf.lru import LruCache
from repro.perf.memo import MatchMemo, MATCH_MEMO
from repro.perf.pattern_cache import (
    CONSTRAINED_REGEX_CACHE,
    NFA_CACHE,
    REGEX_CACHE,
    clear_pattern_caches,
    constrained_regex_for,
    pattern_cache_stats,
    shared_nfa_for,
    shared_regex_for,
)
from repro.perf.table_cache import TableArtifactCache
from repro.perf.timers import StageTimers

#: Shared cache of per-table artifacts (pattern column indexes, …).
TABLE_ARTIFACTS = TableArtifactCache()

#: Extra ``clear()`` callbacks registered by modules that keep their own
#: memos (e.g. the functools caches in generalize/tokenizer).
_EXTRA_CLEARERS: List[Callable[[], None]] = []


def register_cache_clearer(clear: Callable[[], None]) -> None:
    """Register a callback invoked by :func:`clear_caches`."""
    _EXTRA_CLEARERS.append(clear)


def _clear_value_memos() -> None:
    """Clear the functools-based per-value memos (lazy imports avoid
    import cycles with the patterns package)."""
    from repro.patterns.generalize import clear_generalization_memos
    from repro.patterns.tokenizer import cached_tokenize

    cached_tokenize.cache_clear()
    clear_generalization_memos()


def clear_caches() -> None:
    """Reset every process-wide cache (used by benchmarks and tests)."""
    clear_pattern_caches()
    MATCH_MEMO.clear()
    TABLE_ARTIFACTS.clear()
    TOKEN_POOL.clear()
    _clear_value_memos()
    for clear in _EXTRA_CLEARERS:
        clear()


def cache_stats() -> dict:
    """Hit/miss statistics of the shared caches."""
    stats = pattern_cache_stats()
    stats["match_memo"] = MATCH_MEMO.stats()
    stats["table_artifacts"] = TABLE_ARTIFACTS.stats()
    stats["token_pool"] = {"size": len(TOKEN_POOL)}
    return stats


@contextmanager
def caches_disabled() -> Iterator[None]:
    """Temporarily turn the shared caches off (the uncached slow path).

    Used by the equivalence tests to prove cached and uncached execution
    produce identical results.  The functools-based value memos are
    cleared on entry and exit; the semantic caches (regex/NFA, match
    memo, table artifacts) are fully bypassed.
    """
    switches = [REGEX_CACHE, NFA_CACHE, CONSTRAINED_REGEX_CACHE, MATCH_MEMO, TABLE_ARTIFACTS]
    previous = [s.enabled for s in switches]
    _clear_value_memos()
    for s in switches:
        s.enabled = False
    try:
        yield
    finally:
        for s, was in zip(switches, previous):
            s.enabled = was
        _clear_value_memos()


__all__ = [
    "InternPool",
    "LruCache",
    "MatchMemo",
    "MATCH_MEMO",
    "StageTimers",
    "TableArtifactCache",
    "TABLE_ARTIFACTS",
    "TOKEN_POOL",
    "cache_stats",
    "caches_disabled",
    "clear_caches",
    "constrained_regex_for",
    "register_cache_clearer",
    "shared_nfa_for",
    "shared_regex_for",
]
