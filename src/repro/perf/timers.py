"""Lightweight stage timers for the discovery/detection pipelines.

A ``StageTimers`` accumulates wall-clock totals per named stage with a
single ``perf_counter`` pair per measurement — cheap enough to leave on
in production paths, structured enough for the benchmark harness to
report where time went.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from typing import Dict, Iterator, Optional


class StageTimers:
    """Accumulated wall-clock time per pipeline stage."""

    __slots__ = ("_totals", "_counts")

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time one ``with``-scoped stage (exceptions still record)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - started)

    def add(self, name: str, seconds: float) -> None:
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def totals(self) -> Dict[str, float]:
        return dict(self._totals)

    def merge(self, other: "StageTimers") -> None:
        for name, seconds in other._totals.items():
            self._totals[name] = self._totals.get(name, 0.0) + seconds
            self._counts[name] = self._counts.get(name, 0) + other._counts[name]

    def reset(self) -> None:
        self._totals.clear()
        self._counts.clear()

    def summary(self) -> str:
        """``stage: 1.234s (n=5)`` lines, slowest stage first."""
        lines = [
            f"{name}: {seconds:.3f}s (n={self._counts[name]})"
            for name, seconds in sorted(
                self._totals.items(), key=lambda kv: -kv[1]
            )
        ]
        return "\n".join(lines)


def stage_or_null(timers: Optional[StageTimers], name: str):
    """``timers.stage(name)`` when timers are threaded through, a no-op
    context otherwise — lets hot paths take an optional timers kwarg
    without branching at every call site."""
    return timers.stage(name) if timers is not None else nullcontext()
