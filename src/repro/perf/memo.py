"""Per-distinct-value match memoization shared across rules.

Detection evaluates every rule's LHS pattern against a column's distinct
values, and many rules touch the same column (every constant rule of a
tableau, plus the variable rules over the same attribute).  The
``MatchMemo`` caches two verdicts per (pattern, value) pair:

* ``matches`` — does the value match the pattern (``s ↦ P``);
* ``project`` — the constrained projection ``s(Q)`` used for blocking.

Verdicts are pure functions of the immutable pattern and the value, so
one memo can safely be shared by all rules, all detectors, and all
discovery decisions in the process.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

_MISS = object()


class MatchMemo:
    """Caches per-distinct-value match verdicts keyed by pattern."""

    __slots__ = ("enabled", "max_patterns", "hits", "misses", "_matches", "_projections")

    def __init__(self, enabled: bool = True, max_patterns: int = 2048):
        self.enabled = enabled
        self.max_patterns = max_patterns
        self.hits = 0
        self.misses = 0
        self._matches: Dict[Hashable, Dict[str, bool]] = {}
        self._projections: Dict[Hashable, Dict[str, Optional[Tuple[str, ...]]]] = {}

    # -- verdicts --------------------------------------------------------------

    def matches(self, pattern, value: str) -> bool:
        """Memoized ``pattern.matches(value)``.

        Works for :class:`~repro.patterns.pattern.Pattern` and
        :class:`~repro.constrained.constrained_pattern.ConstrainedPattern`
        alike — anything hashable with a ``matches`` method.
        """
        if not self.enabled:
            return pattern.matches(value)
        per_pattern = self._table_for(self._matches, pattern)
        verdict = per_pattern.get(value, _MISS)
        if verdict is not _MISS:
            self.hits += 1
            return verdict
        self.misses += 1
        verdict = pattern.matches(value)
        per_pattern[value] = verdict
        return verdict

    def project(self, constrained, value: str) -> Optional[Tuple[str, ...]]:
        """Memoized constrained projection (``None`` when no match)."""
        if not self.enabled:
            return constrained.project(value)
        per_pattern = self._table_for(self._projections, constrained)
        projection = per_pattern.get(value, _MISS)
        if projection is not _MISS:
            self.hits += 1
            return projection
        self.misses += 1
        projection = constrained.project(value)
        per_pattern[value] = projection
        return projection

    # -- bound helpers ---------------------------------------------------------

    def matcher(self, pattern):
        """A ``value → bool`` callable bound to the pattern's verdict table.

        Hashes the pattern once instead of once per value — the right
        shape for tight per-row loops.  Only misses are counted in the
        statistics (hits ≈ calls − misses on bound helpers).
        """
        if not self.enabled:
            return pattern.matches
        table = self._table_for(self._matches, pattern)
        compute = pattern.matches

        def matches(value: str) -> bool:
            verdict = table.get(value, _MISS)
            if verdict is _MISS:
                self.misses += 1
                verdict = table[value] = compute(value)
            return verdict

        return matches

    def projector(self, constrained):
        """A ``value → projection`` callable bound to the pattern's table.

        The per-row analogue of :meth:`project`; see :meth:`matcher`.
        """
        if not self.enabled:
            return constrained.project
        table = self._table_for(self._projections, constrained)
        compute = constrained.project

        def project(value: str) -> Optional[Tuple[str, ...]]:
            projection = table.get(value, _MISS)
            if projection is _MISS:
                self.misses += 1
                projection = table[value] = compute(value)
            return projection

        return project

    def match_table(self, pattern) -> Optional[Dict[str, bool]]:
        """The pattern's raw verdict table, or None when the memo is off.

        The batch matcher (:mod:`repro.kernels.match`) reads and writes
        this table directly so one kernel pass over a column's distinct
        values shares its verdicts with every scalar ``matches`` call —
        the same store, whichever path computed the verdict first.
        Callers must only insert correct ``pattern.matches(value)``
        verdicts.
        """
        if not self.enabled:
            return None
        return self._table_for(self._matches, pattern)

    def count_batch(self, hits: int, misses: int) -> None:
        """Fold one batch lookup into the hit/miss statistics."""
        self.hits += hits
        self.misses += misses

    # -- bookkeeping -----------------------------------------------------------

    def _table_for(self, store: Dict[Hashable, Dict], pattern) -> Dict:
        table = store.get(pattern)
        if table is None:
            if len(store) >= self.max_patterns:
                # FIFO eviction of the oldest pattern's verdicts.  The
                # default shields concurrent evictors (the thread-pool
                # mining fallback shares this memo): losing the race just
                # means the other thread already evicted the key.
                store.pop(next(iter(store)), None)
            table = store[pattern] = {}
        return table

    def clear(self) -> None:
        self._matches.clear()
        self._projections.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        return {
            "patterns": len(self._matches) + len(self._projections),
            "values": sum(len(t) for t in self._matches.values())
            + sum(len(t) for t in self._projections.values()),
            "hits": self.hits,
            "misses": self.misses,
        }


#: The process-wide memo shared by detection and discovery hot paths.
MATCH_MEMO = MatchMemo()
