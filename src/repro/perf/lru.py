"""A small LRU cache used by the shared compilation caches.

``functools.lru_cache`` is not usable here because the caches must be
clearable and disableable as a group (see :func:`repro.perf.clear_caches`
and :func:`repro.perf.caches_disabled`), report hit statistics for the
benchmark harness, and key on rich objects passed by reference rather
than on call signatures.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional

_MISS = object()


class LruCache:
    """Least-recently-used cache with hit/miss statistics."""

    __slots__ = ("maxsize", "enabled", "hits", "misses", "_data")

    def __init__(self, maxsize: int = 1024):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (marking it most recently used)."""
        if not self.enabled:
            return default
        value = self._data.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert a value, evicting the least recently used entry if full."""
        if not self.enabled:
            return
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)

    def get_or_compute(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value, computing and storing it on a miss."""
        if not self.enabled:
            return factory()
        value = self._data.get(key, _MISS)
        if value is not _MISS:
            self._data.move_to_end(key)
            self.hits += 1
            return value
        self.misses += 1
        value = factory()
        self.put(key, value)
        return value

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
        }
