"""Per-table derived-artifact cache (column indexes, tokenizations).

Artifacts like the detection engine's :class:`PatternColumnIndex` depend
only on a table's column contents, yet were rebuilt for every detector
instance.  This cache shares them process-wide, keyed by the table's
*identity* (tables define value equality but not hashing, so entries are
tracked by ``id`` and reaped by a weak-reference finalizer) plus the
table's mutation ``version`` — ``Table.set_cell`` bumps the version, so
stale artifacts built before an in-place corruption or repair are never
served.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, Hashable, Optional, Sequence, Tuple

#: A patcher takes (stale artifact, the table deltas applied since it was
#: built) and either patches the artifact forward — returning the patched
#: artifact, usually the same object mutated in place — or returns None to
#: decline, in which case the artifact is rebuilt from scratch.
ArtifactPatcher = Callable[[Any, Sequence[Any]], Optional[Any]]


class TableArtifactCache:
    """Caches derived artifacts per (table identity, key, table version).

    Each table's artifact dict is bounded by ``max_entries_per_table``
    (FIFO eviction) so a long-lived table queried with many distinct
    ad-hoc patterns cannot grow the cache without bound.

    A stale entry is normally discarded and rebuilt; callers whose
    artifact supports partial updates can pass a ``patch`` callback and
    the cache will hand it the table's delta log (``Table.deltas_since``)
    instead, so a single-cell edit costs one posting move rather than a
    full rebuild.
    """

    __slots__ = ("enabled", "hits", "misses", "patched", "max_entries_per_table", "_store")

    def __init__(self, max_entries_per_table: int = 512) -> None:
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.patched = 0
        self.max_entries_per_table = max_entries_per_table
        # id(table) → (weak ref keeping the entry honest, {key: (version, artifact)})
        self._store: Dict[int, Tuple[weakref.ref, Dict[Hashable, Tuple[int, Any]]]] = {}

    def get(
        self,
        table,
        key: Hashable,
        build: Callable[[], Any],
        patch: Optional[ArtifactPatcher] = None,
    ) -> Any:
        """The cached artifact for (table, key), patched or rebuilt when stale."""
        version = getattr(table, "version", None)
        if not self.enabled or version is None:
            return build()
        token = id(table)
        slot = self._store.get(token)
        if slot is None or slot[0]() is not table:
            artifacts: Dict[Hashable, Tuple[int, Any]] = {}
            try:
                # The finalizer reaps the entry when the table is collected,
                # which also protects against id() reuse.
                ref = weakref.ref(table, lambda _r, t=token: self._store.pop(t, None))
            except TypeError:  # non-weakrefable table-like object
                return build()
            self._store[token] = (ref, artifacts)
        else:
            artifacts = slot[1]
        entry = artifacts.get(key)
        if entry is not None and entry[0] == version:
            self.hits += 1
            return entry[1]
        artifact = None
        if entry is not None and patch is not None:
            artifact = self._try_patch(table, entry, patch)
        if artifact is not None:
            self.patched += 1
        else:
            self.misses += 1
            artifact = build()
        if key not in artifacts and len(artifacts) >= self.max_entries_per_table:
            artifacts.pop(next(iter(artifacts)))
        artifacts[key] = (version, artifact)
        return artifact

    @staticmethod
    def _try_patch(table, entry: Tuple[int, Any], patch: ArtifactPatcher) -> Optional[Any]:
        deltas_since = getattr(table, "deltas_since", None)
        if deltas_since is None:
            return None
        deltas = deltas_since(entry[0])
        if deltas is None:  # history no longer replayable
            return None
        try:
            return patch(entry[1], deltas)
        except Exception:
            # A patcher that blows up mid-replay (out-of-sync artifact)
            # must not poison the entry: fall back to a fresh build, which
            # replaces the half-patched artifact and self-heals.
            return None

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.patched = 0

    def stats(self) -> dict:
        return {
            "tables": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "patched": self.patched,
        }
