"""Per-table derived-artifact cache (column indexes, tokenizations).

Artifacts like the detection engine's :class:`PatternColumnIndex` depend
only on a table's column contents, yet were rebuilt for every detector
instance.  This cache shares them process-wide, keyed by the table's
*identity* (tables define value equality but not hashing, so entries are
tracked by ``id`` and reaped by a weak-reference finalizer) plus the
table's mutation ``version`` — ``Table.set_cell`` bumps the version, so
stale artifacts built before an in-place corruption or repair are never
served.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, Hashable, Tuple


class TableArtifactCache:
    """Caches derived artifacts per (table identity, key, table version).

    Each table's artifact dict is bounded by ``max_entries_per_table``
    (FIFO eviction) so a long-lived table queried with many distinct
    ad-hoc patterns cannot grow the cache without bound.
    """

    __slots__ = ("enabled", "hits", "misses", "max_entries_per_table", "_store")

    def __init__(self, max_entries_per_table: int = 512) -> None:
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.max_entries_per_table = max_entries_per_table
        # id(table) → (weak ref keeping the entry honest, {key: (version, artifact)})
        self._store: Dict[int, Tuple[weakref.ref, Dict[Hashable, Tuple[int, Any]]]] = {}

    def get(self, table, key: Hashable, build: Callable[[], Any]) -> Any:
        """The cached artifact for (table, key), rebuilt when stale."""
        version = getattr(table, "version", None)
        if not self.enabled or version is None:
            return build()
        token = id(table)
        slot = self._store.get(token)
        if slot is None or slot[0]() is not table:
            artifacts: Dict[Hashable, Tuple[int, Any]] = {}
            try:
                # The finalizer reaps the entry when the table is collected,
                # which also protects against id() reuse.
                ref = weakref.ref(table, lambda _r, t=token: self._store.pop(t, None))
            except TypeError:  # non-weakrefable table-like object
                return build()
            self._store[token] = (ref, artifacts)
        else:
            artifacts = slot[1]
        entry = artifacts.get(key)
        if entry is not None and entry[0] == version:
            self.hits += 1
            return entry[1]
        self.misses += 1
        artifact = build()
        if key not in artifacts and len(artifacts) >= self.max_entries_per_table:
            artifacts.pop(next(iter(artifacts)))
        artifacts[key] = (version, artifact)
        return artifact

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        return {
            "tables": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
        }
