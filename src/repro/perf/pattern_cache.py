"""Process-wide compiled-pattern caches.

Patterns are immutable values hashed by their element tuple, so two
structurally equal patterns — however they were constructed — share one
compiled regex and one NFA.  Before this cache every ``Pattern`` instance
compiled privately, and discovery synthesizes thousands of structurally
identical patterns (one per inverted-list entry per candidate
dependency).
"""

from __future__ import annotations

import re
from typing import Optional, Tuple

from repro.patterns.nfa import Nfa, build_nfa
from repro.patterns.regex import compile_to_regex, pattern_to_regex_source
from repro.perf.lru import LruCache

#: pattern → compiled ``re.Pattern`` (or None when regex compilation failed
#: and the NFA fallback must be used).
REGEX_CACHE = LruCache(maxsize=8192)
#: pattern → epsilon-NFA.
NFA_CACHE = LruCache(maxsize=4096)
#: constrained-pattern segment tuple → compiled grouped regex.
CONSTRAINED_REGEX_CACHE = LruCache(maxsize=4096)

_FAILED = object()  # distinguishes "compiles to None" from "not cached"


def shared_regex_for(pattern) -> Optional["re.Pattern[str]"]:
    """The compiled regex of a pattern, shared across equal patterns."""
    cached = REGEX_CACHE.get(pattern, _FAILED)
    if cached is not _FAILED:
        return cached
    compiled = compile_to_regex(pattern)
    REGEX_CACHE.put(pattern, compiled)
    return compiled


def shared_nfa_for(pattern) -> Nfa:
    """The epsilon-NFA of a pattern, shared across equal patterns."""
    return NFA_CACHE.get_or_compute(pattern, lambda: build_nfa(pattern.elements))


def constrained_regex_for(segments: Tuple) -> "re.Pattern[str]":
    """Compile a constrained pattern's segments to one grouped regex.

    Constrained segments become capturing groups (their captures are the
    constrained projection), unconstrained ones non-capturing groups.
    Keyed by the segment tuple so equal constrained patterns share the
    compiled object.
    """

    def compile_segments() -> "re.Pattern[str]":
        parts = []
        for segment in segments:
            source = pattern_to_regex_source(segment.pattern)
            if segment.constrained:
                parts.append("(" + source + ")")
            else:
                parts.append("(?:" + source + ")")
        return re.compile("".join(parts))

    return CONSTRAINED_REGEX_CACHE.get_or_compute(segments, compile_segments)


def clear_pattern_caches() -> None:
    REGEX_CACHE.clear()
    NFA_CACHE.clear()
    CONSTRAINED_REGEX_CACHE.clear()


def pattern_cache_stats() -> dict:
    return {
        "regex": REGEX_CACHE.stats(),
        "nfa": NFA_CACHE.stats(),
        "constrained_regex": CONSTRAINED_REGEX_CACHE.stats(),
    }
