"""Token-interning pool.

The inverted-index build extracts the same token strings over and over —
once per row they occur in, once per candidate dependency whose LHS
column contains them.  Interning collapses equal token strings to a
single object so dictionary keys compare by identity first and the
postings lists do not hold thousands of duplicate string objects.

``sys.intern`` is deliberately not used: it pins strings for the process
lifetime, while this pool can be cleared between workloads.
"""

from __future__ import annotations

from typing import Dict


class InternPool:
    """A clearable string-interning pool."""

    __slots__ = ("_pool",)

    def __init__(self) -> None:
        self._pool: Dict[str, str] = {}

    def intern(self, value: str) -> str:
        """The canonical shared instance of ``value``."""
        return self._pool.setdefault(value, value)

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, value: str) -> bool:
        return value in self._pool

    def clear(self) -> None:
        self._pool.clear()


#: A process-wide pool callers can opt into when they want interning to
#: span workloads.  The inverted-index build deliberately does NOT use
#: it by default — it interns through a pool scoped to one column
#: extraction, so tokens are shared across all candidates reusing that
#: tokenization without being pinned for the process lifetime.
TOKEN_POOL = InternPool()
