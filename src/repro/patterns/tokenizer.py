"""``Tokenize`` and ``NGrams`` — the value-decomposition functions used by
the discovery algorithm (Figure 2, lines 6–7).

Tokens are whitespace-delimited words; their *position* is the token
index starting at 0, exactly as the demo GUI displays it
("pattern::position, frequency").  N-grams are character substrings of a
fixed length whose position is the character offset at which they start;
the paper uses them "to extract patterns from attributes that contain
[a] single token which could be a code or [an] id".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List, Optional, Tuple

_PUNCTUATION_STRIP = ".,;:!?\"'()[]{}"


@dataclass(frozen=True)
class Token:
    """A token or n-gram extracted from a cell value.

    Attributes
    ----------
    text:
        The raw token text.
    position:
        Token index (token mode) or character offset (n-gram mode).
    start:
        Character offset of the token within the original value.
    normalized:
        Token text with leading/trailing punctuation stripped; discovery
        keys on this so that ``"Donald"`` and ``"Donald,"`` group
        together.
    """

    text: str
    position: int
    start: int
    normalized: str

    @property
    def is_numeric(self) -> bool:
        return self.normalized.isdigit() and bool(self.normalized)


def _normalize(text: str) -> str:
    return text.strip(_PUNCTUATION_STRIP)


def tokenize(value: str) -> List[Token]:
    """Split a value into whitespace-delimited tokens with positions."""
    tokens: List[Token] = []
    position = 0
    offset = 0
    length = len(value)
    while offset < length:
        while offset < length and value[offset].isspace():
            offset += 1
        if offset >= length:
            break
        start = offset
        while offset < length and not value[offset].isspace():
            offset += 1
        text = value[start:offset]
        tokens.append(Token(text, position, start, _normalize(text)))
        position += 1
    return tokens


@lru_cache(maxsize=131072)
def cached_tokenize(value: str) -> Tuple[Token, ...]:
    """Memoized :func:`tokenize` for hot loops.

    Column values repeat heavily (within a column and across the many
    candidate dependencies sharing an LHS column), so tokenization is
    memoized per distinct value.  Returns an immutable tuple — callers
    must not mutate it.
    """
    return tuple(tokenize(value))


def ngrams(value: str, n: int) -> List[Token]:
    """All character n-grams of ``value`` with their starting offsets."""
    if n <= 0:
        raise ValueError(f"n-gram size must be positive, got {n}")
    out: List[Token] = []
    if len(value) < n:
        return out
    for start in range(len(value) - n + 1):
        text = value[start : start + n]
        out.append(Token(text, start, start, text))
    return out


def prefix_ngrams(value: str, sizes: Optional[List[int]] = None) -> List[Token]:
    """Leading n-grams only (offsets fixed at 0) for a set of sizes.

    Code-like attributes (zip codes, phone numbers, structured IDs) carry
    their discriminating information in prefixes — ``900`` in ``90001``,
    the area code in a phone number, the department letter in
    ``F-9-107``.  Restricting to prefixes keeps the inverted list small
    without losing the dependencies the paper demonstrates.
    """
    if sizes is None:
        sizes = [1, 2, 3, 4, 5]
    out: List[Token] = []
    for size in sizes:
        if 0 < size <= len(value):
            text = value[:size]
            out.append(Token(text, 0, 0, text))
    return out


def iter_token_modes(value: str, mode: str, ngram_size: int = 3) -> Iterator[Token]:
    """Yield tokens according to the configured extraction mode."""
    if mode == "token":
        yield from tokenize(value)
    elif mode == "ngram":
        yield from ngrams(value, ngram_size)
    elif mode == "prefix":
        yield from prefix_ngrams(value)
    else:
        raise ValueError(f"unknown token mode {mode!r}")
