"""Learning patterns from data values.

The discovery algorithm never enumerates the full pattern space.  It
works upward from concrete values using the generalization tree: each
character is replaced by its class, consecutive equal classes collapse
into quantified runs, and runs learned from several values merge their
repetition counts.  This module provides those operations plus the
per-column :class:`PatternHistogram` that backs the profiling view
(Figure 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.patterns.alphabet import CharClass, classify_char
from repro.patterns.pattern import Pattern
from repro.patterns.syntax import ClassAtom, Element, Literal, ONE, Quantifier


@lru_cache(maxsize=131072)
def _class_runs(value: str) -> Tuple[Tuple[CharClass, int], ...]:
    """Collapse a string into runs of (character class, length).

    Memoized per distinct value: run decomposition is recomputed for
    every value of every profiled column and every generalized group.
    """
    runs: List[Tuple[CharClass, int]] = []
    for char in value:
        char_class = classify_char(char)
        if runs and runs[-1][0] is char_class:
            runs[-1] = (char_class, runs[-1][1] + 1)
        else:
            runs.append((char_class, 1))
    return tuple(runs)


@lru_cache(maxsize=131072)
def signature_of(value: str) -> Tuple[CharClass, ...]:
    """The sequence of character classes of a value's runs.

    Two values with the same signature generalize to the same run
    structure; the signature is the grouping key used when merging values
    into a single pattern.  Memoized per distinct value alongside
    :func:`_class_runs`.
    """
    return tuple(char_class for char_class, _length in _class_runs(value))


@lru_cache(maxsize=65536)
def _generalize_string_cached(value: str, level: int) -> Pattern:
    if level <= 0:
        return Pattern.literal(value)
    if level >= 3:
        return Pattern.any_string()
    elements: List[Element] = []
    for char_class, length in _class_runs(value):
        if level == 1:
            quantifier = ONE if length == 1 else Quantifier(length, length)
        else:
            quantifier = Quantifier(1, None) if length >= 1 else ONE
        elements.append(Element(ClassAtom(char_class), quantifier))
    return Pattern(elements)


def generalize_string(value: str, level: int = 1) -> Pattern:
    """Generalize one value to a pattern at the requested level.

    Levels correspond to walking up the generalization lattice:

    * 0 — the literal value itself (most specific).
    * 1 — class runs with exact repetition counts, e.g. ``90001`` →
      ``\\D{5}`` and ``John`` → ``\\LU\\LL{3}``.
    * 2 — class runs with ``+`` quantifiers, e.g. ``\\LU\\LL+``.
    * 3 — the most general pattern ``\\A*``.

    Memoized per (value, level); patterns are immutable, so the shared
    instances are safe to reuse anywhere.
    """
    return _generalize_string_cached(value, level)


def clear_generalization_memos() -> None:
    """Reset the per-value memos (see :func:`repro.perf.clear_caches`)."""
    _class_runs.cache_clear()
    signature_of.cache_clear()
    _generalize_string_cached.cache_clear()


def generalize_strings(values: Sequence[str]) -> Optional[Pattern]:
    """Least-general pattern (within the run lattice) covering all values.

    Returns None when the values do not share a run signature — callers
    then either split the values by signature or fall back to ``\\A*``.
    Empty input also returns None.
    """
    values = [v for v in values]
    if not values:
        return None
    signatures = {signature_of(v) for v in values}
    if len(signatures) != 1:
        return None
    signature = next(iter(signatures))
    per_run_lengths: List[List[int]] = [[] for _ in signature]
    for value in values:
        for i, (_cls, length) in enumerate(_class_runs(value)):
            per_run_lengths[i].append(length)
    elements: List[Element] = []
    for char_class, lengths in zip(signature, per_run_lengths):
        low, high = min(lengths), max(lengths)
        if low == high:
            quantifier = ONE if low == 1 else Quantifier(low, low)
        else:
            quantifier = Quantifier(low, high)
        elements.append(Element(ClassAtom(char_class), quantifier))
    return Pattern(elements)


def generalize_with_literal_prefix(values: Sequence[str], prefix_length: int) -> Optional[Pattern]:
    """Pattern keeping the first ``prefix_length`` characters literal.

    All values must share that literal prefix; the suffixes are
    generalized with :func:`generalize_strings`.  This is how constant
    PFD tableau patterns such as ``850\\D{7}`` and ``6060\\D`` are formed:
    a shared literal prefix followed by a generalized remainder.
    """
    if not values:
        return None
    prefix = values[0][:prefix_length]
    if len(prefix) < prefix_length:
        return None
    if any(not v.startswith(prefix) for v in values):
        return None
    suffixes = [v[prefix_length:] for v in values]
    if all(s == "" for s in suffixes):
        return Pattern.literal(prefix)
    suffix_pattern = generalize_strings(suffixes)
    if suffix_pattern is None:
        if any(s == "" for s in suffixes):
            return None
        suffix_pattern = Pattern.any_string()
    return Pattern.literal(prefix).concat(suffix_pattern)


@dataclass
class PatternCount:
    """One row of a pattern histogram."""

    pattern: Pattern
    count: int
    examples: List[str]

    @property
    def text(self) -> str:
        return self.pattern.to_text()


class PatternHistogram:
    """Distribution of generalized patterns over a column.

    This is the data behind the "Profiling and Listing the Patterns in
    the Data" screen (Figure 3): every value is generalized to its
    level-1 pattern and the histogram counts how many values share each
    pattern.
    """

    def __init__(self, values: Iterable[str], level: int = 1, max_examples: int = 3):
        # Generalize once per *distinct* value: duplicate values map to the
        # same pattern, and real columns are dominated by repeats.  The
        # first-seen iteration order of the per-value counter keeps the
        # example lists identical to a plain one-pass scan.
        by_value: Dict[str, int] = {}
        total = 0
        for value in values:
            by_value[value] = by_value.get(value, 0) + 1
            total += 1
        self._init_from_counts(by_value, total, level, max_examples)

    @classmethod
    def from_counts(
        cls,
        value_counts: Mapping[str, int],
        level: int = 1,
        max_examples: int = 3,
    ) -> "PatternHistogram":
        """Build a histogram from pre-aggregated value → multiplicity counts.

        With ``value_counts`` in first-seen order (a plain dict filled by
        a forward scan — e.g. accumulated shard by shard), the result is
        identical to profiling the expanded value stream: counts, entry
        order, and example lists all match.
        """
        self = cls.__new__(cls)
        self._init_from_counts(
            value_counts, sum(value_counts.values()), level, max_examples
        )
        return self

    def _init_from_counts(
        self,
        by_value: Mapping[str, int],
        total: int,
        level: int,
        max_examples: int,
    ) -> None:
        counts: Dict[str, PatternCount] = {}
        for value, occurrences in by_value.items():
            pattern = generalize_string(value, level=level)
            key = pattern.to_text()
            entry = counts.get(key)
            if entry is None:
                counts[key] = PatternCount(pattern, occurrences, [value])
            else:
                entry.count += occurrences
                if len(entry.examples) < max_examples and value not in entry.examples:
                    entry.examples.append(value)
        self._counts = counts
        self._total = total
        self.level = level

    @property
    def total(self) -> int:
        """Number of values profiled."""
        return self._total

    def __len__(self) -> int:
        return len(self._counts)

    def entries(self) -> List[PatternCount]:
        """Histogram rows, most frequent first."""
        return sorted(self._counts.values(), key=lambda e: (-e.count, e.text))

    def dominant_patterns(self, min_ratio: float = 0.05) -> List[PatternCount]:
        """Rows whose share of the column is at least ``min_ratio``."""
        if self._total == 0:
            return []
        return [e for e in self.entries() if e.count / self._total >= min_ratio]

    def coverage_of(self, patterns: Sequence[Pattern]) -> float:
        """Fraction of values matching at least one of ``patterns``."""
        if self._total == 0:
            return 0.0
        covered = 0
        for entry in self._counts.values():
            if any(p.contains(entry.pattern) or p == entry.pattern for p in patterns):
                covered += entry.count
        return covered / self._total

    def rare_patterns(self, max_ratio: float = 0.01) -> List[PatternCount]:
        """Rows whose share is below ``max_ratio`` (candidate anomalies)."""
        if self._total == 0:
            return []
        return [e for e in self.entries() if e.count / self._total < max_ratio]
