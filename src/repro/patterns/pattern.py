"""The :class:`Pattern` value type.

A pattern is an immutable sequence of quantified atoms.  It knows how to
render itself back to the paper's syntax, match strings (via NFA
simulation or a compiled Python regex), and expose structural facts used
elsewhere (literal prefix for indexing, minimum/maximum length, the set
of character classes it mentions, …).
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import PatternSyntaxError
from repro.patterns.alphabet import CharClass
from repro.patterns.nfa import Nfa
from repro.patterns.syntax import ClassAtom, Element, Literal, ONE, Quantifier

_ANY_STAR_TEXT = "\\A*"

_UNSET = object()


class Pattern:
    """An immutable pattern over the generalization-tree alphabet.

    Compiled artifacts (regex, NFA) live in the process-wide caches of
    :mod:`repro.perf.pattern_cache`, keyed by the pattern value itself —
    structurally equal patterns share one compilation no matter how many
    instances exist.  Each instance additionally keeps a *pointer* to the
    shared artifact after the first use, so hot matching loops pay no
    cache-lookup cost; the hash and rendered text are memoized the same
    way.
    """

    __slots__ = ("_elements", "_source", "_hash", "_text", "_regex", "_nfa")

    def __init__(self, elements: Iterable[Element], source: Optional[str] = None):
        self._elements: Tuple[Element, ...] = tuple(elements)
        for element in self._elements:
            if not isinstance(element, Element):
                raise PatternSyntaxError(
                    f"Pattern expects Element instances, got {element!r}"
                )
        self._source = source
        self._hash: Optional[int] = None
        self._text: Optional[str] = None
        self._regex = _UNSET  # None is a valid cached value (compile failure)
        self._nfa: Optional[Nfa] = None

    # -- constructors ----------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Pattern":
        """Parse pattern text (delegates to :mod:`repro.patterns.parser`)."""
        from repro.patterns.parser import parse_elements

        return cls(parse_elements(text), source=text)

    @classmethod
    def literal(cls, text: str) -> "Pattern":
        """A pattern matching exactly ``text``."""
        return cls([Element(Literal(c), ONE) for c in text])

    @classmethod
    def any_string(cls) -> "Pattern":
        """The most general pattern ``\\A*``."""
        return cls.parse(_ANY_STAR_TEXT)

    @classmethod
    def of_class(cls, char_class: CharClass, quantifier: Quantifier = ONE) -> "Pattern":
        """A single-class pattern such as ``\\D{5}``."""
        return cls([Element(ClassAtom(char_class), quantifier)])

    # -- structure -------------------------------------------------------------

    @property
    def elements(self) -> Tuple[Element, ...]:
        return self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __getitem__(self, index: int) -> Element:
        return self._elements[index]

    def is_empty(self) -> bool:
        """Whether this pattern only matches the empty string trivially."""
        return all(e.quantifier.minimum == 0 for e in self._elements)

    def is_literal_only(self) -> bool:
        """Whether every atom is a literal with a fixed single repetition."""
        return all(
            isinstance(e.atom, Literal) and e.quantifier.is_single
            for e in self._elements
        )

    def literal_text(self) -> Optional[str]:
        """The exact string matched when the pattern is literal-only."""
        if not self.is_literal_only():
            return None
        return "".join(e.atom.char for e in self._elements)  # type: ignore[union-attr]

    def literal_prefix(self) -> str:
        """Longest leading run of fixed literal characters.

        The detection engine buckets column values by literal prefix so a
        constant PFD such as ``850\\D{7}`` only inspects the values that
        start with ``850``.
        """
        prefix = []
        for element in self._elements:
            if isinstance(element.atom, Literal) and element.quantifier.is_single:
                prefix.append(element.atom.char)
            else:
                break
        return "".join(prefix)

    def char_classes(self) -> List[CharClass]:
        """The distinct character classes mentioned, in order of appearance."""
        seen: List[CharClass] = []
        for element in self._elements:
            if isinstance(element.atom, ClassAtom) and element.atom.char_class not in seen:
                seen.append(element.atom.char_class)
        return seen

    def min_length(self) -> int:
        """Minimum number of characters a matching string can have."""
        return sum(e.quantifier.minimum for e in self._elements)

    def max_length(self) -> Optional[int]:
        """Maximum matching length, or None when unbounded."""
        total = 0
        for element in self._elements:
            if element.quantifier.maximum is None:
                return None
            total += element.quantifier.maximum
        return total

    def is_fixed_length(self) -> bool:
        """Whether every match has the same length."""
        maximum = self.max_length()
        return maximum is not None and maximum == self.min_length()

    def concat(self, other: "Pattern") -> "Pattern":
        """Concatenate two patterns."""
        return Pattern(self._elements + other.elements)

    def slice(self, start: int, stop: Optional[int] = None) -> "Pattern":
        """A sub-pattern over an element range."""
        return Pattern(self._elements[start:stop])

    # -- rendering ---------------------------------------------------------------

    def to_text(self) -> str:
        """Render back to the paper's concrete syntax (memoized)."""
        text = self._text
        if text is None:
            text = self._text = "".join(e.to_text() for e in self._elements)
        return text

    @property
    def source(self) -> Optional[str]:
        """The original text this pattern was parsed from, if any."""
        return self._source

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pattern({self.to_text()!r})"

    def __reduce__(self):
        # Pickle only the value; compiled-artifact pointers and memos are
        # process-local and rebuilt lazily on the other side.
        return (Pattern, (self._elements, self._source))

    # -- equality / hashing -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self._elements == other._elements

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = self._hash = hash(self._elements)
        return value

    # -- matching -----------------------------------------------------------------

    @property
    def nfa(self) -> Nfa:
        """The compiled epsilon-NFA (shared across equal patterns)."""
        nfa = self._nfa
        if nfa is None:
            from repro.perf.pattern_cache import shared_nfa_for

            nfa = self._nfa = shared_nfa_for(self)
        return nfa

    def matches(self, text: str) -> bool:
        """Whether ``text`` matches this pattern (``s ↦ P`` in the paper).

        Uses the compiled Python regex when available (much faster for
        bulk scans) and falls back to NFA simulation.
        """
        regex = self.compiled_regex()
        if regex is not None:
            return regex.fullmatch(text) is not None
        return self.nfa.matches_string(text)

    def matches_via_nfa(self, text: str) -> bool:
        """Match using only the NFA simulation (used to cross-check the
        regex backend in property-based tests)."""
        return self.nfa.matches_string(text)

    def compiled_regex(self) -> Optional["re.Pattern[str]"]:
        """The pattern compiled to a Python regex (shared across equal
        patterns), or None if unsupported."""
        regex = self._regex
        if regex is _UNSET:
            from repro.perf.pattern_cache import shared_regex_for

            regex = self._regex = shared_regex_for(self)
        return regex

    def filter_matching(self, values: Sequence[str]) -> List[int]:
        """Indexes of the values that match this pattern."""
        return [i for i, value in enumerate(values) if self.matches(value)]

    # -- containment --------------------------------------------------------------

    def contains(self, other: "Pattern") -> bool:
        """Whether ``other ⊆ self`` — every string matching ``other`` also
        matches ``self`` (i.e. ``self`` is more general)."""
        from repro.patterns.containment import pattern_contains

        return pattern_contains(other, self)

    def is_contained_in(self, other: "Pattern") -> bool:
        """Whether ``self ⊆ other`` in the paper's notation."""
        from repro.patterns.containment import pattern_contains

        return pattern_contains(self, other)
