"""The generalization tree (Figure 1 of the paper).

The tree is defined over an alphabet Σ.  Each leaf is a character; each
intermediate node generalizes its children:

* ``\\A``  (All)    — any character
* ``\\LU`` (Upper)  — upper-case letters ``A``–``Z``
* ``\\LL`` (Lower)  — lower-case letters ``a``–``z``
* ``\\D``  (Digit)  — digits ``0``–``9``
* ``\\S``  (Symbol) — everything else (punctuation, whitespace, …)

The tree supports the two operations the rest of the system needs:
classifying a character into its immediate parent class, and testing
whether a character belongs to a class (used by the matcher).
"""

from __future__ import annotations

import enum
import string
from typing import Dict, Iterable, List, Optional


class CharClass(enum.Enum):
    """An intermediate node of the generalization tree."""

    ANY = "A"
    UPPER = "LU"
    LOWER = "LL"
    DIGIT = "D"
    SYMBOL = "S"

    @property
    def token(self) -> str:
        """The token used in the paper's pattern syntax, e.g. ``\\LU``."""
        return "\\" + self.value

    def contains_char(self, char: str) -> bool:
        """Whether a single character belongs to this class."""
        if len(char) != 1:
            return False
        if self is CharClass.ANY:
            return True
        if self is CharClass.UPPER:
            return "A" <= char <= "Z"
        if self is CharClass.LOWER:
            return "a" <= char <= "z"
        if self is CharClass.DIGIT:
            return "0" <= char <= "9"
        return not (
            "A" <= char <= "Z" or "a" <= char <= "z" or "0" <= char <= "9"
        )

    def sample_chars(self) -> str:
        """A representative set of member characters (used by tests and
        by the containment alphabet construction)."""
        if self is CharClass.UPPER:
            return string.ascii_uppercase
        if self is CharClass.LOWER:
            return string.ascii_lowercase
        if self is CharClass.DIGIT:
            return string.digits
        if self is CharClass.SYMBOL:
            return " .,:;-_/()'\"#&@+*!?%$"
        return (
            string.ascii_uppercase
            + string.ascii_lowercase
            + string.digits
            + " .,:;-_/()'\"#&@+*!?%$"
        )


def _classify_char_slow(char: str) -> CharClass:
    if "A" <= char <= "Z":
        return CharClass.UPPER
    if "a" <= char <= "z":
        return CharClass.LOWER
    if "0" <= char <= "9":
        return CharClass.DIGIT
    return CharClass.SYMBOL


#: Classification table, pre-filled for the Latin-1 range and extended
#: on demand — classification is a leaf operation of every generalization
#: and runs once per character of every profiled value.
_CLASS_BY_CHAR: Dict[str, CharClass] = {
    chr(code): _classify_char_slow(chr(code)) for code in range(256)
}


def classify_char(char: str) -> CharClass:
    """Return the immediate parent class of a character in the tree."""
    cached = _CLASS_BY_CHAR.get(char)
    if cached is not None:
        return cached
    if len(char) != 1:
        raise ValueError(f"classify_char expects a single character, got {char!r}")
    cached = _CLASS_BY_CHAR[char] = _classify_char_slow(char)
    return cached


class GeneralizationTree:
    """Explicit tree structure mirroring Figure 1.

    The tree is small and fixed; this class exists so that code (and
    tests) can reason about the hierarchy — parents, children, and the
    generalization path from a leaf character up to ``\\A``.
    """

    ROOT = CharClass.ANY

    def __init__(self) -> None:
        self._children: Dict[CharClass, List[CharClass]] = {
            CharClass.ANY: [
                CharClass.UPPER,
                CharClass.LOWER,
                CharClass.DIGIT,
                CharClass.SYMBOL,
            ],
            CharClass.UPPER: [],
            CharClass.LOWER: [],
            CharClass.DIGIT: [],
            CharClass.SYMBOL: [],
        }

    def children(self, node: CharClass) -> List[CharClass]:
        """Intermediate-node children of ``node`` (leaves are characters)."""
        return list(self._children[node])

    def parent(self, node: CharClass) -> Optional[CharClass]:
        """Parent of an intermediate node, or None for the root."""
        if node is CharClass.ANY:
            return None
        return CharClass.ANY

    def leaf_parent(self, char: str) -> CharClass:
        """The intermediate node directly above a leaf character."""
        return classify_char(char)

    def generalization_path(self, char: str) -> List[CharClass]:
        """The chain of classes from a character's parent up to the root."""
        parent = self.leaf_parent(char)
        path = [parent]
        while True:
            up = self.parent(path[-1])
            if up is None:
                break
            path.append(up)
        return path

    def is_ancestor(self, ancestor: CharClass, descendant: CharClass) -> bool:
        """Whether ``ancestor`` generalizes ``descendant`` (reflexive)."""
        if ancestor is descendant:
            return True
        return ancestor is CharClass.ANY

    def classes(self) -> Iterable[CharClass]:
        """All intermediate nodes."""
        return list(CharClass)


#: Singleton tree instance shared across the package.
GENERALIZATION_TREE = GeneralizationTree()
