"""Epsilon-NFA construction and simulation for patterns.

Because the pattern language has no alternation and no nesting, every
pattern compiles to a small linear NFA: each element contributes its
required repetitions as a chain of states, followed by either optional
states (bounded quantifiers) or a single self-looping state (unbounded
quantifiers).  The same NFA is used for matching (simulation over the
input characters) and for containment checking (subset construction over
a finite symbolic alphabet, see :mod:`repro.patterns.containment`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.patterns.syntax import Atom, Element


@dataclass
class Nfa:
    """An epsilon-NFA whose transitions are labeled by pattern atoms."""

    n_states: int
    start: int
    accept: int
    #: (source state, atom, destination state)
    transitions: List[Tuple[int, Atom, int]] = field(default_factory=list)
    #: (source state, destination state)
    epsilons: List[Tuple[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._eps_map: Dict[int, List[int]] = {}
        for src, dst in self.epsilons:
            self._eps_map.setdefault(src, []).append(dst)
        self._trans_map: Dict[int, List[Tuple[Atom, int]]] = {}
        for src, atom, dst in self.transitions:
            self._trans_map.setdefault(src, []).append((atom, dst))

    # -- core operations ------------------------------------------------------

    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """All states reachable from ``states`` via epsilon moves."""
        closure: Set[int] = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for nxt in self._eps_map.get(state, ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def step(self, states: Iterable[int], accepts: Callable[[Atom], bool]) -> FrozenSet[int]:
        """Advance one input symbol.

        ``accepts`` decides whether a transition atom accepts the symbol;
        for plain string matching it closes over the current character,
        for containment it closes over a symbolic alphabet atom.
        """
        nxt: Set[int] = set()
        for state in states:
            for atom, dst in self._trans_map.get(state, ()):
                if accepts(atom):
                    nxt.add(dst)
        return self.epsilon_closure(nxt)

    def matches_string(self, text: str) -> bool:
        """Simulate the NFA over ``text`` and report acceptance."""
        current = self.epsilon_closure([self.start])
        for char in text:
            if not current:
                return False
            current = self.step(current, lambda atom: atom.matches_char(char))
        return self.accept in current

    def outgoing_atoms(self, states: Iterable[int]) -> List[Atom]:
        """All atoms on transitions leaving ``states`` (used by determinization)."""
        atoms: List[Atom] = []
        for state in states:
            for atom, _dst in self._trans_map.get(state, ()):
                atoms.append(atom)
        return atoms


def build_nfa(elements: Sequence[Element]) -> Nfa:
    """Compile a pattern element sequence into an epsilon-NFA."""
    transitions: List[Tuple[int, Atom, int]] = []
    epsilons: List[Tuple[int, int]] = []
    next_state = 1
    current = 0

    def new_state() -> int:
        nonlocal next_state
        state = next_state
        next_state += 1
        return state

    for element in elements:
        atom = element.atom
        quantifier = element.quantifier
        # mandatory repetitions form a chain
        for _ in range(quantifier.minimum):
            nxt = new_state()
            transitions.append((current, atom, nxt))
            current = nxt
        if quantifier.maximum is None:
            # unbounded tail: a single state with a self loop, reachable by
            # epsilon so that zero extra repetitions are allowed
            loop = new_state()
            epsilons.append((current, loop))
            transitions.append((loop, atom, loop))
            current = loop
        else:
            # bounded optional repetitions: a chain where every intermediate
            # state can epsilon-skip to the end
            extra = quantifier.maximum - quantifier.minimum
            if extra > 0:
                end = new_state()
                epsilons.append((current, end))
                prev = current
                for _ in range(extra):
                    nxt = new_state()
                    transitions.append((prev, atom, nxt))
                    epsilons.append((nxt, end))
                    prev = nxt
                current = end
    return Nfa(
        n_states=next_state,
        start=0,
        accept=current,
        transitions=transitions,
        epsilons=epsilons,
    )
