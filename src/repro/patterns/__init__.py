"""The restricted pattern language of ANMAT.

Patterns are sequences of characters and character classes drawn from the
generalization tree (Figure 1 of the paper), optionally quantified with
``{N}``, ``+`` or ``*``.  The class deliberately excludes alternation and
nested/recursive quantification, which keeps matching, discovery and
containment tractable (checking equivalence of general regular
expressions is PSPACE-complete).

Public surface:

* :func:`parse_pattern` / :class:`Pattern` — parse and represent patterns
  written in the paper's syntax (``\\LU\\LL*\\ \\A*``, ``900\\D{2}`` …).
* :class:`CharClass` and :data:`GENERALIZATION_TREE` — the Figure 1 tree.
* matching — ``Pattern.matches`` (NFA simulation) and
  :func:`compile_to_regex` (Python ``re`` backend).
* :func:`pattern_contains` — the containment test ``P ⊆ P'``.
* :func:`generalize_string` / :func:`generalize_strings` /
  :class:`PatternHistogram` — learning patterns from values.
* :func:`tokenize` / :func:`ngrams` — the ``Tokenize`` and ``NGrams``
  functions used by the discovery algorithm.
"""

from repro.patterns.alphabet import (
    CharClass,
    GENERALIZATION_TREE,
    GeneralizationTree,
    classify_char,
)
from repro.patterns.syntax import Element, Literal, ClassAtom, Quantifier, ONE
from repro.patterns.parser import parse_pattern
from repro.patterns.pattern import Pattern
from repro.patterns.regex import compile_to_regex
from repro.patterns.containment import pattern_contains, patterns_equivalent
from repro.patterns.generalize import (
    PatternHistogram,
    generalize_string,
    generalize_strings,
    signature_of,
)
from repro.patterns.tokenizer import Token, ngrams, tokenize

__all__ = [
    "CharClass",
    "GENERALIZATION_TREE",
    "GeneralizationTree",
    "classify_char",
    "Element",
    "Literal",
    "ClassAtom",
    "Quantifier",
    "ONE",
    "parse_pattern",
    "Pattern",
    "compile_to_regex",
    "pattern_contains",
    "patterns_equivalent",
    "PatternHistogram",
    "generalize_string",
    "generalize_strings",
    "signature_of",
    "Token",
    "ngrams",
    "tokenize",
]
