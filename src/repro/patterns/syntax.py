"""Abstract syntax for the restricted pattern language.

A pattern is a sequence of :class:`Element` objects.  Each element pairs
an *atom* — either a literal character (:class:`Literal`) or a character
class (:class:`ClassAtom`) — with a :class:`Quantifier`.  The grammar has
no alternation and no nested quantifiers, matching the paper's
restriction ("we do not consider recursive patterns such as ``(α+)*``").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import PatternSyntaxError
from repro.patterns.alphabet import CharClass, classify_char

#: Characters that must be escaped with a backslash when they appear as
#: literals in the concrete syntax.
ESCAPED_LITERALS = {" ", "\\", "{", "}", "+", "*"}


@dataclass(frozen=True)
class Literal:
    """A literal character atom, e.g. the ``9`` in ``900\\D{2}``."""

    char: str

    def __post_init__(self) -> None:
        if len(self.char) != 1:
            raise PatternSyntaxError(
                f"literal atom must be a single character, got {self.char!r}"
            )

    def matches_char(self, char: str) -> bool:
        return char == self.char

    def to_text(self) -> str:
        if self.char in ESCAPED_LITERALS:
            return "\\" + self.char
        return self.char

    @property
    def char_class(self) -> CharClass:
        """The generalization-tree class this literal belongs to."""
        return classify_char(self.char)


@dataclass(frozen=True)
class ClassAtom:
    """A character-class atom, e.g. ``\\LU`` or ``\\D``."""

    char_class: CharClass

    def matches_char(self, char: str) -> bool:
        return self.char_class.contains_char(char)

    def to_text(self) -> str:
        return self.char_class.token


Atom = Union[Literal, ClassAtom]


@dataclass(frozen=True)
class Quantifier:
    """Repetition bounds for an atom.

    ``minimum`` repetitions and ``maximum`` repetitions; ``maximum`` of
    ``None`` means unbounded.  The concrete forms are:

    * exactly one — ``Quantifier(1, 1)`` (no suffix)
    * ``{N}``     — ``Quantifier(N, N)``
    * ``{N,M}``   — ``Quantifier(N, M)``
    * ``+``       — ``Quantifier(1, None)``
    * ``*``       — ``Quantifier(0, None)``
    """

    minimum: int
    maximum: Optional[int]

    def __post_init__(self) -> None:
        if self.minimum < 0:
            raise PatternSyntaxError(f"quantifier minimum must be >= 0, got {self.minimum}")
        if self.maximum is not None and self.maximum < self.minimum:
            raise PatternSyntaxError(
                f"quantifier maximum {self.maximum} is below minimum {self.minimum}"
            )

    @property
    def is_single(self) -> bool:
        return self.minimum == 1 and self.maximum == 1

    @property
    def is_star(self) -> bool:
        return self.minimum == 0 and self.maximum is None

    @property
    def is_plus(self) -> bool:
        return self.minimum == 1 and self.maximum is None

    @property
    def is_unbounded(self) -> bool:
        return self.maximum is None

    def to_text(self) -> str:
        if self.is_single:
            return ""
        if self.is_star:
            return "*"
        if self.is_plus:
            return "+"
        if self.maximum == self.minimum:
            return "{%d}" % self.minimum
        if self.maximum is None:
            return "{%d,}" % self.minimum
        return "{%d,%d}" % (self.minimum, self.maximum)


#: The implicit "exactly one" quantifier.
ONE = Quantifier(1, 1)
STAR = Quantifier(0, None)
PLUS = Quantifier(1, None)


@dataclass(frozen=True)
class Element:
    """One quantified atom within a pattern."""

    atom: Atom
    quantifier: Quantifier = ONE

    def to_text(self) -> str:
        return self.atom.to_text() + self.quantifier.to_text()

    @property
    def min_length(self) -> int:
        """Minimum number of characters this element can consume."""
        return self.quantifier.minimum

    @property
    def max_length(self) -> Optional[int]:
        """Maximum number of characters, or None when unbounded."""
        return self.quantifier.maximum

    def matches_char(self, char: str) -> bool:
        """Whether the underlying atom accepts a single character."""
        return self.atom.matches_char(char)


def literal_elements(text: str) -> list:
    """Build a list of single-character literal elements from a string."""
    return [Element(Literal(c), ONE) for c in text]
