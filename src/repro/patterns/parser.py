"""Parser for the paper's concrete pattern syntax.

Examples of accepted patterns (all taken from the paper)::

    \\D{5}                    five digits
    \\D*                      any number of digits
    900\\D{2}                 the literal ``900`` followed by two digits
    John\\ \\A*               ``John``, a space, then anything
    \\LU\\LL*\\ \\A*            capitalized word, space, anything
    \\A*,\\ Donald\\A*          anything, ``, ``, ``Donald``, anything

Grammar (no alternation, no grouping, no nested quantifiers)::

    pattern    := element*
    element    := atom quantifier?
    atom       := class | literal
    class      := '\\A' | '\\LU' | '\\LL' | '\\D' | '\\S'
    literal    := any non-special character | '\\' special character
    quantifier := '{' INT (',' INT?)? '}' | '+' | '*'
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import PatternSyntaxError
from repro.patterns.alphabet import CharClass
from repro.patterns.syntax import (
    ClassAtom,
    Element,
    Literal,
    ONE,
    PLUS,
    Quantifier,
    STAR,
)

#: Class tokens, longest first so that ``\LU``/``\LL`` win over a would-be
#: single-letter escape.
_CLASS_TOKENS: List[Tuple[str, CharClass]] = [
    ("LU", CharClass.UPPER),
    ("LL", CharClass.LOWER),
    ("A", CharClass.ANY),
    ("D", CharClass.DIGIT),
    ("S", CharClass.SYMBOL),
]

_QUANTIFIER_STARTERS = {"{", "+", "*"}


class _Cursor:
    """A tiny character cursor with error reporting context."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if not self.eof() else ""

    def advance(self) -> str:
        char = self.text[self.pos]
        self.pos += 1
        return char

    def error(self, message: str) -> PatternSyntaxError:
        return PatternSyntaxError(
            f"{message} (at position {self.pos} in {self.text!r})",
            text=self.text,
            position=self.pos,
        )


def _parse_atom(cursor: _Cursor):
    char = cursor.advance()
    if char != "\\":
        if char in _QUANTIFIER_STARTERS:
            raise cursor.error(f"unexpected quantifier character {char!r} with no atom")
        return Literal(char)
    if cursor.eof():
        raise cursor.error("dangling backslash at end of pattern")
    for token, char_class in _CLASS_TOKENS:
        if cursor.text.startswith(token, cursor.pos):
            cursor.pos += len(token)
            return ClassAtom(char_class)
    # escaped literal, e.g. "\ " (space), "\\", "\{"
    return Literal(cursor.advance())


def _parse_int(cursor: _Cursor) -> int:
    digits = ""
    while not cursor.eof() and cursor.peek().isdigit():
        digits += cursor.advance()
    if not digits:
        raise cursor.error("expected an integer in quantifier")
    return int(digits)


def _parse_quantifier(cursor: _Cursor) -> Quantifier:
    char = cursor.peek()
    if char == "*":
        cursor.advance()
        return STAR
    if char == "+":
        cursor.advance()
        return PLUS
    if char == "{":
        cursor.advance()
        minimum = _parse_int(cursor)
        maximum: Optional[int] = minimum
        if cursor.peek() == ",":
            cursor.advance()
            if cursor.peek() == "}":
                maximum = None
            else:
                maximum = _parse_int(cursor)
        if cursor.peek() != "}":
            raise cursor.error("unterminated quantifier, expected '}'")
        cursor.advance()
        return Quantifier(minimum, maximum)
    return ONE


def parse_elements(text: str) -> List[Element]:
    """Parse pattern text into a list of elements."""
    cursor = _Cursor(text)
    elements: List[Element] = []
    while not cursor.eof():
        atom = _parse_atom(cursor)
        quantifier = _parse_quantifier(cursor)
        elements.append(Element(atom, quantifier))
    return elements


def parse_pattern(text: str):
    """Parse pattern text into a :class:`~repro.patterns.pattern.Pattern`."""
    from repro.patterns.pattern import Pattern

    return Pattern(parse_elements(text), source=text)
