"""Compilation of patterns to Python regular expressions.

The paper's error detection engine "creates an index supporting regular
expressions for each column present on the LHS of the PFDs"; our fast
matching backend is Python's ``re`` module.  Every pattern in the
restricted language maps directly onto a regex, so compilation never
fails; the function still returns ``Optional`` so callers can fall back
to NFA simulation defensively.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.patterns.alphabet import CharClass
from repro.patterns.syntax import ClassAtom, Element, Literal

_CLASS_REGEX = {
    CharClass.ANY: r"[\s\S]",
    CharClass.UPPER: r"[A-Z]",
    CharClass.LOWER: r"[a-z]",
    CharClass.DIGIT: r"[0-9]",
    CharClass.SYMBOL: r"[^A-Za-z0-9]",
}


def _atom_regex(atom) -> str:
    if isinstance(atom, Literal):
        return re.escape(atom.char)
    if isinstance(atom, ClassAtom):
        return _CLASS_REGEX[atom.char_class]
    raise TypeError(f"unknown atom type {atom!r}")


def element_to_regex(element: Element) -> str:
    """Render one quantified atom as regex source text."""
    body = _atom_regex(element.atom)
    quantifier = element.quantifier
    if quantifier.is_single:
        return body
    if quantifier.is_star:
        return body + "*"
    if quantifier.is_plus:
        return body + "+"
    if quantifier.maximum == quantifier.minimum:
        return "%s{%d}" % (body, quantifier.minimum)
    if quantifier.maximum is None:
        return "%s{%d,}" % (body, quantifier.minimum)
    return "%s{%d,%d}" % (body, quantifier.minimum, quantifier.maximum)


def pattern_to_regex_source(pattern) -> str:
    """Regex source (no anchors) equivalent to the pattern."""
    return "".join(element_to_regex(e) for e in pattern.elements)


def compile_to_regex(pattern) -> Optional["re.Pattern[str]"]:
    """Compile a pattern to a Python regex object (full-match semantics
    are applied by callers via ``fullmatch``)."""
    try:
        return re.compile(pattern_to_regex_source(pattern))
    except re.error:  # pragma: no cover - defensive, grammar prevents this
        return None
