"""Pattern containment: ``P ⊆ P'`` iff every string matching P matches P'.

General regular-expression containment is PSPACE-complete, which is one
of the reasons the paper restricts the pattern language.  Within the
restricted language the check stays cheap: patterns compile to small
linear NFAs, and the *symbolic alphabet* needed to compare two patterns
is finite — every literal character mentioned by either pattern plus one
"residual" symbol per character class (standing for all remaining members
of that class).  We determinize both NFAs over that symbolic alphabet and
search the product automaton for a string accepted by P but not by P'.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple, Union

from repro.patterns.alphabet import CharClass, classify_char
from repro.patterns.nfa import Nfa
from repro.patterns.syntax import ClassAtom, Literal

#: A symbolic alphabet symbol: either a concrete literal character or the
#: residual of a character class (all members not named as literals).
SymbolicChar = Tuple[str, Union[str, CharClass]]

_RESIDUAL_CLASSES = (
    CharClass.UPPER,
    CharClass.LOWER,
    CharClass.DIGIT,
    CharClass.SYMBOL,
)


def _symbolic_alphabet(patterns: Sequence) -> List[SymbolicChar]:
    """Build the finite symbolic alphabet covering both patterns."""
    literals = set()
    for pattern in patterns:
        for element in pattern.elements:
            if isinstance(element.atom, Literal):
                literals.add(element.atom.char)
    alphabet: List[SymbolicChar] = [("lit", c) for c in sorted(literals)]
    class_sizes = {CharClass.UPPER: 26, CharClass.LOWER: 26, CharClass.DIGIT: 10}
    for char_class in _RESIDUAL_CLASSES:
        # The residual is empty only if every member of the class appears
        # as a literal (possible only for the finite classes).
        members_named = {c for c in literals if classify_char(c) is char_class}
        size = class_sizes.get(char_class)
        if size is None or len(members_named) < size:
            alphabet.append(("res", char_class))
    return alphabet


def _atom_accepts_symbol(atom, symbol: SymbolicChar) -> bool:
    """Whether a pattern atom accepts a symbolic alphabet symbol."""
    kind, payload = symbol
    if isinstance(atom, Literal):
        return kind == "lit" and payload == atom.char
    if isinstance(atom, ClassAtom):
        char_class = atom.char_class
        if kind == "lit":
            return char_class.contains_char(payload)  # type: ignore[arg-type]
        if char_class is CharClass.ANY:
            return True
        return char_class is payload
    raise TypeError(f"unknown atom type {atom!r}")


def _determinize(
    nfa: Nfa, alphabet: Sequence[SymbolicChar]
) -> Tuple[Dict[FrozenSet[int], Dict[SymbolicChar, FrozenSet[int]]], FrozenSet[int]]:
    """Subset construction of the NFA over the symbolic alphabet."""
    start = nfa.epsilon_closure([nfa.start])
    table: Dict[FrozenSet[int], Dict[SymbolicChar, FrozenSet[int]]] = {}
    stack = [start]
    while stack:
        state = stack.pop()
        if state in table:
            continue
        row: Dict[SymbolicChar, FrozenSet[int]] = {}
        for symbol in alphabet:
            nxt = nfa.step(state, lambda atom: _atom_accepts_symbol(atom, symbol))
            row[symbol] = nxt
            if nxt and nxt not in table:
                stack.append(nxt)
        table[state] = row
    table.setdefault(frozenset(), {s: frozenset() for s in alphabet})
    return table, start


def pattern_contains(inner, outer) -> bool:
    """Return True iff ``inner ⊆ outer`` (outer is at least as general).

    Both arguments are :class:`~repro.patterns.pattern.Pattern` objects.
    """
    alphabet = _symbolic_alphabet([inner, outer])
    inner_dfa, inner_start = _determinize(inner.nfa, alphabet)
    outer_dfa, outer_start = _determinize(outer.nfa, alphabet)

    def accepting(nfa: Nfa, state: FrozenSet[int]) -> bool:
        return nfa.accept in state

    seen = set()
    stack = [(inner_start, outer_start)]
    while stack:
        pair = stack.pop()
        if pair in seen:
            continue
        seen.add(pair)
        inner_state, outer_state = pair
        if accepting(inner.nfa, inner_state) and not accepting(outer.nfa, outer_state):
            return False
        if not inner_state:
            # inner automaton is dead — no further counterexample possible
            continue
        for symbol in alphabet:
            nxt_inner = inner_dfa[inner_state][symbol]
            nxt_outer = outer_dfa.get(outer_state, {}).get(symbol, frozenset())
            if not nxt_inner:
                continue
            stack.append((nxt_inner, nxt_outer))
    return True


def patterns_equivalent(left, right) -> bool:
    """Whether two patterns accept exactly the same strings."""
    return pattern_contains(left, right) and pattern_contains(right, left)
