"""Exception hierarchy for the repro package.

Every exception raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """A schema is malformed or an attribute reference cannot be resolved."""


class TableError(ReproError):
    """A table operation received inconsistent rows, columns or indexes."""


class CsvFormatError(TableError):
    """A CSV document could not be parsed into a rectangular table."""


class PatternSyntaxError(ReproError):
    """A pattern string violates the restricted pattern grammar."""

    def __init__(self, message, text=None, position=None):
        super().__init__(message)
        self.text = text
        self.position = position


class PatternSemanticsError(ReproError):
    """A pattern is syntactically valid but cannot be used as requested."""


class ConstraintError(ReproError):
    """A constrained pattern or PFD definition is invalid."""


class DiscoveryError(ReproError):
    """The PFD discovery pipeline was misconfigured or failed."""


class DetectionError(ReproError):
    """The error-detection engine was asked to do something impossible."""


class ProjectError(ReproError):
    """The ANMAT project store is inconsistent or a lookup failed."""


class EvaluationError(ReproError):
    """Evaluation metrics were requested on incompatible inputs."""
