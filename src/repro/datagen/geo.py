"""Zip / city / state dataset (the paper's D5 and the Table 2 example).

Five-digit zip codes whose leading digits determine the city and the
state (``6060\\D → Chicago``, ``60\\D{3} → IL``, ``95\\D{3} → CA`` …).
Three error families are injected, mirroring the Table 3 error column:

* wrong-but-valid city or state (swap),
* misspelled city ("Chicag", "Chciago") — a typo,
* miscased state ("lL") — a case flip.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.datagen.corruption import CorruptionSpec, ErrorInjector, GeneratedDataset
from repro.dataset.table import Table

#: 3-digit zip prefix → (city, state); 2-digit prefixes determine the state.
ZIP_PREFIXES: Dict[str, Tuple[str, str]] = {
    "606": ("Chicago", "IL"),
    "607": ("Chicago", "IL"),
    "617": ("Springfield", "IL"),
    "900": ("Los Angeles", "CA"),
    "901": ("Los Angeles", "CA"),
    "941": ("San Francisco", "CA"),
    "956": ("Sacramento", "CA"),
    "100": ("New York", "NY"),
    "104": ("Bronx", "NY"),
    "112": ("Brooklyn", "NY"),
    "331": ("Miami", "FL"),
    "335": ("Tampa", "FL"),
    "770": ("Houston", "TX"),
    "752": ("Dallas", "TX"),
    "787": ("Austin", "TX"),
    "981": ("Seattle", "WA"),
    "992": ("Spokane", "WA"),
}


def generate_zip_city_state(
    n_rows: int = 3000,
    seed: int = 23,
    city_error_rate: float = 0.01,
    city_typo_rate: float = 0.01,
    state_error_rate: float = 0.01,
    state_case_rate: float = 0.005,
) -> GeneratedDataset:
    """Generate the zip → city/state dataset with four error families."""
    rng = random.Random(seed)
    prefixes = sorted(ZIP_PREFIXES)
    cities = sorted({city for city, _state in ZIP_PREFIXES.values()})
    states = sorted({state for _city, state in ZIP_PREFIXES.values()})
    rows: List[Tuple[str, str, str]] = []
    for _ in range(n_rows):
        prefix = rng.choice(prefixes)
        zip_code = f"{prefix}{rng.randrange(0, 100):02d}"
        city, state = ZIP_PREFIXES[prefix]
        rows.append((zip_code, city, state))
    clean = Table.from_rows(["zip", "city", "state"], rows)
    injector = ErrorInjector(seed=seed + 1)
    dirty, error_cells = injector.corrupt(
        clean,
        [
            CorruptionSpec("city", city_error_rate, kind="swap", alternatives=cities),
            CorruptionSpec("city", city_typo_rate, kind="typo"),
            CorruptionSpec("state", state_error_rate, kind="swap", alternatives=states),
            CorruptionSpec("state", state_case_rate, kind="case"),
        ],
    )
    return GeneratedDataset(
        name="zip_city_state",
        table=dirty,
        clean_table=clean,
        error_cells=error_cells,
        description=(
            "ZIP → CITY / ZIP → STATE (paper dataset D5): 5-digit zip codes "
            "whose 3-digit prefix determines the city and whose 2-digit "
            "prefix determines the state; wrong values, misspellings and "
            "case errors are injected."
        ),
    )
