"""Full-name / gender dataset (the paper's D2).

Values have the shape ``"Lastname, Firstname M."`` used in Table 3
("Holloway, Donald E.").  The first name deterministically implies the
gender in the clean data; a configurable fraction of gender cells is then
swapped, which is exactly the error family λ2/λ4 detect.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.datagen.corruption import CorruptionSpec, ErrorInjector, GeneratedDataset
from repro.dataset.table import Table

#: First name → gender, mirroring the names that appear in the paper.
FIRST_NAMES: Dict[str, str] = {
    "Donald": "M",
    "David": "M",
    "Jerry": "M",
    "Alan": "M",
    "John": "M",
    "Michael": "M",
    "Robert": "M",
    "James": "M",
    "Richard": "M",
    "Thomas": "M",
    "Steven": "M",
    "Brian": "M",
    "Stacey": "F",
    "Susan": "F",
    "Mary": "F",
    "Linda": "F",
    "Barbara": "F",
    "Patricia": "F",
    "Jennifer": "F",
    "Elizabeth": "F",
    "Karen": "F",
    "Nancy": "F",
    "Laura": "F",
    "Sarah": "F",
}

LAST_NAMES: List[str] = [
    "Holloway", "Jones", "Kimbell", "Mallack", "Otillio", "Smith", "Johnson",
    "Williams", "Brown", "Davis", "Miller", "Wilson", "Moore", "Taylor",
    "Anderson", "Thompson", "Martin", "Garcia", "Martinez", "Robinson",
    "Clark", "Lewis", "Walker", "Hall", "Allen", "Young", "King", "Wright",
]

MIDDLE_INITIALS = "ABCDEFGHJKLMNPRSTW"


def generate_fullname_gender(
    n_rows: int = 2000,
    seed: int = 7,
    error_rate: float = 0.02,
    middle_initial_probability: float = 0.7,
) -> GeneratedDataset:
    """Generate the full-name → gender dataset with injected gender errors."""
    rng = random.Random(seed)
    first_names = sorted(FIRST_NAMES)
    rows: List[Tuple[str, str]] = []
    for _ in range(n_rows):
        first = rng.choice(first_names)
        last = rng.choice(LAST_NAMES)
        if rng.random() < middle_initial_probability:
            full = f"{last}, {first} {rng.choice(MIDDLE_INITIALS)}."
        else:
            full = f"{last}, {first}"
        rows.append((full, FIRST_NAMES[first]))
    clean = Table.from_rows(["full_name", "gender"], rows)
    injector = ErrorInjector(seed=seed + 1)
    dirty, error_cells = injector.corrupt(
        clean,
        [
            CorruptionSpec(
                attribute="gender",
                error_rate=error_rate,
                kind="swap",
                alternatives=["M", "F"],
            )
        ],
    )
    return GeneratedDataset(
        name="fullname_gender",
        table=dirty,
        clean_table=clean,
        error_cells=error_cells,
        description=(
            "Full Name → Gender (paper dataset D2): 'Lastname, Firstname M.' "
            "values whose first name determines the gender; a fraction of "
            "gender cells is swapped."
        ),
    )
