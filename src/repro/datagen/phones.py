"""Phone-number / state dataset (the paper's D1).

Ten-digit phone numbers whose three-digit area code determines the state
(the Table 3 tableau: ``850\\D{7} → FL``, ``607\\D{7} → NY`` …).  Phone
numbers are unique, so a classical FD ``Phone → State`` trivially holds
and detects nothing; only the area-code *pattern* exposes the swapped
states.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.datagen.corruption import CorruptionSpec, ErrorInjector, GeneratedDataset
from repro.dataset.table import Table

#: Area code → state, including every pair shown in Table 3 of the paper.
AREA_CODES: Dict[str, str] = {
    "850": "FL",
    "607": "NY",
    "404": "GA",
    "217": "IL",
    "860": "CT",
    "212": "NY",
    "305": "FL",
    "312": "IL",
    "415": "CA",
    "617": "MA",
    "713": "TX",
    "206": "WA",
    "303": "CO",
    "602": "AZ",
    "503": "OR",
    "702": "NV",
}


def generate_phone_state(
    n_rows: int = 2000,
    seed: int = 11,
    error_rate: float = 0.02,
) -> GeneratedDataset:
    """Generate the phone-number → state dataset with swapped states."""
    rng = random.Random(seed)
    area_codes = sorted(AREA_CODES)
    states = sorted(set(AREA_CODES.values()))
    rows: List[Tuple[str, str]] = []
    seen_numbers = set()
    while len(rows) < n_rows:
        area = rng.choice(area_codes)
        local = f"{rng.randrange(200, 999)}{rng.randrange(0, 10000):04d}"
        number = area + local
        if number in seen_numbers:
            continue
        seen_numbers.add(number)
        rows.append((number, AREA_CODES[area]))
    clean = Table.from_rows(["phone_number", "state"], rows)
    injector = ErrorInjector(seed=seed + 1)
    dirty, error_cells = injector.corrupt(
        clean,
        [
            CorruptionSpec(
                attribute="state",
                error_rate=error_rate,
                kind="swap",
                alternatives=states,
            )
        ],
    )
    return GeneratedDataset(
        name="phone_state",
        table=dirty,
        clean_table=clean,
        error_cells=error_cells,
        description=(
            "Phone Number → State (paper dataset D1): unique 10-digit numbers "
            "whose area code determines the state; a fraction of state cells "
            "is replaced by a different valid state."
        ),
    )
