"""Synthetic dataset generators.

The demo used data.gov extracts, ChEMBL, the MIT data warehouse and
private datasets from Qatari companies — none of which ship with this
reproduction.  The generators below produce seeded synthetic tables with
the same *syntactic shape* as those datasets (zip prefixes determining
cities, area codes determining states, first names determining gender,
structured employee and compound identifiers) plus controlled error
injection, so every experiment has ground-truth labels the original dirty
data lacks.
"""

from repro.datagen.corruption import CorruptionSpec, ErrorInjector, GeneratedDataset
from repro.datagen.people import generate_fullname_gender, FIRST_NAMES
from repro.datagen.phones import generate_phone_state, AREA_CODES
from repro.datagen.geo import generate_zip_city_state, ZIP_PREFIXES
from repro.datagen.employees import generate_employee_ids, DEPARTMENTS
from repro.datagen.chembl import generate_compound_table
from repro.datagen.paper_examples import name_table_d1, zip_table_d2
from repro.datagen.registry import DATASET_BUILDERS, build_dataset, dataset_names

__all__ = [
    "CorruptionSpec",
    "ErrorInjector",
    "GeneratedDataset",
    "generate_fullname_gender",
    "FIRST_NAMES",
    "generate_phone_state",
    "AREA_CODES",
    "generate_zip_city_state",
    "ZIP_PREFIXES",
    "generate_employee_ids",
    "DEPARTMENTS",
    "generate_compound_table",
    "name_table_d1",
    "zip_table_d2",
    "DATASET_BUILDERS",
    "build_dataset",
    "dataset_names",
]
