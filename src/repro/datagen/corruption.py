"""Error injection with ground-truth tracking.

Every generator produces a clean table and then corrupts a controlled
fraction of cells through :class:`ErrorInjector`, which records exactly
which cells were touched.  Three corruption families are supported,
chosen to exercise different detectors:

* **swap** — replace the value with a *different but well-formed* value
  of the same domain (a valid state paired with the wrong area code).
  Only dependency-based detectors can catch these.
* **typo** — drop, duplicate or transpose a character ("Chicag",
  "Chciago").  Syntactic outlier detectors can catch many of these.
* **case** — lower-case a character of an otherwise upper-case code
  ("lL" for "IL"), reproducing the Table 3 examples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dataset.table import Table

Cell = Tuple[int, str]


@dataclass
class CorruptionSpec:
    """How to corrupt one attribute."""

    attribute: str
    error_rate: float
    kind: str = "swap"  # swap | typo | case
    #: value pool for swap corruption; defaults to the column's own values
    alternatives: Optional[Sequence[str]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError(f"error_rate must be in [0, 1], got {self.error_rate}")
        if self.kind not in ("swap", "typo", "case"):
            raise ValueError(f"unknown corruption kind {self.kind!r}")


@dataclass
class GeneratedDataset:
    """A generated table together with its ground truth."""

    name: str
    table: Table
    clean_table: Table
    error_cells: Set[Cell] = field(default_factory=set)
    description: str = ""

    @property
    def n_errors(self) -> int:
        return len(self.error_cells)

    def error_rows(self) -> List[int]:
        return sorted({row for row, _attr in self.error_cells})

    def is_error(self, row: int, attribute: str) -> bool:
        return (row, attribute) in self.error_cells


def _typo(value: str, rng: random.Random) -> str:
    """Introduce a single-character typo, guaranteed to change the value."""
    if not value:
        return "?"
    for _ in range(10):
        choice = rng.choice(("drop", "dup", "swap"))
        position = rng.randrange(len(value))
        if choice == "drop" and len(value) > 1:
            candidate = value[:position] + value[position + 1 :]
        elif choice == "dup":
            candidate = value[:position] + value[position] + value[position:]
        else:
            if len(value) < 2:
                continue
            position = rng.randrange(len(value) - 1)
            candidate = (
                value[:position]
                + value[position + 1]
                + value[position]
                + value[position + 2 :]
            )
        if candidate != value:
            return candidate
    return value + "~"


def _case_flip(value: str, rng: random.Random) -> str:
    """Lower-case one upper-case character (or upper-case a lower one)."""
    letters = [i for i, c in enumerate(value) if c.isalpha()]
    if not letters:
        return _typo(value, rng)
    position = rng.choice(letters)
    char = value[position]
    flipped = char.lower() if char.isupper() else char.upper()
    if flipped == char:
        return _typo(value, rng)
    return value[:position] + flipped + value[position + 1 :]


class ErrorInjector:
    """Applies corruption specs to a table, recording the touched cells."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    def corrupt(
        self, table: Table, specs: Sequence[CorruptionSpec]
    ) -> Tuple[Table, Set[Cell]]:
        """Return a corrupted copy of the table and the affected cells."""
        dirty = table.copy()
        error_cells: Set[Cell] = set()
        for spec in specs:
            error_cells |= self._apply(dirty, table, spec)
        return dirty, error_cells

    def _apply(self, dirty: Table, clean: Table, spec: CorruptionSpec) -> Set[Cell]:
        values = clean.column(spec.attribute)
        candidates = [row for row, value in enumerate(values) if value != ""]
        n_errors = int(round(spec.error_rate * len(candidates)))
        if spec.error_rate > 0 and n_errors == 0 and candidates:
            n_errors = 1
        rows = self.rng.sample(candidates, min(n_errors, len(candidates)))
        pool = list(spec.alternatives) if spec.alternatives else sorted(set(values))
        touched: Set[Cell] = set()
        for row in rows:
            original = values[row]
            corrupted = self._corrupt_value(original, spec, pool)
            if corrupted == original:
                continue
            dirty.set_cell(row, spec.attribute, corrupted)
            touched.add((row, spec.attribute))
        return touched

    def _corrupt_value(self, value: str, spec: CorruptionSpec, pool: Sequence[str]) -> str:
        if spec.kind == "swap":
            alternatives = [v for v in pool if v != value and v != ""]
            if not alternatives:
                return _typo(value, self.rng)
            return self.rng.choice(alternatives)
        if spec.kind == "typo":
            return _typo(value, self.rng)
        return _case_flip(value, self.rng)
