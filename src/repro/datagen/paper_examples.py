"""The literal running examples of the paper (Tables 1 and 2).

These two four-row tables, including their erroneous cells (r4[gender]
and s4[city]), are used throughout the introduction to motivate λ1–λ5;
the quickstart example and the intro-example benchmark reproduce the
paper's discussion on them verbatim.
"""

from __future__ import annotations

from repro.datagen.corruption import GeneratedDataset
from repro.dataset.table import Table


def name_table_d1() -> GeneratedDataset:
    """Table 1 (D1): the Name table with the r4[gender] error."""
    clean = Table.from_rows(
        ["name", "gender"],
        [
            ["John Charles", "M"],
            ["John Bosco", "M"],
            ["Susan Orlean", "F"],
            ["Susan Boyle", "F"],
        ],
    )
    dirty = clean.copy()
    dirty.set_cell(3, "gender", "M")  # r4[gender] should be F
    return GeneratedDataset(
        name="paper_d1_name",
        table=dirty,
        clean_table=clean,
        error_cells={(3, "gender")},
        description="Paper Table 1: Name table; r4[gender]='M' is wrong (ground truth 'F').",
    )


def zip_table_d2() -> GeneratedDataset:
    """Table 2 (D2): the Zip table with the s4[city] error."""
    clean = Table.from_rows(
        ["zip", "city"],
        [
            ["90001", "Los Angeles"],
            ["90002", "Los Angeles"],
            ["90003", "Los Angeles"],
            ["90004", "Los Angeles"],
        ],
    )
    dirty = clean.copy()
    dirty.set_cell(3, "city", "New York")  # s4[city] should be Los Angeles
    return GeneratedDataset(
        name="paper_d2_zip",
        table=dirty,
        clean_table=clean,
        error_cells={(3, "city")},
        description="Paper Table 2: Zip table; s4[city]='New York' is wrong (ground truth 'Los Angeles').",
    )
