"""Structured employee-ID dataset (the paper's introduction example).

Employee IDs such as ``"F-9-107"`` encode meta-knowledge in their parts:
the leading letter determines the department ("F" → Finance) and the
middle digit determines the grade.  This models the anonymized MIT data
warehouse / company datasets mentioned in the demo, where identifiers
carry embedded semantics.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.datagen.corruption import CorruptionSpec, ErrorInjector, GeneratedDataset
from repro.dataset.table import Table

#: Department code (first character of the employee id) → department name.
DEPARTMENTS: Dict[str, str] = {
    "F": "Finance",
    "E": "Engineering",
    "H": "Human Resources",
    "M": "Marketing",
    "S": "Sales",
    "R": "Research",
}

#: Grade digit (second field of the employee id) → grade label.
GRADES: Dict[str, str] = {
    "1": "Junior",
    "3": "Associate",
    "5": "Senior",
    "7": "Principal",
    "9": "Director",
}


def generate_employee_ids(
    n_rows: int = 1500,
    seed: int = 31,
    department_error_rate: float = 0.02,
    grade_error_rate: float = 0.01,
) -> GeneratedDataset:
    """Generate the employee-ID table with wrong departments/grades injected."""
    rng = random.Random(seed)
    department_codes = sorted(DEPARTMENTS)
    grade_digits = sorted(GRADES)
    rows: List[Tuple[str, str, str]] = []
    seen = set()
    while len(rows) < n_rows:
        code = rng.choice(department_codes)
        grade = rng.choice(grade_digits)
        serial = rng.randrange(100, 1000)
        employee_id = f"{code}-{grade}-{serial}"
        if employee_id in seen:
            continue
        seen.add(employee_id)
        rows.append((employee_id, DEPARTMENTS[code], GRADES[grade]))
    clean = Table.from_rows(["employee_id", "department", "grade"], rows)
    injector = ErrorInjector(seed=seed + 1)
    dirty, error_cells = injector.corrupt(
        clean,
        [
            CorruptionSpec(
                "department",
                department_error_rate,
                kind="swap",
                alternatives=sorted(DEPARTMENTS.values()),
            ),
            CorruptionSpec(
                "grade",
                grade_error_rate,
                kind="swap",
                alternatives=sorted(GRADES.values()),
            ),
        ],
    )
    return GeneratedDataset(
        name="employee_ids",
        table=dirty,
        clean_table=clean,
        error_cells=error_cells,
        description=(
            "Employee IDs of the form 'F-9-107' (introduction example): the "
            "leading letter determines the department and the middle digit "
            "the grade; wrong departments and grades are injected."
        ),
    )
