"""Registry of named dataset builders.

The ANMAT session layer, the examples and the benchmarks all refer to
datasets by name; this registry maps those names onto the generator
functions with their default parameters so a dataset can be rebuilt
reproducibly from a single string.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datagen.chembl import generate_compound_table
from repro.datagen.corruption import GeneratedDataset
from repro.datagen.employees import generate_employee_ids
from repro.datagen.geo import generate_zip_city_state
from repro.datagen.paper_examples import name_table_d1, zip_table_d2
from repro.datagen.people import generate_fullname_gender
from repro.datagen.phones import generate_phone_state
from repro.errors import ProjectError

#: Name → zero-argument builder returning a :class:`GeneratedDataset`.
DATASET_BUILDERS: Dict[str, Callable[..., GeneratedDataset]] = {
    "phone_state": generate_phone_state,
    "fullname_gender": generate_fullname_gender,
    "zip_city_state": generate_zip_city_state,
    "employee_ids": generate_employee_ids,
    "chembl_records": generate_compound_table,
    "paper_d1_name": name_table_d1,
    "paper_d2_zip": zip_table_d2,
}


def dataset_names() -> List[str]:
    """All registered dataset names."""
    return sorted(DATASET_BUILDERS)


def build_dataset(name: str, **kwargs) -> GeneratedDataset:
    """Build a registered dataset by name, forwarding generator kwargs."""
    try:
        builder = DATASET_BUILDERS[name]
    except KeyError:
        raise ProjectError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        ) from None
    return builder(**kwargs)
