"""ChEMBL-like compound dataset.

The demo profiled a ChEMBL download.  The relevant syntactic structure is
its identifier scheme: compound ids look like ``CHEMBL25``, assay ids are
``CHEMBL-A-<digits>``-style codes, and a type column is implied by the id
prefix.  This generator reproduces that structure: the textual prefix of
the record id determines the record type, and document ids carry the
publication year in a fixed position.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.datagen.corruption import CorruptionSpec, ErrorInjector, GeneratedDataset
from repro.dataset.table import Table

#: Identifier prefix → record type.
ID_PREFIXES: Dict[str, str] = {
    "CHEMBL": "compound",
    "ASSAY": "assay",
    "TARGET": "target",
    "DOC": "document",
}


def generate_compound_table(
    n_rows: int = 2000,
    seed: int = 41,
    type_error_rate: float = 0.02,
) -> GeneratedDataset:
    """Generate the ChEMBL-like record table with wrong record types injected."""
    rng = random.Random(seed)
    prefixes = sorted(ID_PREFIXES)
    rows: List[Tuple[str, str, str]] = []
    seen = set()
    while len(rows) < n_rows:
        prefix = rng.choice(prefixes)
        record_id = f"{prefix}{rng.randrange(10, 10_000_000)}"
        if record_id in seen:
            continue
        seen.add(record_id)
        year = rng.randrange(1995, 2019)
        source = f"{year}-{rng.randrange(100, 999)}"
        rows.append((record_id, ID_PREFIXES[prefix], source))
    clean = Table.from_rows(["record_id", "record_type", "source_ref"], rows)
    injector = ErrorInjector(seed=seed + 1)
    dirty, error_cells = injector.corrupt(
        clean,
        [
            CorruptionSpec(
                "record_type",
                type_error_rate,
                kind="swap",
                alternatives=sorted(ID_PREFIXES.values()),
            )
        ],
    )
    return GeneratedDataset(
        name="chembl_records",
        table=dirty,
        clean_table=clean,
        error_cells=error_cells,
        description=(
            "ChEMBL-like record table: the alphabetic prefix of the record id "
            "determines the record type; wrong record types are injected."
        ),
    )
