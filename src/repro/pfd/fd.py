"""Functional dependencies and embedded FDs.

The embedded FD of a PFD is a classical FD ``X → Y`` over the schema; it
names the attributes the tableau's patterns apply to.  The same class is
reused by the baseline FD/CFD miners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.dataset.table import Table
from repro.errors import ConstraintError


@dataclass(frozen=True)
class FunctionalDependency:
    """A classical FD ``lhs → rhs`` over attribute names."""

    lhs: Tuple[str, ...]
    rhs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.lhs or not self.rhs:
            raise ConstraintError("an FD needs non-empty LHS and RHS attribute sets")
        overlap = set(self.lhs) & set(self.rhs)
        if overlap:
            raise ConstraintError(f"attributes {sorted(overlap)} appear on both sides")

    @classmethod
    def of(cls, lhs: Iterable[str] | str, rhs: Iterable[str] | str) -> "FunctionalDependency":
        """Build an FD, accepting single attribute names or iterables."""
        if isinstance(lhs, str):
            lhs = (lhs,)
        if isinstance(rhs, str):
            rhs = (rhs,)
        return cls(tuple(lhs), tuple(rhs))

    @property
    def attributes(self) -> Tuple[str, ...]:
        return self.lhs + self.rhs

    def holds_on(self, table: Table) -> bool:
        """Whether the FD holds exactly on the table (no violating pair)."""
        return not self.violating_pairs(table, limit=1)

    def violating_pairs(self, table: Table, limit: int | None = None) -> List[Tuple[int, int]]:
        """Pairs of row indexes that agree on the LHS but differ on RHS."""
        groups = {}
        for i in range(table.n_rows):
            key = tuple(table.cell(i, a) for a in self.lhs)
            groups.setdefault(key, []).append(i)
        violations: List[Tuple[int, int]] = []
        for rows in groups.values():
            if len(rows) < 2:
                continue
            by_rhs = {}
            for row in rows:
                rhs_value = tuple(table.cell(row, a) for a in self.rhs)
                by_rhs.setdefault(rhs_value, []).append(row)
            if len(by_rhs) < 2:
                continue
            rhs_groups = list(by_rhs.values())
            for gi in range(len(rhs_groups)):
                for gj in range(gi + 1, len(rhs_groups)):
                    for left in rhs_groups[gi]:
                        for right in rhs_groups[gj]:
                            violations.append((min(left, right), max(left, right)))
                            if limit is not None and len(violations) >= limit:
                                return violations
        return violations

    def g3_error(self, table: Table) -> float:
        """The g3 error: the minimum fraction of rows to delete so the FD
        holds.  Used by the approximate-FD baseline miner."""
        if table.n_rows == 0:
            return 0.0
        groups = {}
        for i in range(table.n_rows):
            key = tuple(table.cell(i, a) for a in self.lhs)
            groups.setdefault(key, []).append(i)
        keep = 0
        for rows in groups.values():
            by_rhs = {}
            for row in rows:
                rhs_value = tuple(table.cell(row, a) for a in self.rhs)
                by_rhs[rhs_value] = by_rhs.get(rhs_value, 0) + 1
            keep += max(by_rhs.values())
        return 1.0 - keep / table.n_rows

    def __str__(self) -> str:
        return f"{', '.join(self.lhs)} -> {', '.join(self.rhs)}"


class EmbeddedFD(FunctionalDependency):
    """The FD embedded in a PFD.

    The paper's discovery algorithm only considers single-attribute
    LHS/RHS dependencies (``A → B``); this subclass enforces that and
    exposes convenience accessors for the two attribute names.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.lhs) != 1 or len(self.rhs) != 1:
            raise ConstraintError(
                "an embedded FD relates exactly one LHS attribute to one RHS "
                f"attribute, got {self.lhs} -> {self.rhs}"
            )

    @property
    def lhs_attribute(self) -> str:
        return self.lhs[0]

    @property
    def rhs_attribute(self) -> str:
        return self.rhs[0]

    @classmethod
    def between(cls, lhs: str, rhs: str) -> "EmbeddedFD":
        return cls((lhs,), (rhs,))
