"""The PFD class: an embedded FD plus a pattern tableau.

Terminology follows Section 3 of the paper:

* a **constant PFD** has only constants (or constant patterns) in the
  RHS cells of its tableau — e.g. λ3: ``([zip = 900\\D{2}] → [city = Los
  Angeles])``;
* a **variable PFD** has the wildcard ``⊥`` in the RHS — e.g. λ5:
  ``([zip = ⟨\\D{3}⟩\\D{2}] → [city = ⊥])`` — and is enforced pairwise via
  the ``≡_Q`` equivalence on the constrained LHS pattern.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.constrained.constrained_pattern import ConstrainedPattern
from repro.errors import ConstraintError
from repro.patterns.pattern import Pattern
from repro.pfd.fd import EmbeddedFD
from repro.pfd.tableau import (
    PatternTableau,
    TableauCell,
    TableauRow,
    WILDCARD,
    Wildcard,
    cell_is_constant,
    cell_to_text,
)


class PfdKind(enum.Enum):
    """Whether a PFD fixes its RHS to constants or uses wildcards."""

    CONSTANT = "constant"
    VARIABLE = "variable"
    MIXED = "mixed"


class PFD:
    """A pattern functional dependency ``R(X → Y, Tp)``."""

    def __init__(
        self,
        fd: EmbeddedFD,
        tableau: Optional[PatternTableau] = None,
        name: Optional[str] = None,
        relation: Optional[str] = None,
    ):
        self.fd = fd
        self.tableau = tableau if tableau is not None else PatternTableau(list(fd.attributes))
        missing = set(fd.attributes) - set(self.tableau.attributes)
        if missing:
            raise ConstraintError(
                f"tableau is missing attributes {sorted(missing)} of the embedded FD {fd}"
            )
        self.name = name
        self.relation = relation

    # -- constructors ---------------------------------------------------------

    @classmethod
    def constant(
        cls,
        lhs_attribute: str,
        rhs_attribute: str,
        rows: Iterable[Mapping[str, TableauCell]] = (),
        name: Optional[str] = None,
        relation: Optional[str] = None,
    ) -> "PFD":
        """Build a constant PFD from (lhs pattern → rhs constant) rows."""
        fd = EmbeddedFD.between(lhs_attribute, rhs_attribute)
        tableau = PatternTableau([lhs_attribute, rhs_attribute])
        pfd = cls(fd, tableau, name=name, relation=relation)
        for row in rows:
            pfd.add_rule(row)
        return pfd

    @classmethod
    def variable(
        cls,
        lhs_attribute: str,
        rhs_attribute: str,
        lhs_pattern: Union[ConstrainedPattern, Pattern, str],
        name: Optional[str] = None,
        relation: Optional[str] = None,
    ) -> "PFD":
        """Build a variable PFD: LHS constrained pattern, RHS wildcard."""
        fd = EmbeddedFD.between(lhs_attribute, rhs_attribute)
        tableau = PatternTableau([lhs_attribute, rhs_attribute])
        pfd = cls(fd, tableau, name=name, relation=relation)
        pfd.add_rule({lhs_attribute: _coerce_lhs(lhs_pattern), rhs_attribute: WILDCARD})
        return pfd

    def add_rule(self, row: Mapping[str, TableauCell]) -> TableauRow:
        """Append a pattern tuple to the tableau."""
        coerced = {}
        for attribute, cell in row.items():
            if attribute == self.lhs_attribute and isinstance(cell, str):
                # LHS strings are pattern syntax; RHS strings stay constants.
                coerced[attribute] = _coerce_lhs(cell)
            else:
                coerced[attribute] = cell
        return self.tableau.add_row(coerced)

    # -- accessors --------------------------------------------------------------

    @property
    def lhs_attribute(self) -> str:
        return self.fd.lhs_attribute

    @property
    def rhs_attribute(self) -> str:
        return self.fd.rhs_attribute

    @property
    def kind(self) -> PfdKind:
        """Constant / variable / mixed classification of the tableau."""
        rhs_cells = [row.cell(self.rhs_attribute) for row in self.tableau]
        if not rhs_cells:
            return PfdKind.CONSTANT
        constant = [cell_is_constant(c) for c in rhs_cells]
        if all(constant):
            return PfdKind.CONSTANT
        if not any(constant):
            return PfdKind.VARIABLE
        return PfdKind.MIXED

    @property
    def is_constant(self) -> bool:
        return self.kind is PfdKind.CONSTANT

    @property
    def is_variable(self) -> bool:
        return self.kind is PfdKind.VARIABLE

    def constant_rules(self) -> List[TableauRow]:
        """Tableau rows whose RHS cell is a constant."""
        return [
            row
            for row in self.tableau
            if cell_is_constant(row.cell(self.rhs_attribute))
        ]

    def variable_rules(self) -> List[TableauRow]:
        """Tableau rows whose RHS cell is the wildcard."""
        return [
            row
            for row in self.tableau
            if isinstance(row.cell(self.rhs_attribute), Wildcard)
        ]

    def lhs_cell_of(self, row: TableauRow) -> TableauCell:
        return row.cell(self.lhs_attribute)

    def rhs_cell_of(self, row: TableauRow) -> TableauCell:
        return row.cell(self.rhs_attribute)

    # -- coverage ----------------------------------------------------------------

    def coverage(self, lhs_values: Sequence[str]) -> float:
        """Fraction of LHS values matching at least one tableau row's LHS
        pattern — the "minimum coverage" statistic of Section 4."""
        if not lhs_values:
            return 0.0
        matched = 0
        lhs_cells = [row.cell(self.lhs_attribute) for row in self.tableau]
        for value in lhs_values:
            for cell in lhs_cells:
                if isinstance(cell, Wildcard):
                    matched += 1
                    break
                if isinstance(cell, str):
                    if value == cell:
                        matched += 1
                        break
                elif cell.matches(value):
                    matched += 1
                    break
        return matched / len(lhs_values)

    # -- rendering -----------------------------------------------------------------

    def describe(self) -> str:
        """One-line description in the paper's λ-notation."""
        relation = self.relation or "R"
        parts = []
        for row in self.tableau:
            lhs = cell_to_text(row.cell(self.lhs_attribute))
            rhs_cell = row.cell(self.rhs_attribute)
            if isinstance(rhs_cell, Wildcard):
                parts.append(f"[{self.lhs_attribute} = {lhs}] → [{self.rhs_attribute}]")
            else:
                parts.append(
                    f"[{self.lhs_attribute} = {lhs}] → "
                    f"[{self.rhs_attribute} = {cell_to_text(rhs_cell)}]"
                )
        body = "; ".join(parts) if parts else f"[{self.lhs_attribute}] → [{self.rhs_attribute}]"
        label = f"{self.name}: " if self.name else ""
        return f"{label}{relation} ({body})"

    def __str__(self) -> str:
        return self.describe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PFD({self.fd}, {len(self.tableau)} rules, kind={self.kind.value})"

    # -- serialization ----------------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-friendly representation (used by the project store)."""
        rows = []
        for row in self.tableau:
            cells = {}
            for attribute in self.tableau.attributes:
                cell = row.cell(attribute)
                if isinstance(cell, Wildcard):
                    cells[attribute] = {"kind": "wildcard"}
                elif isinstance(cell, str):
                    cells[attribute] = {"kind": "constant", "value": cell}
                elif isinstance(cell, ConstrainedPattern):
                    cells[attribute] = {"kind": "constrained", "value": cell.to_text()}
                else:
                    cells[attribute] = {"kind": "pattern", "value": cell.to_text()}
            rows.append(cells)
        return {
            "name": self.name,
            "relation": self.relation,
            "lhs": self.lhs_attribute,
            "rhs": self.rhs_attribute,
            "rows": rows,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PFD":
        """Inverse of :meth:`to_dict`."""
        pfd = cls(
            EmbeddedFD.between(data["lhs"], data["rhs"]),
            name=data.get("name"),
            relation=data.get("relation"),
        )
        for row in data.get("rows", ()):
            cells: Dict[str, TableauCell] = {}
            for attribute, cell in row.items():
                kind = cell["kind"]
                if kind == "wildcard":
                    cells[attribute] = WILDCARD
                elif kind == "constant":
                    cells[attribute] = cell["value"]
                elif kind == "constrained":
                    cells[attribute] = ConstrainedPattern.parse(cell["value"])
                else:
                    cells[attribute] = Pattern.parse(cell["value"])
            pfd.tableau.add_row(cells)
        return pfd


def _coerce_lhs(value: Union[ConstrainedPattern, Pattern, str]) -> TableauCell:
    """LHS cells given as strings are parsed as (constrained) patterns."""
    if isinstance(value, (ConstrainedPattern, Pattern)):
        return value
    if isinstance(value, Wildcard):
        return value
    if "⟨" in value or "<" in value:
        return ConstrainedPattern.parse(value)
    return Pattern.parse(value)
