"""The pattern functional dependency (PFD) model.

A PFD ``ψ = R(X → Y, Tp)`` pairs an *embedded FD* ``X → Y`` with a
*pattern tableau* ``Tp`` whose cells are constrained patterns or the
wildcard ``⊥``.  Constant PFDs fix the RHS to literal values (λ1–λ3 in
the paper); variable PFDs leave it as a wildcard and assert agreement
between tuples that are equivalent on the constrained LHS patterns
(λ4–λ5).
"""

from repro.pfd.fd import EmbeddedFD, FunctionalDependency
from repro.pfd.tableau import PatternTableau, TableauCell, TableauRow, WILDCARD, Wildcard
from repro.pfd.pfd import PFD, PfdKind
from repro.pfd.satisfaction import (
    SatisfactionReport,
    check_satisfaction,
    find_tableau_violations,
)

__all__ = [
    "EmbeddedFD",
    "FunctionalDependency",
    "PatternTableau",
    "TableauCell",
    "TableauRow",
    "WILDCARD",
    "Wildcard",
    "PFD",
    "PfdKind",
    "SatisfactionReport",
    "check_satisfaction",
    "find_tableau_violations",
]
