"""Satisfaction semantics: does a table satisfy a PFD?

This module defines what it means for a table to satisfy or violate a
PFD independently of the (index-accelerated) detection engine in
:mod:`repro.detection`; the detection engine's results are validated
against these reference semantics in the test-suite.

* A tuple ``t`` violates a **constant rule** ``(tp[A] → tp[B]=b)`` when
  ``t[A] ↦ tp[A]`` and ``t[B] ≠ b``.
* A pair ``(ti, tj)`` violates a **variable rule** ``(tp[A]=Q → tp[B]=⊥)``
  when ``ti[A] ≡_Q tj[A]`` and ``ti[B] ≠ tj[B]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.constrained.constrained_pattern import ConstrainedPattern
from repro.dataset.table import Table
from repro.patterns.pattern import Pattern
from repro.pfd.pfd import PFD
from repro.pfd.tableau import TableauRow, Wildcard, cell_matches


@dataclass
class SatisfactionReport:
    """Outcome of checking one PFD against a table."""

    pfd: PFD
    n_rows: int
    #: rows violating some constant rule: (row index, tableau row index)
    constant_violations: List[Tuple[int, int]] = field(default_factory=list)
    #: row pairs violating some variable rule: (row i, row j, tableau row index)
    variable_violations: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def satisfied(self) -> bool:
        return not self.constant_violations and not self.variable_violations

    @property
    def violating_rows(self) -> List[int]:
        """Distinct row indexes involved in any violation, sorted."""
        rows = {row for row, _rule in self.constant_violations}
        for left, right, _rule in self.variable_violations:
            rows.add(left)
            rows.add(right)
        return sorted(rows)

    @property
    def violation_ratio(self) -> float:
        """Violating rows as a fraction of all rows."""
        if self.n_rows == 0:
            return 0.0
        return len(self.violating_rows) / self.n_rows


def _lhs_matches(cell, value: str) -> bool:
    return cell_matches(cell, value)


def find_tableau_violations(table: Table, pfd: PFD) -> SatisfactionReport:
    """Reference (unoptimized) violation finder.

    Constant rules are checked with a single scan; variable rules with a
    full pairwise comparison inside each matching set.  The detection
    engine produces the same violations faster.
    """
    report = SatisfactionReport(pfd=pfd, n_rows=table.n_rows)
    lhs_attribute = pfd.lhs_attribute
    rhs_attribute = pfd.rhs_attribute
    lhs_values = table.column_ref(lhs_attribute)
    rhs_values = table.column_ref(rhs_attribute)

    for rule_index, rule in enumerate(pfd.tableau):
        lhs_cell = rule.cell(lhs_attribute)
        rhs_cell = rule.cell(rhs_attribute)
        if isinstance(rhs_cell, Wildcard):
            _check_variable_rule(
                report, rule_index, lhs_cell, lhs_values, rhs_values
            )
        else:
            for row in range(table.n_rows):
                if not _lhs_matches(lhs_cell, lhs_values[row]):
                    continue
                if not cell_matches(rhs_cell, rhs_values[row]):
                    report.constant_violations.append((row, rule_index))
    return report


def _check_variable_rule(
    report: SatisfactionReport,
    rule_index: int,
    lhs_cell,
    lhs_values: Sequence[str],
    rhs_values: Sequence[str],
) -> None:
    n = len(lhs_values)
    if isinstance(lhs_cell, ConstrainedPattern):
        equivalent = lhs_cell.equivalent
        matches = lhs_cell.matches
    elif isinstance(lhs_cell, Pattern):
        # A plain pattern on the LHS of a variable rule means "values that
        # match the pattern and are equal" — the whole value is constrained.
        constrained = ConstrainedPattern.whole_value(lhs_cell)
        equivalent = constrained.equivalent
        matches = constrained.matches
    elif isinstance(lhs_cell, str):
        equivalent = lambda a, b: a == lhs_cell and b == lhs_cell  # noqa: E731
        matches = lambda a: a == lhs_cell  # noqa: E731
    else:  # wildcard LHS: every pair of rows is comparable
        equivalent = lambda a, b: True  # noqa: E731
        matches = lambda a: True  # noqa: E731

    matching_rows = [i for i in range(n) if matches(lhs_values[i])]
    for index_i in range(len(matching_rows)):
        i = matching_rows[index_i]
        for index_j in range(index_i + 1, len(matching_rows)):
            j = matching_rows[index_j]
            if rhs_values[i] == rhs_values[j]:
                continue
            if equivalent(lhs_values[i], lhs_values[j]):
                report.variable_violations.append((i, j, rule_index))


def check_satisfaction(table: Table, pfd: PFD) -> bool:
    """Whether the table satisfies the PFD (no violations at all)."""
    return find_tableau_violations(table, pfd).satisfied
