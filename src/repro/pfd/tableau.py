"""Pattern tableaux.

A tableau ``Tp`` has one column per attribute of the embedded FD and any
number of rows (pattern tuples).  A cell is either a constrained pattern
that values of the attribute must match, a literal constant (a degenerate
pattern), or the unnamed wildcard ``⊥`` which matches anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.constrained.constrained_pattern import ConstrainedPattern
from repro.errors import ConstraintError
from repro.patterns.pattern import Pattern


class Wildcard:
    """The unnamed variable ``⊥`` used as a tableau wildcard."""

    _instance: Optional["Wildcard"] = None

    def __new__(cls) -> "Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __str__(self) -> str:
        return "⊥"


#: Singleton wildcard value.
WILDCARD = Wildcard()

#: What a tableau cell may hold.
TableauCell = Union[Wildcard, str, Pattern, ConstrainedPattern]


def cell_matches(cell: TableauCell, value: str) -> bool:
    """Whether a value satisfies a tableau cell."""
    if isinstance(cell, Wildcard):
        return True
    if isinstance(cell, str):
        return value == cell
    if isinstance(cell, Pattern):
        return cell.matches(value)
    if isinstance(cell, ConstrainedPattern):
        return cell.matches(value)
    raise ConstraintError(f"unsupported tableau cell {cell!r}")


def cell_to_text(cell: TableauCell) -> str:
    """Render a tableau cell for display and serialization."""
    if isinstance(cell, Wildcard):
        return "⊥"
    if isinstance(cell, str):
        return cell
    return cell.to_text()


def cell_is_constant(cell: TableauCell) -> bool:
    """Whether the cell pins the attribute to specific value(s) rather than
    acting as a wildcard."""
    return not isinstance(cell, Wildcard)


@dataclass(frozen=True)
class TableauRow:
    """One pattern tuple ``tp`` of a tableau: attribute name → cell."""

    cells: Tuple[Tuple[str, TableauCell], ...]

    @classmethod
    def of(cls, mapping: Mapping[str, TableauCell]) -> "TableauRow":
        return cls(tuple(mapping.items()))

    def as_dict(self) -> Dict[str, TableauCell]:
        return dict(self.cells)

    def cell(self, attribute: str) -> TableauCell:
        for name, cell in self.cells:
            if name == attribute:
                return cell
        raise ConstraintError(f"tableau row has no cell for attribute {attribute!r}")

    def attributes(self) -> List[str]:
        return [name for name, _cell in self.cells]

    def matches_tuple(self, values: Mapping[str, str], attributes: Optional[Sequence[str]] = None) -> bool:
        """Whether a tuple's values satisfy this row on ``attributes``
        (all attributes of the row when omitted)."""
        names = attributes if attributes is not None else self.attributes()
        for name in names:
            if not cell_matches(self.cell(name), values[name]):
                return False
        return True

    def render(self) -> str:
        """``pattern → pattern`` style rendering used in Table 3."""
        return ", ".join(f"{name}={cell_to_text(cell)}" for name, cell in self.cells)

    def __str__(self) -> str:
        return self.render()


class PatternTableau:
    """An ordered collection of tableau rows over a fixed attribute list."""

    def __init__(self, attributes: Sequence[str], rows: Iterable[TableauRow] = ()):
        if not attributes:
            raise ConstraintError("a tableau needs at least one attribute")
        self._attributes = list(attributes)
        self._rows: List[TableauRow] = []
        for row in rows:
            self.add_row(row)

    @property
    def attributes(self) -> List[str]:
        return list(self._attributes)

    @property
    def rows(self) -> List[TableauRow]:
        return list(self._rows)

    def add_row(self, row: Union[TableauRow, Mapping[str, TableauCell]]) -> TableauRow:
        """Append a pattern tuple; missing attributes default to ``⊥``."""
        if isinstance(row, TableauRow):
            mapping = row.as_dict()
        else:
            mapping = dict(row)
        unknown = set(mapping) - set(self._attributes)
        if unknown:
            raise ConstraintError(
                f"tableau row mentions unknown attributes {sorted(unknown)}; "
                f"tableau is over {self._attributes}"
            )
        full = {name: mapping.get(name, WILDCARD) for name in self._attributes}
        normalized = TableauRow.of(full)
        self._rows.append(normalized)
        return normalized

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[TableauRow]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> TableauRow:
        return self._rows[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternTableau):
            return NotImplemented
        return self._attributes == other._attributes and self._rows == other._rows

    def matching_rows(self, values: Mapping[str, str], attributes: Optional[Sequence[str]] = None) -> List[int]:
        """Indexes of tableau rows whose cells (restricted to
        ``attributes``) are satisfied by the tuple."""
        return [
            i
            for i, row in enumerate(self._rows)
            if row.matches_tuple(values, attributes)
        ]

    def render(self) -> str:
        """Multi-line rendering used by the Figure 4 report."""
        header = " | ".join(self._attributes)
        lines = [header, "-" * len(header)]
        for row in self._rows:
            lines.append(" | ".join(cell_to_text(row.cell(a)) for a in self._attributes))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PatternTableau({self._attributes}, {len(self._rows)} rows)"
