"""A table partitioned into row shards.

A :class:`ShardedTable` is the unit of work of the sharded execution
engine: an ordered sequence of per-shard
:class:`~repro.dataset.table.Table` objects whose vertical concatenation
is the logical dataset.  Row identity is global — shard ``i`` owns the
half-open global row range ``[offsets[i], offsets[i] + shards[i].n_rows)``
— so per-shard derived statistics can carry *global* row ids and merge
by plain concatenation.

Shard bytes live behind a pluggable
:class:`~repro.sharding.store.ShardStore`: the default in-memory store
keeps live ``Table`` objects, the spill-to-disk store re-parses shards
from CSV on access with bounded resident memory, and the object store
reads checksummed shard objects through an object client.  A plain
shard list is wrapped into an in-memory store transparently.

Shards are immutable by contract: the sharded engines cache merged
statistics keyed by the shards' mutation versions, and the interactive
edit loop happens in a :class:`~repro.sharding.overlay.ShardOverlay`
delta layer over the untouched store (see ``AnmatSession``).  A shard
mutated behind our back is detected via :meth:`versions` and merged
caches are invalidated, but no partial update is attempted.
"""

from __future__ import annotations

import bisect
from typing import Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple, Union

from repro.dataset.table import Table
from repro.errors import TableError
from repro.sharding.store import InMemoryShardStore, ShardStore


class ShardedTable:
    """An ordered partition of one logical table into row shards."""

    def __init__(self, shards: Union[Sequence[Table], ShardStore]):
        if isinstance(shards, ShardStore):
            store = shards
        else:
            store = InMemoryShardStore(list(shards))
        if store.n_shards == 0:
            raise TableError("a ShardedTable needs at least one shard")
        self._store = store
        offsets: List[int] = []
        total = 0
        for n_rows in store.shard_row_counts():
            offsets.append(total)
            total += n_rows
        self._offsets = offsets
        self._n_rows = total
        #: merged-artifact cache: key → (shard versions at build time, artifact)
        self._merged_cache: Dict[Hashable, Tuple[Tuple[int, ...], object]] = {}

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_table(
        cls, table: Table, shard_rows: int, store: ShardStore = None
    ) -> "ShardedTable":
        """Partition an in-memory table into shards of ``shard_rows`` rows
        (the last shard may be shorter).  A zero-row table becomes one
        empty shard.  ``store`` chooses where the shards live (default:
        in memory)."""
        if shard_rows < 1:
            raise TableError(f"shard_rows must be >= 1, got {shard_rows}")
        if table.n_rows == 0:
            return cls.from_chunks([table.copy()], store=store)
        return cls.from_chunks(
            (
                table.take(range(start, min(start + shard_rows, table.n_rows)))
                for start in range(0, table.n_rows, shard_rows)
            ),
            store=store,
        )

    @classmethod
    def from_chunks(
        cls, chunks: Iterable[Table], store: ShardStore = None
    ) -> "ShardedTable":
        """Seal an iterable of chunk tables (e.g. from the chunked CSV
        reader) into a sharded table, feeding them into ``store`` one at
        a time — with a spill store, peak memory is one chunk.

        ``store`` must be empty: silently appending after shards from an
        earlier dataset would concatenate the two (pass a fresh store
        per upload, or construct ``ShardedTable(store)`` directly to
        adopt existing shards).
        """
        if store is None:
            store = InMemoryShardStore()
        elif store.n_shards:
            raise TableError(
                f"from_chunks needs an empty store, got one already holding "
                f"{store.n_shards} shard(s)"
            )
        for chunk in chunks:
            store.append(chunk)
        return cls(store)

    # -- shape ----------------------------------------------------------------

    @property
    def store(self) -> ShardStore:
        """The backing shard store."""
        return self._store

    @property
    def shards(self) -> List[Table]:
        """All shards, materialized (loads every shard on a disk store —
        prefer :meth:`iter_shards` or :meth:`shard_row_counts`)."""
        return [self._store.get(i) for i in range(self._store.n_shards)]

    def shard_row_counts(self) -> List[int]:
        """Per-shard row counts in shard order (no shard loads)."""
        return self._store.shard_row_counts()

    @property
    def n_shards(self) -> int:
        return self._store.n_shards

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return len(self._store.schema)

    def column_names(self) -> List[str]:
        return self._store.column_names()

    @property
    def schema(self):
        return self._store.schema

    def __len__(self) -> int:
        return self._n_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedTable({self.column_names()}, n_rows={self._n_rows}, "
            f"n_shards={self.n_shards})"
        )

    # -- row addressing --------------------------------------------------------

    def offset_of(self, shard_index: int) -> int:
        """The global row id of a shard's first row."""
        return self._offsets[shard_index]

    def global_row(self, shard_index: int, local_row: int) -> int:
        return self._offsets[shard_index] + local_row

    def locate(self, global_row: int) -> Tuple[int, int]:
        """Map a global row id to ``(shard index, local row)``."""
        if not 0 <= global_row < self._n_rows:
            raise TableError(
                f"row index {global_row} out of range [0, {self._n_rows})"
            )
        shard_index = bisect.bisect_right(self._offsets, global_row) - 1
        return shard_index, global_row - self._offsets[shard_index]

    def row(self, global_row: int) -> Tuple[str, ...]:
        """One logical row as a tuple of values, in schema order."""
        shard_index, local_row = self.locate(global_row)
        return self._store.get(shard_index).row(local_row)

    def cell(self, global_row: int, name: str) -> str:
        """The value of one logical cell."""
        shard_index, local_row = self.locate(global_row)
        return self._store.get(shard_index).cell(local_row, name)

    def iter_shards(self) -> Iterator[Tuple[int, Table]]:
        """Yield ``(global offset, shard)`` pairs in row order."""
        for index, offset in enumerate(self._offsets):
            yield offset, self._store.get(index)

    # -- merged views -----------------------------------------------------------

    def column_concat(self, name: str) -> List[str]:
        """One logical column as a single list (string refs, no copies of
        the values themselves), cached until a shard version changes."""
        return self.merged_artifact(
            ("column_concat", name),
            lambda: [
                value
                for _offset, shard in self.iter_shards()
                for value in shard.column_ref(name)
            ],
        )

    def to_table(self) -> Table:
        """Materialize the logical table (cell refs are shared with the
        shards; the column lists are fresh)."""
        names = self.column_names()
        return Table(self.schema, [self.column_concat(name) for name in names])

    # -- merged-artifact caching -------------------------------------------------

    def versions(self) -> Tuple[int, ...]:
        """The shards' mutation counters — the staleness key for every
        merged artifact."""
        return self._store.versions()

    def dirty_shards(self, baseline_versions: Sequence[int]) -> List[int]:
        """Shard indexes whose version differs from a baseline snapshot.

        The baseline is a :meth:`versions` tuple taken from an earlier
        view of the same logical dataset (e.g. the sealed overlay view a
        discovery run mined).  Overlay seals snapshot their state, so
        shards untouched between two seals keep identical versions and
        the diff is exactly the edit batch's dirty shards.  When this
        view has *more* shards than the baseline (an appended tail
        shard), the extra indexes are dirty by definition.
        """
        baseline = tuple(baseline_versions)
        current = self.versions()
        dirty = [
            index
            for index in range(min(len(baseline), len(current)))
            if current[index] != baseline[index]
        ]
        dirty.extend(range(len(baseline), len(current)))
        return dirty

    def merged_artifact(self, key: Hashable, build) -> object:
        """A cached cross-shard artifact, rebuilt when any shard mutated.

        Merged statistics (concatenated columns, merged pair groups,
        merged tokenizations) are pure functions of the shard contents;
        caching them here lets repeated discovery/detection runs over the
        same sharded table skip the merge entirely.
        """
        versions = self.versions()
        entry = self._merged_cache.get(key)
        if entry is not None and entry[0] == versions:
            return entry[1]
        artifact = build()
        self._merged_cache[key] = (versions, artifact)
        return artifact

    def peek_merged_artifact(self, key: Hashable):
        """A cached merged artifact if present *and* still valid for the
        current shard versions, else ``None`` — never builds."""
        entry = self._merged_cache.get(key)
        if entry is not None and entry[0] == self.versions():
            return entry[1]
        return None

    def merged_artifact_keys(self, prefix: str) -> List[Hashable]:
        """The cached artifact keys under one prefix (valid or not)."""
        return [
            key
            for key in self._merged_cache
            if isinstance(key, tuple) and key and key[0] == prefix
        ]

    def prime_merged_artifact(self, key: Hashable, artifact: object) -> None:
        """Install a merged artifact computed elsewhere, keyed to the
        current shard versions.

        The rule maintainer uses this to carry incrementally maintained
        statistics (e.g. unmerged/re-merged pair groups) onto a freshly
        sealed view, so the detection run that follows a re-check skips
        the cross-shard merge.  The caller guarantees the artifact equals
        what :meth:`merged_artifact`'s build would produce.
        """
        self._merged_cache[key] = (self.versions(), artifact)

    def drop_merged_artifacts(self, *prefixes: str) -> int:
        """Evict cached merged artifacts by key prefix (all of them when
        no prefix is given) and return how many were dropped.

        Purely a memory release — artifacts are rebuilt on demand.  The
        out-of-core session path drops the O(n) discovery merges
        (concatenated columns, encodings, triples) once mining finishes
        so they are not carried through detection and the edit loop.
        """
        if not prefixes:
            dropped = len(self._merged_cache)
            self._merged_cache.clear()
            return dropped
        doomed = [
            key
            for key in self._merged_cache
            if isinstance(key, tuple) and key and key[0] in prefixes
        ]
        for key in doomed:
            del self._merged_cache[key]
        return len(doomed)
