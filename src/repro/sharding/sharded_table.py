"""A table partitioned into row shards.

A :class:`ShardedTable` is the unit of work of the sharded execution
engine: an ordered list of per-shard :class:`~repro.dataset.table.Table`
objects whose vertical concatenation is the logical dataset.  Row
identity is global — shard ``i`` owns the half-open global row range
``[offsets[i], offsets[i] + shards[i].n_rows)`` — so per-shard derived
statistics can carry *global* row ids and merge by plain concatenation.

Shards are immutable by contract: the sharded engines cache merged
statistics keyed by the shards' mutation versions, and the interactive
edit loop stays on the monolithic table (see ``AnmatSession``).  A shard
mutated behind our back is detected via :meth:`versions` and merged
caches are invalidated, but no partial update is attempted.
"""

from __future__ import annotations

import bisect
from typing import Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple

from repro.dataset.table import Table
from repro.errors import TableError


class ShardedTable:
    """An ordered partition of one logical table into row shards."""

    def __init__(self, shards: Sequence[Table]):
        shards = list(shards)
        if not shards:
            raise TableError("a ShardedTable needs at least one shard")
        names = shards[0].column_names()
        for position, shard in enumerate(shards[1:], start=1):
            if shard.column_names() != names:
                raise TableError(
                    f"shard {position} has columns {shard.column_names()}, "
                    f"expected {names} (all shards must share one schema)"
                )
        self._shards: List[Table] = shards
        offsets: List[int] = []
        total = 0
        for shard in shards:
            offsets.append(total)
            total += shard.n_rows
        self._offsets = offsets
        self._n_rows = total
        #: merged-artifact cache: key → (shard versions at build time, artifact)
        self._merged_cache: Dict[Hashable, Tuple[Tuple[int, ...], object]] = {}

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_table(cls, table: Table, shard_rows: int) -> "ShardedTable":
        """Partition an in-memory table into shards of ``shard_rows`` rows
        (the last shard may be shorter).  A zero-row table becomes one
        empty shard."""
        if shard_rows < 1:
            raise TableError(f"shard_rows must be >= 1, got {shard_rows}")
        if table.n_rows == 0:
            return cls([table.copy()])
        shards = [
            table.take(range(start, min(start + shard_rows, table.n_rows)))
            for start in range(0, table.n_rows, shard_rows)
        ]
        return cls(shards)

    @classmethod
    def from_chunks(cls, chunks: Iterable[Table]) -> "ShardedTable":
        """Seal an iterable of chunk tables (e.g. from the chunked CSV
        reader) into a sharded table."""
        return cls(list(chunks))

    # -- shape ----------------------------------------------------------------

    @property
    def shards(self) -> List[Table]:
        return list(self._shards)

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return self._shards[0].n_columns

    def column_names(self) -> List[str]:
        return self._shards[0].column_names()

    @property
    def schema(self):
        return self._shards[0].schema

    def __len__(self) -> int:
        return self._n_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedTable({self.column_names()}, n_rows={self._n_rows}, "
            f"n_shards={self.n_shards})"
        )

    # -- row addressing --------------------------------------------------------

    def offset_of(self, shard_index: int) -> int:
        """The global row id of a shard's first row."""
        return self._offsets[shard_index]

    def global_row(self, shard_index: int, local_row: int) -> int:
        return self._offsets[shard_index] + local_row

    def locate(self, global_row: int) -> Tuple[int, int]:
        """Map a global row id to ``(shard index, local row)``."""
        if not 0 <= global_row < self._n_rows:
            raise TableError(
                f"row index {global_row} out of range [0, {self._n_rows})"
            )
        shard_index = bisect.bisect_right(self._offsets, global_row) - 1
        return shard_index, global_row - self._offsets[shard_index]

    def row(self, global_row: int) -> Tuple[str, ...]:
        """One logical row as a tuple of values, in schema order."""
        shard_index, local_row = self.locate(global_row)
        return self._shards[shard_index].row(local_row)

    def cell(self, global_row: int, name: str) -> str:
        """The value of one logical cell."""
        shard_index, local_row = self.locate(global_row)
        return self._shards[shard_index].cell(local_row, name)

    def iter_shards(self) -> Iterator[Tuple[int, Table]]:
        """Yield ``(global offset, shard)`` pairs in row order."""
        for offset, shard in zip(self._offsets, self._shards):
            yield offset, shard

    # -- merged views -----------------------------------------------------------

    def column_concat(self, name: str) -> List[str]:
        """One logical column as a single list (string refs, no copies of
        the values themselves), cached until a shard version changes."""
        return self.merged_artifact(
            ("column_concat", name),
            lambda: [
                value
                for shard in self._shards
                for value in shard.column_ref(name)
            ],
        )

    def to_table(self) -> Table:
        """Materialize the logical table (cell refs are shared with the
        shards; the column lists are fresh)."""
        names = self.column_names()
        return Table(self.schema, [self.column_concat(name) for name in names])

    # -- merged-artifact caching -------------------------------------------------

    def versions(self) -> Tuple[int, ...]:
        """The shards' mutation counters — the staleness key for every
        merged artifact."""
        return tuple(shard.version for shard in self._shards)

    def merged_artifact(self, key: Hashable, build) -> object:
        """A cached cross-shard artifact, rebuilt when any shard mutated.

        Merged statistics (concatenated columns, merged pair groups,
        merged tokenizations) are pure functions of the shard contents;
        caching them here lets repeated discovery/detection runs over the
        same sharded table skip the merge entirely.
        """
        versions = self.versions()
        entry = self._merged_cache.get(key)
        if entry is not None and entry[0] == versions:
            return entry[1]
        artifact = build()
        self._merged_cache[key] = (versions, artifact)
        return artifact
