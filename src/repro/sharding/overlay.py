"""A mutable delta overlay over an immutable :class:`ShardedTable`.

The interactive edit loop (``set_cell`` / ``append_row`` /
``delete_row`` → incremental re-check) used to require a materialized
:class:`~repro.dataset.table.Table`: sharded uploads were concatenated
into one monolithic table just so the session had something mutable.
:class:`ShardOverlay` removes that requirement.  It presents the full
mutable-table interface — the same accessors, the same mutation methods,
the same ``version`` counter and structured
:class:`~repro.dataset.table.CellEdit`/:class:`~repro.dataset.table.RowAppend`/
:class:`~repro.dataset.table.RowDelete` delta log — while the base data
stays wherever its shard store keeps it (memory, spill files, an object
store).  Edits land in small per-shard dictionaries, appends in a tail
column set, deletions in a sorted tombstone list; nothing is ever
rewritten in the base store.

Because the overlay speaks the exact ``Table`` mutation/delta protocol,
the incremental detector and the per-table artifact cache
(:data:`repro.perf.table_cache.TABLE_ARTIFACTS`) patch themselves
forward over it without knowing it is not a plain table.

For the planner's re-check path, :meth:`ShardOverlay.as_sharded` seals
the current overlay state back into a :class:`ShardedTable` through
:class:`OverlayShardStore`: shards untouched by the edit session pass
through *by identity* (so their per-shard cached statistics are reused),
and only touched shards are patched copy-on-read.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import (
    MAX_DELTA_LOG,
    CellEdit,
    Row,
    RowAppend,
    RowDelete,
    Table,
    TableDelta,
    _stringify,
)
from repro.errors import TableError
from repro.sharding.sharded_table import ShardedTable
from repro.sharding.store import ShardStore


class ShardOverlay:
    """A row-addressable, mutable view layered over a sharded base.

    Logical row order is the base's live rows (base order, minus
    tombstoned deletions) followed by appended tail rows.  The base
    :class:`ShardedTable` and its store are never mutated.
    """

    def __init__(self, base: ShardedTable):
        self._base = base
        self._schema: Schema = base.schema
        #: per-base-shard edits: (local row, column index) → value
        self._edits: List[Dict[Tuple[int, int], str]] = [
            {} for _ in range(base.n_shards)
        ]
        #: per-base-shard count of applied edits (staleness key material)
        self._edit_counts: List[int] = [0] * base.n_shards
        #: deleted *base* global rows, sorted (tombstones)
        self._deleted: List[int] = []
        #: appended rows, columnar
        self._tail_columns: List[List[str]] = [[] for _ in self._schema.names()]
        self._tail_rows = 0
        #: count of tail mutations (appends, tail edits, tail deletes) —
        #: staleness key material for the sealed tail shard, so base-only
        #: edit batches do not dirty the tail across seals
        self._tail_mutations = 0
        self._version = 0
        self._delta_log: List[TableDelta] = []
        self._log_floor = 0
        #: column-index → (version at build, merged column values)
        self._column_cache: Dict[int, Tuple[int, List[str]]] = {}

    # -- basic accessors -----------------------------------------------------

    @property
    def base(self) -> ShardedTable:
        """The immutable sharded base this overlay reads through."""
        return self._base

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_rows(self) -> int:
        return self._base.n_rows - len(self._deleted) + self._tail_rows

    @property
    def n_columns(self) -> int:
        return len(self._schema)

    @property
    def version(self) -> int:
        """Mutation counter — same contract as :attr:`Table.version`."""
        return self._version

    @property
    def is_touched(self) -> bool:
        """Whether any mutation has been applied since construction."""
        return self._version > 0

    def deltas_since(self, version: int) -> Optional[Tuple[TableDelta, ...]]:
        """Same contract as :meth:`Table.deltas_since`."""
        if version > self._version or version < self._log_floor:
            return None
        n = self._version - version
        if n == 0:
            return ()
        return tuple(self._delta_log[-n:])

    def _record_delta(self, delta: TableDelta) -> None:
        self._version += 1
        self._delta_log.append(delta)
        if len(self._delta_log) > MAX_DELTA_LOG:
            drop = len(self._delta_log) - MAX_DELTA_LOG // 2
            del self._delta_log[:drop]
            self._log_floor += drop

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardOverlay({self.column_names()}, n_rows={self.n_rows}, "
            f"edits={sum(self._edit_counts)}, deletes={len(self._deleted)}, "
            f"appends={self._tail_rows})"
        )

    def column_names(self) -> List[str]:
        return self._schema.names()

    # -- row mapping ----------------------------------------------------------

    @property
    def _n_base_live(self) -> int:
        return self._base.n_rows - len(self._deleted)

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.n_rows:
            raise TableError(f"row index {row} out of range [0, {self.n_rows})")

    def _base_row(self, row: int) -> int:
        """Map a live view row (``< _n_base_live``) to its base global row,
        skipping tombstones."""
        candidate = row
        while True:
            shifted = row + bisect_right(self._deleted, candidate)
            if shifted == candidate:
                return candidate
            candidate = shifted

    # -- reads ----------------------------------------------------------------

    def cell(self, row: int, name: Union[str, Attribute]) -> str:
        self._check_row(row)
        return self._cell_by_index(row, self._schema.index_of(name))

    def _cell_by_index(self, row: int, index: int) -> str:
        tail_row = row - self._n_base_live
        if tail_row >= 0:
            return self._tail_columns[index][tail_row]
        base_row = self._base_row(row)
        shard_index, local_row = self._base.locate(base_row)
        edited = self._edits[shard_index].get((local_row, index))
        if edited is not None:
            return edited
        shard = self._base.store.get(shard_index)
        return shard.column_ref(self._schema[index].name)[local_row]

    def row(self, row: int) -> Row:
        self._check_row(row)
        tail_row = row - self._n_base_live
        if tail_row >= 0:
            return tuple(col[tail_row] for col in self._tail_columns)
        base_row = self._base_row(row)
        shard_index, local_row = self._base.locate(base_row)
        values = self._base.store.get(shard_index).row(local_row)
        edits = self._edits[shard_index]
        if not edits:
            return values
        return tuple(
            edits.get((local_row, j), value) for j, value in enumerate(values)
        )

    def row_dict(self, row: int) -> Dict[str, str]:
        return dict(zip(self._schema.names(), self.row(row)))

    def iter_rows(self) -> Iterator[Row]:
        """Stream logical rows shard-major: one base shard resident at a
        time (spill/object stores stay bounded), then the tail."""
        names = self._schema.names()
        width = len(names)
        deleted = set(self._deleted)
        for shard_index, (offset, shard) in enumerate(self._base.iter_shards()):
            edits = self._edits[shard_index]
            columns = [shard.column_ref(name) for name in names]
            for local in range(shard.n_rows):
                if offset + local in deleted:
                    continue
                if edits:
                    yield tuple(
                        edits.get((local, j), columns[j][local]) for j in range(width)
                    )
                else:
                    yield tuple(column[local] for column in columns)
        for tail_row in range(self._tail_rows):
            yield tuple(column[tail_row] for column in self._tail_columns)

    def column(self, name: Union[str, Attribute]) -> List[str]:
        return list(self.column_ref(name))

    def column_ref(self, name: Union[str, Attribute]) -> Sequence[str]:
        """One logical column as a list of string refs, cached per
        overlay version (pointers into the resident shards/edits — the
        strings themselves are not copied)."""
        index = self._schema.index_of(name)
        cached = self._column_cache.get(index)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        values = self._build_column(index)
        self._column_cache[index] = (self._version, values)
        return values

    def _build_column(self, index: int) -> List[str]:
        name = self._schema[index].name
        values: List[str] = []
        for shard_index, (offset, shard) in enumerate(self._base.iter_shards()):
            column = shard.column_ref(name)
            edits = self._edits[shard_index]
            start = bisect_left(self._deleted, offset)
            stop = bisect_left(self._deleted, offset + shard.n_rows, lo=start)
            if start == stop and not edits:
                values.extend(column)
                continue
            deleted = set(self._deleted[start:stop])
            for local, value in enumerate(column):
                if offset + local in deleted:
                    continue
                values.append(edits.get((local, index), value))
        values.extend(self._tail_columns[index])
        return values

    def materialize(self) -> Table:
        """Build a monolithic :class:`Table` of the current state (cell
        refs shared with the shards; used only for explicitly eager
        runs)."""
        return Table(
            self._schema,
            [list(self.column_ref(name)) for name in self._schema.names()],
        )

    # -- in-place mutation (the Table protocol) --------------------------------

    def set_cell(self, row: int, name: Union[str, Attribute], value: object) -> None:
        """Destructively overwrite one cell — lands in the overlay, never
        in the base store."""
        self._check_row(row)
        index = self._schema.index_of(name)
        old = self._cell_by_index(row, index)
        new = _stringify(value)
        if new == old:
            # No-op write: same contract as Table.set_cell — don't bump
            # the version or grow the delta log.
            return
        tail_row = row - self._n_base_live
        if tail_row >= 0:
            self._tail_columns[index][tail_row] = new
            self._tail_mutations += 1
        else:
            shard_index, local_row = self._base.locate(self._base_row(row))
            self._edits[shard_index][(local_row, index)] = new
            self._edit_counts[shard_index] += 1
        self._record_delta(
            CellEdit(
                version=self._version + 1,
                row=row,
                column=self._schema[index].name,
                old=old,
                new=new,
            )
        )

    def append_row(
        self, values: Union[Sequence[object], Mapping[str, object]]
    ) -> int:
        """Destructively append one row to the overlay tail; returns its
        logical row index."""
        if isinstance(values, str):
            raise TableError(
                f"append_row needs a sequence or mapping of cell values, got the string {values!r}"
            )
        if isinstance(values, Mapping):
            extra = set(values.keys()) - set(self.column_names())
            if extra:
                raise TableError(
                    f"appended row has unknown attributes {sorted(extra)}"
                )
            row_values = [
                _stringify(values.get(name, "")) for name in self.column_names()
            ]
        else:
            if len(values) != len(self._schema):
                raise TableError(
                    f"appended row has {len(values)} values, expected {len(self._schema)}"
                )
            row_values = [_stringify(v) for v in values]
        for column, value in zip(self._tail_columns, row_values):
            column.append(value)
        self._tail_rows += 1
        self._tail_mutations += 1
        row = self.n_rows - 1
        self._record_delta(
            RowAppend(version=self._version + 1, row=row, values=tuple(row_values))
        )
        return row

    def delete_row(self, row: int) -> Row:
        """Destructively remove one logical row; returns its values.

        Base rows become tombstones (the store is untouched); tail rows
        are removed outright.  Rows after ``row`` shift down by one, as
        with :meth:`Table.delete_row`.
        """
        self._check_row(row)
        removed = self.row(row)
        tail_row = row - self._n_base_live
        if tail_row >= 0:
            for column in self._tail_columns:
                del column[tail_row]
            self._tail_rows -= 1
            self._tail_mutations += 1
        else:
            insort(self._deleted, self._base_row(row))
        self._record_delta(
            RowDelete(version=self._version + 1, row=row, values=removed)
        )
        return removed

    # -- sealing back into a sharded view --------------------------------------

    def _shard_delete_count(self, shard_index: int) -> int:
        offset = self._base.offset_of(shard_index)
        end = offset + self._base.shard_row_counts()[shard_index]
        start = bisect_left(self._deleted, offset)
        stop = bisect_left(self._deleted, end, lo=start)
        return stop - start

    def dirty_shards(self) -> List[int]:
        """Base shard indexes touched by edits or deletions (tail rows
        are not a base shard; check :attr:`is_touched` /
        ``_tail_rows`` for appends)."""
        return [
            index
            for index in range(self._base.n_shards)
            if self._edits[index] or self._shard_delete_count(index) > 0
        ]

    def as_sharded(self) -> ShardedTable:
        """Seal the current overlay state into a :class:`ShardedTable`.

        Untouched base shards pass through by identity (their per-shard
        cached statistics stay valid); touched shards are patched
        copy-on-read; appended rows become one extra tail shard.  The
        seal is a true **snapshot**: the store captures the overlay's
        edits, tombstones and tail at construction, so mutating the
        overlay afterwards never changes an already-sealed view — two
        seals taken before and after an edit batch disagree exactly on
        the shards the batch touched, which is what dirty-shard diffing
        (:meth:`ShardedTable.dirty_shards`) relies on.
        """
        if not self.is_touched:
            return self._base
        return ShardedTable(OverlayShardStore(self))


class OverlayShardStore(ShardStore):
    """Read-only :class:`ShardStore` **snapshot** of a :class:`ShardOverlay`.

    Shard layout: the base's shards in order (fully passed through when
    untouched, patched otherwise), plus one tail shard when rows were
    appended.  Fully-deleted base shards stay in the layout as zero-row
    shards so shard indexes remain aligned with the base.

    All overlay state — per-shard edits, tombstones, tail columns — is
    copied at construction.  The overlay may keep mutating afterwards;
    this store keeps serving the state it was sealed from, and its
    :meth:`versions` are stable.  Shards untouched *between* two seals
    of the same overlay report identical versions across both stores, so
    a sealed view from before an edit batch and one from after diff to
    exactly the batch's dirty shards.
    """

    def __init__(self, overlay: ShardOverlay):
        super().__init__()
        self._schema = overlay.schema
        base = overlay.base
        self._base = base
        #: snapshot of the per-shard edit maps (the dicts are copied; the
        #: cell strings are shared)
        self._edits: List[Dict[Tuple[int, int], str]] = [
            dict(edits) for edits in overlay._edits
        ]
        self._edit_counts: List[int] = list(overlay._edit_counts)
        #: snapshot of the tombstones, as per-shard *local* row sets
        self._deleted_locals: List[frozenset] = []
        for index, count in enumerate(base.shard_row_counts()):
            offset = base.offset_of(index)
            start = bisect_left(overlay._deleted, offset)
            stop = bisect_left(overlay._deleted, offset + count, lo=start)
            self._deleted_locals.append(
                frozenset(g - offset for g in overlay._deleted[start:stop])
            )
        self._row_counts: List[int] = [
            count - len(self._deleted_locals[i])
            for i, count in enumerate(base.shard_row_counts())
        ]
        self._tail_rows = overlay._tail_rows
        self._has_tail = self._tail_rows > 0
        self._tail_columns: Optional[List[List[str]]] = (
            [list(column) for column in overlay._tail_columns]
            if self._has_tail
            else None
        )
        self._tail_mutations = overlay._tail_mutations
        if self._has_tail:
            self._row_counts.append(self._tail_rows)
        #: patched shards already built, by shard index
        self._patched: Dict[int, Table] = {}
        self._versions = self._compute_versions()

    @property
    def n_shards(self) -> int:
        return len(self._row_counts)

    @property
    def base(self) -> ShardedTable:
        """The immutable base dataset this seal patches.  Two sealed
        views are version-comparable exactly when they share a base."""
        return self._base

    def append(self, shard: Table) -> None:
        raise TableError("an overlay shard store is read-only; edit the overlay")

    def shard_row_counts(self) -> List[int]:
        return list(self._row_counts)

    def _is_passthrough(self, index: int) -> bool:
        return not self._edits[index] and not self._deleted_locals[index]

    def dirty_shards(self) -> List[int]:
        """Shard indexes whose contents differ from the base (the tail
        shard index included when rows were appended)."""
        dirty = [
            index
            for index in range(self._base.n_shards)
            if not self._is_passthrough(index)
        ]
        if self._has_tail:
            dirty.append(len(self._row_counts) - 1)
        return dirty

    def edited_columns(self, index: int) -> frozenset:
        """Column indexes with at least one cell edit in a base shard at
        seal time — a superset of the columns whose contents actually
        differ (an edit may have restored the original value).  For the
        tail shard no per-column bookkeeping exists, so every column is
        reported (still a superset)."""
        if index >= len(self._edits):
            return frozenset(range(len(self._schema)))
        return frozenset(j for (_local, j) in self._edits[index])

    def get(self, index: int) -> Table:
        if self._has_tail and index == len(self._row_counts) - 1:
            tail = self._patched.get(index)
            if tail is None:
                tail = Table(
                    self._schema,
                    [list(column) for column in self._tail_columns],
                )
                self._patched[index] = tail
            return tail
        if self._is_passthrough(index):
            return self._base.store.get(index)
        patched = self._patched.get(index)
        if patched is None:
            patched = self._patch_shard(index)
            self._patched[index] = patched
        return patched

    def _patch_shard(self, index: int) -> Table:
        base_shard = self._base.store.get(index)
        edits = self._edits[index]
        deleted = self._deleted_locals[index]
        names = self._schema.names()
        columns: List[List[str]] = []
        for j, name in enumerate(names):
            source = base_shard.column_ref(name)
            columns.append(
                [
                    edits.get((local, j), value)
                    for local, value in enumerate(source)
                    if local not in deleted
                ]
            )
        return Table(self._schema, columns)

    def _compute_versions(self) -> Tuple[int, ...]:
        base_versions = self._base.versions()
        versions: List[int] = []
        for index in range(len(base_versions)):
            if self._is_passthrough(index):
                versions.append(base_versions[index])
            else:
                versions.append(
                    hash(
                        (
                            base_versions[index],
                            self._edit_counts[index],
                            len(self._deleted_locals[index]),
                        )
                    )
                )
        if self._has_tail:
            # keyed on the tail's own mutation count: two seals whose
            # edit batches touched only base shards agree on the tail
            versions.append(hash(("tail", self._tail_rows, self._tail_mutations)))
        return tuple(versions)

    def versions(self) -> Tuple[int, ...]:
        return self._versions

    def close(self) -> None:
        # The base store's lifetime belongs to whoever created it (the
        # DataSource); a view never closes it.
        self._patched.clear()
