"""Shard-parallel violation detection with merge-time block reduction.

The sharded detector runs the *same* rule semantics as every other
strategy — violations are constructed by the shared evaluators in
:mod:`repro.detection.rules` — but enumerates candidates from merged
per-shard pair groups (see :mod:`repro.sharding.stats`) instead of
per-row scans:

* each shard contributes one ``LHS value → RHS value → rows`` map per
  attribute pair (the shard fan-out stage; runs on worker processes when
  the engine injects a pooled ``shard_map``);
* the maps are reduced in shard order, giving the global distinct-value
  statistics;
* **constant rules** match the rule's LHS cell once per merged distinct
  value (literal-prefix narrowed, memo-backed) and check the RHS once
  per ``(LHS value, RHS value)`` group;
* **variable rules** project each merged distinct LHS value once; groups
  of values sharing a projection key are reduced into one cross-shard
  ``≡_Q`` block, already split by RHS value, and emitted through the
  evaluator's group core.

Emitted violations are canonically equal to a monolithic run (any
strategy); the differential suite in ``tests/sharding`` asserts it.  The
cost model is distinct-value-level, so the ``comparisons`` statistic is
not comparable with the row-level strategies.
"""

from __future__ import annotations

import time
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.dataset.rowids import RowIds, row_ids
from repro.detection.rules import (
    ConstantRuleEvaluator,
    VariableRuleEvaluator,
    make_rule_evaluator,
)
from repro.detection.violation import ViolationReport
from repro.kernels.runtime import HAVE_NUMPY, kernels_enabled
from repro.perf import TABLE_ARTIFACTS
from repro.perf.memo import MatchMemo, MATCH_MEMO
from repro.perf.timers import StageTimers
from repro.pfd.pfd import PFD
from repro.sharding.sharded_table import ShardedTable
from repro.sharding.stats import (
    MergedPairGroups,
    PairGroups,
    extract_pair_groups,
    merge_into_pair_groups,
    tree_merge_pair_groups,
)

#: the strategy label sharded reports carry
SHARDED_STRATEGY = "sharded"

#: key → RHS value → global rows: one rule's cross-shard ``≡_Q`` blocks,
#: pre-split by RHS value.
SplitBlocks = Dict[Hashable, Dict[str, RowIds]]


class ShardedDetector:
    """Applies PFDs to a :class:`ShardedTable` and reports violations.

    Per-shard pair groups are cached in the shared ``TABLE_ARTIFACTS``
    cache (keyed by each shard's mutation version) and the merged
    statistics on the sharded table itself, so repeated runs over an
    unchanged sharded table skip straight to emission.
    """

    def __init__(
        self,
        sharded: ShardedTable,
        memo: Optional[MatchMemo] = None,
        shard_map: Optional[Callable] = None,
        use_kernels: Optional[str] = None,
    ):
        self.sharded = sharded
        self.memo = MATCH_MEMO if memo is None else memo
        #: how to apply the per-shard extraction: ``None`` stays
        #: in-process; anything else is a map hook, e.g.
        #: :func:`repro.engine.pool.make_shard_map`'s pooled fan-out
        self._shard_map = shard_map
        #: resolved once: whether the vectorized kernels build the
        #: per-shard statistics and answer pattern lookups (``None``
        #: defers to the process-wide default mode)
        self.use_kernels = kernels_enabled(use_kernels)
        #: wall-clock accumulated per detection stage across runs
        self.timers = StageTimers()

    # -- public API -----------------------------------------------------------

    def detect(self, pfd: PFD) -> ViolationReport:
        """Detect all violations of one PFD."""
        started = time.perf_counter()
        report = ViolationReport(
            n_rows=self.sharded.n_rows, strategy=SHARDED_STRATEGY
        )
        for rule_index, rule in enumerate(pfd.tableau):
            evaluator = make_rule_evaluator(pfd, rule_index, rule)
            if isinstance(evaluator, VariableRuleEvaluator):
                self._detect_variable_rule(report, evaluator)
            else:
                self._detect_constant_rule(report, evaluator)
        report.elapsed_seconds = time.perf_counter() - started
        return report

    def detect_all(self, pfds: Iterable[PFD]) -> ViolationReport:
        """Detect violations of every PFD and merge the reports."""
        pfds = list(pfds)
        self.warm_pair_groups(
            (pfd.lhs_attribute, pfd.rhs_attribute) for pfd in pfds
        )
        merged = ViolationReport(
            n_rows=self.sharded.n_rows, strategy=SHARDED_STRATEGY
        )
        for pfd in pfds:
            merged = merged.merged_with(self.detect(pfd))
        merged.strategy = SHARDED_STRATEGY
        return merged

    # -- merged statistics -------------------------------------------------------

    def pair_groups(self, lhs: str, rhs: str) -> MergedPairGroups:
        """The merged pair groups of one attribute pair (cached on the
        sharded table until a shard mutates)."""
        return self.sharded.merged_artifact(
            ("merged_pair_groups", lhs, rhs),
            lambda: self._merge_pair_groups(lhs, rhs),
        )

    def warm_pair_groups(self, pairs: Iterable[Tuple[str, str]]) -> None:
        """Batch-build the merged pair groups of several attribute pairs
        in **one** shard-major pass.

        The per-pair path scans every shard once *per pair* — on an
        out-of-core store whose LRU holds fewer shards than the table,
        that re-fetches and re-parses each shard for every pair.  This
        warm-up inverts the loops: while shard N is resident (and the
        prefetching reader is already fetching shard N+1), the statistics
        of *every* pending pair are extracted from it, so each shard
        object crosses the store exactly once per run.  Each partial
        folds into its pair's accumulator immediately (value-equal to
        the per-pair merges), and the results are primed into the same
        merged-artifact slots.  Pairs already cached,
        single-shard tables, and pooled fan-outs (whose per-pair maps are
        warm-cached by shard version instead) are left to the existing
        path.
        """
        pending: List[Tuple[str, str]] = []
        for pair in pairs:
            if pair in pending:
                continue
            if self.sharded.peek_merged_artifact(("merged_pair_groups",) + pair) is None:
                pending.append(pair)
        if len(pending) < 2 or self.sharded.n_shards < 2 or self._shard_map is not None:
            return
        # fold each shard's partial into its pair's accumulator the moment
        # it is extracted (ascending shard order, so the incremental
        # insert reduces to the same append-concatenation as the merges):
        # partials die with their shard, keeping the resident set bounded
        # even when every pair is warmed at once
        accumulators: Dict[Tuple[str, str], MergedPairGroups] = {
            pair: MergedPairGroups({}) for pair in pending
        }
        for offset, shard in self.sharded.iter_shards():
            for lhs, rhs in pending:
                with self.timers.stage("pair_groups"):
                    partial = self._shard_pair_groups(shard, offset, lhs, rhs)
                with self.timers.stage("merge"):
                    merge_into_pair_groups(accumulators[(lhs, rhs)], partial)
        for (lhs, rhs), merged in accumulators.items():
            self.sharded.prime_merged_artifact(
                ("merged_pair_groups", lhs, rhs), merged
            )

    def _merge_pair_groups(self, lhs: str, rhs: str) -> MergedPairGroups:
        with self.timers.stage("pair_groups"):
            if self._shard_map is not None and self.sharded.n_shards > 1:
                if getattr(self._shard_map, "supports_keys", False):
                    # warm-cacheable fan-out: keyed by shard version, so
                    # repeated runs over unchanged shards skip the shard
                    # load and the process round-trip; payloads are
                    # built lazily, only for cache misses
                    sharded = self.sharded
                    versions = sharded.versions()
                    keys = [
                        ("shard_pair_groups", index, versions[index], lhs, rhs,
                         sharded.offset_of(index), self.use_kernels)
                        for index in range(sharded.n_shards)
                    ]
                    shard_groups = self._shard_map(
                        _extract_shard,
                        keys=keys,
                        payload_for=lambda index: (
                            sharded.store.get(index).column_ref(lhs),
                            sharded.store.get(index).column_ref(rhs),
                            sharded.offset_of(index),
                            self.use_kernels,
                        ),
                    )
                else:
                    payloads = [
                        (
                            shard.column_ref(lhs),
                            shard.column_ref(rhs),
                            offset,
                            self.use_kernels,
                        )
                        for offset, shard in self.sharded.iter_shards()
                    ]
                    shard_groups = self._shard_map(_extract_shard, payloads)
            else:
                shard_groups = [
                    self._shard_pair_groups(shard, offset, lhs, rhs)
                    for offset, shard in self.sharded.iter_shards()
                ]
        with self.timers.stage("merge"):
            # fan the pairwise tree levels out only over a persistent
            # pool; spinning ephemeral pools per level would cost more
            # than the merges
            merge_map = (
                self._shard_map
                if getattr(self._shard_map, "pool_backed", False)
                and len(shard_groups) > 2
                else None
            )
            return tree_merge_pair_groups(shard_groups, merge_map=merge_map)

    def _shard_pair_groups(
        self, shard, offset: int, lhs: str, rhs: str
    ) -> PairGroups:
        """One shard's statistic, cached per (shard version, pair, offset).

        The kernel and scalar builders share the cache key because they
        produce identical maps (same keys, same orders, same row lists).
        """
        return TABLE_ARTIFACTS.get(
            shard,
            ("shard_pair_groups", lhs, rhs, offset),
            lambda: _build_pair_groups(
                shard.column_ref(lhs),
                shard.column_ref(rhs),
                offset,
                self.use_kernels,
            ),
        )

    # -- constant rules -----------------------------------------------------------

    def _detect_constant_rule(
        self, report: ViolationReport, evaluator: ConstantRuleEvaluator
    ) -> None:
        merged = self.pair_groups(evaluator.lhs, evaluator.rhs)
        matching = merged.matching_values(
            evaluator.lhs_cell,
            self.memo,
            use_kernels="on" if self.use_kernels else "off",
        )
        report.comparisons += merged.last_candidates_tested
        report.extend(
            evaluator.emit_value_groups(
                self._value_groups(merged, matching), self.memo, report
            )
        )

    @staticmethod
    def _value_groups(
        merged: MergedPairGroups, matching: Sequence[str]
    ) -> Iterator[Tuple[str, Sequence[int]]]:
        """``(observed RHS value, rows)`` pairs of the matching LHS values."""
        for lhs_value in matching:
            yield from merged.groups[lhs_value].items()

    # -- variable rules ------------------------------------------------------------

    def _detect_variable_rule(
        self, report: ViolationReport, evaluator: VariableRuleEvaluator
    ) -> None:
        blocks = self.sharded.merged_artifact(
            ("sharded_blocks", evaluator.lhs, evaluator.rhs, evaluator.constrained),
            lambda: self._reduce_blocks(evaluator),
        )
        for groups in blocks.values():
            if len(groups) < 2:
                continue
            report.comparisons += len(groups)
            report.extend(evaluator.violations_for_groups(groups))

    def _reduce_blocks(self, evaluator: VariableRuleEvaluator) -> SplitBlocks:
        """Reduce the merged pair groups into cross-shard ``≡_Q`` blocks.

        One projection per merged distinct LHS value (memo-backed, so
        every rule and every run shares the verdict); values sharing a
        projection key pour their per-RHS-value row lists into one
        block.  Row lists of a single (key, RHS value) group may
        interleave across source LHS values, which is why the witness
        semantics in :meth:`VariableRuleEvaluator.violations_for_groups`
        take ``min()`` rather than "first".
        """
        merged = self.pair_groups(evaluator.lhs, evaluator.rhs)
        project = self.memo.projector(evaluator.constrained)
        blocks: SplitBlocks = {}
        for lhs_value, by_rhs in merged.groups.items():
            key = project(lhs_value)
            if key is None:
                continue
            bucket = blocks.get(key)
            if bucket is None:
                bucket = blocks[key] = {}
            for rhs_value, rows in by_rhs.items():
                existing = bucket.get(rhs_value)
                if existing is None:
                    # copy: block buckets must not alias the statistic's rows
                    bucket[rhs_value] = row_ids(rows)
                else:
                    existing.extend(rows)
        return blocks


def _build_pair_groups(
    lhs_values, rhs_values, offset: int, use_kernels: bool
) -> PairGroups:
    """One shard's pair groups via the requested builder (the kernel
    builder is byte-identical to the scalar extractor)."""
    if use_kernels and HAVE_NUMPY:
        from repro.kernels.groupby import pair_groups_kernel

        return pair_groups_kernel(lhs_values, rhs_values, offset)
    return extract_pair_groups(lhs_values, rhs_values, offset)


def _extract_shard(payload) -> PairGroups:
    """Worker entry point for the shard fan-out (module-level so it is
    picklable by ``ProcessPoolExecutor``)."""
    lhs_values, rhs_values, offset, use_kernels = payload
    return _build_pair_groups(lhs_values, rhs_values, offset, use_kernels)
