"""Remote object-store clients: HTTP transport, retries, fault injection.

This module is the *client* layer under
:class:`~repro.sharding.object_store.ObjectShardStore` — everything a
shard needs to survive a real, unreliable network:

* :class:`RetryPolicy` — the one retry loop in the system: bounded
  attempts, exponential backoff with seeded jitter, and retries for
  **idempotent operations only**.  The store routes both its reads and
  its writes through it (full-object PUT/GET/DELETE are idempotent; a
  non-idempotent operation fails on the first error).
* :class:`HttpObjectClient` — an S3-compatible-style transport over the
  standard library's ``urllib``: ``PUT``/``GET``/``DELETE`` per object
  key, ``GET`` with a ``prefix`` query for listing, and HTTP ``Range``
  reads for partial shard fetches.  Every transport failure — timeouts,
  refused connections, 5xx responses — surfaces as an
  :class:`ObjectStoreError` (never a raw socket/OS error), tagged
  ``transient`` when a retry is worth attempting.
* :class:`FaultInjectingClient` — a deterministic wrapper around any
  client that injects drops, truncations, bit-flips, transient
  5xx/timeout errors and slow reads, either at a seeded random rate or
  from an explicit per-operation script.  The differential harness runs
  the whole discovery/detection pipeline through it to prove the
  retry/checksum machinery heals every injected fault.

The error types live here (not in ``object_store``) so the clients do
not import the store layer; ``object_store`` re-exports them for
backward compatibility.
"""

from __future__ import annotations

import random
import time
import urllib.error
import urllib.parse
import urllib.request
from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import TableError


class ObjectStoreError(TableError):
    """A put/get/list/delete operation against an object client failed.

    Carries the context a remote failure needs to be diagnosable from
    the message alone: the object ``key``, how many ``attempts`` were
    made, and whether the failure looked ``transient`` (worth retrying).
    """

    def __init__(
        self,
        message: str,
        *,
        key: Optional[str] = None,
        attempts: Optional[int] = None,
        transient: bool = False,
    ):
        super().__init__(message)
        self.key = key
        self.attempts = attempts
        self.transient = transient


class ObjectChecksumError(ObjectStoreError):
    """An object's bytes do not match the digest recorded at append time."""

    def __init__(self, key: str, expected: str, actual: str):
        super().__init__(
            f"object {key!r} failed its checksum "
            f"(expected sha256 {expected[:12]}…, got {actual[:12]}…)",
            key=key,
            transient=True,  # torn reads / stale replicas heal on retry
        )
        self.expected = expected
        self.actual = actual


def validate_key(key: str) -> str:
    """Reject keys that could escape an object namespace (shared by every
    client: empty keys, absolute paths, dot-segments, hidden roots)."""
    if not key or key.startswith(("/", ".")) or ".." in key.split("/"):
        raise ObjectStoreError(f"invalid object key {key!r}", key=key)
    return key


# -- retry policy -----------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts per operation (``1`` disables retries).
    base_delay:
        Backoff before the second attempt, in seconds.  ``0`` retries
        immediately (what the tests and benches use).
    multiplier:
        Backoff growth factor per retry.
    max_delay:
        Ceiling on any single backoff pause.
    jitter:
        Fraction of each pause randomized (``0.5`` → pause is uniform in
        ``[delay, 1.5 * delay]``), decorrelating concurrent retriers.
    seed:
        Seeds the jitter so a replayed run backs off identically;
        ``None`` uses nondeterministic jitter.
    """

    max_attempts: int = 3
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.5
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise TableError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise TableError("retry delays must be >= 0")

    def delays(self) -> Iterator[float]:
        """The backoff pauses between attempts (``max_attempts - 1`` of
        them), jittered deterministically when a ``seed`` is set."""
        rng = random.Random(self.seed)
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            jittered = delay * (1.0 + self.jitter * rng.random()) if delay else 0.0
            yield min(jittered, self.max_delay)
            delay *= self.multiplier

    def run(
        self,
        operation: Callable[[], object],
        *,
        what: str = "object operation failed",
        idempotent: bool = True,
        on_retry: Optional[Callable[[ObjectStoreError], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        """Call ``operation`` under this policy and return its result.

        Only :class:`ObjectStoreError` triggers a retry, and only for
        idempotent operations — a non-idempotent one surfaces its first
        failure untouched.  Exhaustion raises an
        :class:`ObjectStoreError` whose message carries ``what``, the
        attempt count and the last underlying error.
        """
        attempts = self.max_attempts if idempotent else 1
        pauses = self.delays()
        last: Optional[ObjectStoreError] = None
        for attempt in range(1, attempts + 1):
            try:
                return operation()
            except ObjectStoreError as exc:
                exc.attempts = attempt
                last = exc
                if not idempotent:
                    raise
                if attempt == attempts:
                    break
                if on_retry is not None:
                    on_retry(exc)
                pause = next(pauses, 0.0)
                if pause > 0:
                    sleep(pause)
        raise ObjectStoreError(
            f"{what} after {attempts} attempt{'s' if attempts != 1 else ''}: {last}",
            key=last.key if last is not None else None,
            attempts=attempts,
        ) from last


# -- HTTP transport ---------------------------------------------------------------


class HttpObjectClient:
    """Blob transport over plain HTTP, in the S3-compatible style.

    One object per URL: ``PUT {base}/{key}`` uploads the bytes,
    ``GET {base}/{key}`` downloads them, ``DELETE {base}/{key}`` removes
    them, and ``GET {base}/?prefix=...`` lists keys (newline-separated
    plain text, the contract of the bundled
    :class:`~repro.sharding.devserver.ObjectHTTPServer` fixture).
    Partial shard fetches go through :meth:`get_range` with an HTTP
    ``Range`` header; a server without range support answers ``200``
    with the full body and the slice is taken client-side.

    The client itself never retries — retrying is the
    :class:`RetryPolicy`'s job in the store above — but it classifies
    every failure: 5xx responses and socket-level errors (timeouts,
    refused/reset connections) raise :class:`ObjectStoreError` with
    ``transient=True``; 4xx responses are permanent.
    """

    def __init__(self, base_url: str, timeout: float = 10.0):
        if not base_url.startswith(("http://", "https://")):
            raise ObjectStoreError(
                f"object store URL must be http(s)://..., got {base_url!r}"
            )
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _url(self, key: str) -> str:
        return f"{self.base_url}/{urllib.parse.quote(validate_key(key))}"

    def _request(
        self,
        method: str,
        url: str,
        key: Optional[str],
        data: Optional[bytes] = None,
        headers: Optional[dict] = None,
        ok_missing: bool = False,
    ) -> Tuple[int, bytes]:
        request = urllib.request.Request(
            url, data=data, method=method, headers=headers or {}
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            if exc.code == 404 and ok_missing:
                return exc.code, b""
            raise ObjectStoreError(
                f"{method} {key or url} -> HTTP {exc.code} {exc.reason}",
                key=key,
                transient=exc.code >= 500,
            ) from exc
        except (urllib.error.URLError, TimeoutError, ConnectionError, OSError) as exc:
            # never let a raw socket/OS error escape the client layer
            reason = getattr(exc, "reason", exc)
            raise ObjectStoreError(
                f"{method} {key or url} failed: {reason}", key=key, transient=True
            ) from exc

    def put(self, key: str, data: bytes) -> None:
        self._request("PUT", self._url(key), key, data=bytes(data))

    def get(self, key: str) -> bytes:
        return self._request("GET", self._url(key), key)[1]

    def get_range(self, key: str, start: int, length: int) -> bytes:
        """``length`` bytes of the object starting at ``start``."""
        if start < 0 or length < 0:
            raise ObjectStoreError(
                f"invalid range {start}+{length} for object {key!r}", key=key
            )
        if length == 0:
            return b""
        headers = {"Range": f"bytes={start}-{start + length - 1}"}
        status, body = self._request("GET", self._url(key), key, headers=headers)
        if status == 206:
            return body
        return body[start : start + length]  # server ignored the Range header

    def list(self, prefix: str = ""):
        query = urllib.parse.urlencode({"prefix": prefix})
        _status, body = self._request("GET", f"{self.base_url}/?{query}", None)
        return sorted(key for key in body.decode("utf-8").splitlines() if key)

    def delete(self, key: str) -> None:
        # deleting an already-absent object is success, like the local client
        self._request("DELETE", self._url(key), key, ok_missing=True)

    def close(self) -> None:
        """No persistent connection to release."""


# -- fault injection --------------------------------------------------------------


#: every fault the injector knows how to script
FAULT_KINDS = ("transient", "timeout", "drop", "truncate", "bitflip", "slow")

#: faults that corrupt *returned bytes* — on writes they degrade to a
#: loud transient rejection (the S3 posture: a Content-MD5 mismatch is a
#: 4xx/5xx, never a silently corrupted stored object), so a corrupted
#: upload is always retryable instead of poisoning the shard forever
_READ_ONLY_FAULTS = ("truncate", "bitflip", "drop")


class FaultInjectingClient:
    """Deterministic fault wrapper around any object client.

    Two modes, both reproducible:

    * **seeded random** — ``fault_rate`` is the per-operation fault
      probability and ``seed`` fixes the whole fault sequence, so a run
      that passed once passes always;
    * **scripted** — ``script`` is a sequence of ``(operation, kind)``
      pairs consumed in order: when the next scripted operation name
      (``"put"``, ``"get"``, ``"get_range"``, ``"list"``, ``"delete"``,
      or ``"*"`` for any) matches the call being made, that fault fires.

    Fault kinds (:data:`FAULT_KINDS`):

    * ``transient`` — the operation fails with an injected HTTP-503-style
      :class:`ObjectStoreError` before reaching the wrapped client;
    * ``timeout`` — likewise, shaped as a timed-out request;
    * ``drop`` — a read sees the object as missing (eventual-consistency
      visibility lag); on writes it degrades to ``transient``;
    * ``truncate`` — a read returns only the first half of the bytes;
    * ``bitflip`` — a read returns the bytes with one bit flipped at a
      seeded position;
    * ``slow`` — the operation succeeds after a ``slow_delay`` pause.

    ``faults`` counts injected faults by kind and ``operations`` counts
    calls by operation name, for assertions and bench reporting.
    """

    def __init__(
        self,
        inner,
        seed: int = 0,
        fault_rate: float = 0.0,
        kinds: Sequence[str] = FAULT_KINDS,
        script: Optional[Iterable[Tuple[str, str]]] = None,
        slow_delay: float = 0.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if not 0.0 <= fault_rate <= 1.0:
            raise TableError(f"fault_rate must be in [0, 1], got {fault_rate}")
        unknown = [kind for kind in kinds if kind not in FAULT_KINDS]
        if unknown:
            raise TableError(f"unknown fault kind(s) {unknown}; known: {FAULT_KINDS}")
        self.inner = inner
        self.fault_rate = fault_rate
        self.kinds = tuple(kinds)
        self.slow_delay = slow_delay
        self._rng = random.Random(seed)
        self._script = deque(script or ())
        self._sleep = sleep
        self.faults: Counter = Counter()
        self.operations: Counter = Counter()

    @property
    def total_faults(self) -> int:
        return sum(self.faults.values())

    def _next_fault(self, operation: str) -> Optional[str]:
        if self._script:
            scripted_operation, kind = self._script[0]
            if scripted_operation in (operation, "*"):
                self._script.popleft()
                if kind not in FAULT_KINDS:
                    raise TableError(
                        f"unknown scripted fault kind {kind!r}; known: {FAULT_KINDS}"
                    )
                return kind
            return None
        if self.fault_rate and self._rng.random() < self.fault_rate:
            return self._rng.choice(self.kinds)
        return None

    def _raise_or_delay(self, kind: Optional[str], operation: str, key: Optional[str]):
        """Handle the pre-call fault kinds; returns the kind that still
        needs post-call (returned-bytes) handling, if any."""
        if kind is None:
            return None
        if kind in _READ_ONLY_FAULTS and operation not in ("get", "get_range"):
            kind = "transient"
        self.faults[kind] += 1
        if kind == "transient":
            raise ObjectStoreError(
                f"injected transient fault: {operation} {key!r} -> HTTP 503 "
                "Service Unavailable",
                key=key,
                transient=True,
            )
        if kind == "timeout":
            raise ObjectStoreError(
                f"injected timeout: {operation} {key!r} timed out",
                key=key,
                transient=True,
            )
        if kind == "drop":
            raise ObjectStoreError(
                f"injected drop: object {key!r} not visible yet -> HTTP 404",
                key=key,
                transient=True,
            )
        if kind == "slow":
            self._sleep(self.slow_delay)
            return None
        return kind  # truncate / bitflip corrupt the returned bytes

    def _corrupt(self, kind: Optional[str], data: bytes) -> bytes:
        if kind == "truncate" and data:
            return data[: len(data) // 2]
        if kind == "bitflip" and data:
            position = self._rng.randrange(len(data))
            corrupted = bytearray(data)
            corrupted[position] ^= 1 << self._rng.randrange(8)
            return bytes(corrupted)
        return data

    def put(self, key: str, data: bytes) -> None:
        self.operations["put"] += 1
        self._raise_or_delay(self._next_fault("put"), "put", key)
        self.inner.put(key, data)

    def get(self, key: str) -> bytes:
        self.operations["get"] += 1
        corruption = self._raise_or_delay(self._next_fault("get"), "get", key)
        return self._corrupt(corruption, self.inner.get(key))

    def get_range(self, key: str, start: int, length: int) -> bytes:
        self.operations["get_range"] += 1
        corruption = self._raise_or_delay(
            self._next_fault("get_range"), "get_range", key
        )
        return self._corrupt(corruption, self.inner.get_range(key, start, length))

    def list(self, prefix: str = ""):
        self.operations["list"] += 1
        self._raise_or_delay(self._next_fault("list"), "list", None)
        return self.inner.list(prefix)

    def delete(self, key: str) -> None:
        self.operations["delete"] += 1
        self._raise_or_delay(self._next_fault("delete"), "delete", key)
        self.inner.delete(key)

    def close(self) -> None:
        """Close the wrapped client (never fault-injected — cleanup must
        stay reliable)."""
        self.inner.close()
