"""Sharded PFD discovery: per-shard statistics, one merged rule set.

Discovery over a :class:`~repro.sharding.sharded_table.ShardedTable`
extracts the expensive per-shard statistics — the single-pass column
tokenizations of Figure 2's inverted-list build — shard by shard
(optionally on worker processes), merges them by concatenation, and runs
the unchanged miners and decision function on the merged statistics.
Because merging reproduces the monolithic tokenization exactly (global
tuple ids are shard offset + local row, which is where concatenation
puts them), the discovered rule set is *identical* to a single-shard
run: same candidates, same inverted-entry support counts, same accepted
tableaux, same PFD names and order.  The differential suite in
``tests/sharding`` asserts this across generators and shard sizes.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dataset.profiling import TableProfile, profile_sharded
from repro.discovery.candidates import CandidateDependency, candidate_dependencies
from repro.discovery.config import DiscoveryConfig
from repro.discovery.decision import DecisionFunction
from repro.discovery.discoverer import (
    DiscoveryResult,
    PfdDiscoverer,
    _mine_candidate_encoded,
    _mine_candidate_values,
)
from repro.discovery.inverted_index import ColumnTokenization
from repro.kernels.encoder import ColumnEncoding, encode_chunks
from repro.kernels.runtime import kernels_enabled
from repro.kernels.tokenize import batch_tokenize, tokenization_from_encoding
from repro.pfd.pfd import PFD
from repro.sharding.sharded_table import ShardedTable
from repro.sharding.stats import tree_merge_tokenizations


class ShardedDiscoverer:
    """Discovers PFDs from a sharded table, shard by shard."""

    def __init__(
        self,
        config: Optional[DiscoveryConfig] = None,
        decision: Optional[DecisionFunction] = None,
        shard_map: Optional[Callable] = None,
    ):
        #: the monolithic driver supplies the miners, the decision
        #: function, and the assemble stage — one pipeline, two feeders
        self.discoverer = PfdDiscoverer(config, decision)
        self.config = self.discoverer.config
        #: how to apply the per-shard extraction: ``None`` stays
        #: in-process (sharing one distinct-value cache across shards),
        #: anything else is a map hook, e.g.
        #: :func:`repro.engine.pool.make_shard_map`'s pooled fan-out
        self._shard_map = shard_map

    def discover(self, sharded: ShardedTable, relation: Optional[str] = None) -> List[PFD]:
        """Discover PFDs and return just the PFD list."""
        return self.discover_with_report(sharded, relation=relation).pfds

    def discover_with_report(
        self,
        sharded: ShardedTable,
        relation: Optional[str] = None,
        candidates: Optional[Sequence[CandidateDependency]] = None,
    ) -> DiscoveryResult:
        """Run the full pipeline over shards and return PFDs plus stats."""
        started = time.perf_counter()
        timers = self.discoverer.timers
        with timers.stage("profile"):
            profile = self._profile(sharded)
        if candidates is None:
            with timers.stage("candidates"):
                candidates = candidate_dependencies(sharded, self.config, profile)
        candidates = list(candidates)
        with timers.stage("mine"):
            reports = self._mine_merged(sharded, candidates)
        with timers.stage("assemble"):
            pfds = self.discoverer.assemble_pfds(candidates, reports, relation)
        return DiscoveryResult(
            pfds=pfds,
            reports=reports,
            profile=profile,
            config=self.config,
            elapsed_seconds=time.perf_counter() - started,
        )

    # -- merged statistics --------------------------------------------------------

    def _profile(self, sharded: ShardedTable) -> TableProfile:
        """Profile the logical table shard-major via the streaming
        builders — one resident shard at a time, never a concatenated
        column (identical to ``profile_table`` on the monolithic
        table)."""
        return profile_sharded(sharded)

    def _mine_merged(
        self, sharded: ShardedTable, candidates: Sequence[CandidateDependency]
    ) -> List:
        """The Figure 2 loop over merged columns and merged tokenizations.

        Mirrors ``PfdDiscoverer._mine_serial`` exactly, with the LHS
        tokenization assembled from per-shard extractions instead of one
        monolithic pass.
        """
        if kernels_enabled(self.config.use_kernels):
            return self._mine_merged_kernel(sharded, candidates)
        timers = self.discoverer.timers
        tokenizations: Dict[Tuple[str, str], ColumnTokenization] = {}
        reports = []
        for candidate in candidates:
            tokenization = None
            if self.config.discover_constant:
                key = (candidate.lhs, candidate.lhs_mode)
                tokenization = tokenizations.get(key)
                if tokenization is None:
                    with timers.stage("tokenize"):
                        tokenization = tokenizations[key] = self._merged_tokenization(
                            sharded, candidate.lhs, candidate.lhs_mode
                        )
            reports.append(
                _mine_candidate_values(
                    candidate,
                    sharded.column_concat(candidate.lhs),
                    sharded.column_concat(candidate.rhs),
                    self.config,
                    self.discoverer.constant_miner,
                    self.discoverer.variable_miner,
                    tokenization=tokenization,
                    timers=timers,
                )
            )
        self._drop_mining_artifacts(sharded)
        return reports

    def _mine_merged_kernel(
        self, sharded: ShardedTable, candidates: Sequence[CandidateDependency]
    ) -> List:
        """The columnar mining loop over merged columns.

        Encodings and distinct-level triples are merged-table artifacts
        (cached until a shard mutates); the loop body and the
        scalar-fallback rule are shared with the monolithic kernel path,
        so sharded and monolithic runs stay byte-identical.
        """
        timers = self.discoverer.timers
        encodings: Dict[str, ColumnEncoding] = {}
        triples: Dict[Tuple[str, str], list] = {}
        reports = []

        def encoding_for(name: str) -> ColumnEncoding:
            encoding = encodings.get(name)
            if encoding is None:
                # stream shard by shard: the concatenated column is never
                # materialized on the kernel path
                encoding = encodings[name] = sharded.merged_artifact(
                    ("column_encoding", name),
                    lambda: encode_chunks(
                        shard.column_ref(name)
                        for _offset, shard in sharded.iter_shards()
                    ),
                )
            return encoding

        for candidate in candidates:
            with timers.stage("tokenize"):
                lhs_encoding = encoding_for(candidate.lhs)
                rhs_encoding = encoding_for(candidate.rhs)
                candidate_triples = None
                if self.config.discover_constant:
                    key = (candidate.lhs, candidate.lhs_mode)
                    candidate_triples = triples.get(key)
                    if candidate_triples is None:
                        candidate_triples = triples[key] = sharded.merged_artifact(
                            (
                                "kernel_triples",
                                candidate.lhs,
                                candidate.lhs_mode,
                                self.config.ngram_size,
                            ),
                            lambda: batch_tokenize(
                                lhs_encoding,
                                candidate.lhs_mode,
                                self.config.ngram_size,
                            ),
                        )
            report = _mine_candidate_encoded(
                candidate,
                lhs_encoding,
                rhs_encoding,
                candidate_triples,
                self.config,
                self.discoverer.constant_miner,
                self.discoverer.variable_miner,
                timers=timers,
            )
            if report is None:
                tokenization = None
                if self.config.discover_constant:
                    tokenization = tokenization_from_encoding(
                        lhs_encoding,
                        candidate.lhs_mode,
                        self.config.ngram_size,
                        candidate_triples,
                    )
                report = _mine_candidate_values(
                    candidate,
                    sharded.column_concat(candidate.lhs),
                    sharded.column_concat(candidate.rhs),
                    self.config,
                    self.discoverer.constant_miner,
                    self.discoverer.variable_miner,
                    tokenization=tokenization,
                    timers=timers,
                )
            reports.append(report)
        self._drop_mining_artifacts(sharded)
        return reports

    @staticmethod
    def _drop_mining_artifacts(sharded: ShardedTable) -> None:
        """Release the O(n) merged statistics that exist only to feed the
        miners; a bounded-memory session must not carry them past
        discovery (they rebuild on demand if discovery reruns)."""
        sharded.drop_merged_artifacts(
            "column_concat",
            "column_encoding",
            "kernel_triples",
            "merged_tokenization",
        )

    def _merged_tokenization(
        self, sharded: ShardedTable, column: str, mode: str
    ) -> ColumnTokenization:
        """One column's tokenization, extracted shard by shard and merged
        (cached on the sharded table until a shard mutates)."""
        return sharded.merged_artifact(
            ("merged_tokenization", column, mode, self.config.ngram_size),
            lambda: self._extract_and_merge(sharded, column, mode),
        )

    def _extract_and_merge(
        self, sharded: ShardedTable, column: str, mode: str
    ) -> ColumnTokenization:
        timers = self.discoverer.timers
        ngram_size = self.config.ngram_size
        if self._shard_map is not None and sharded.n_shards > 1:
            if getattr(self._shard_map, "supports_keys", False):
                # warm-cacheable fan-out: keyed by shard version, so a
                # repeated run over unchanged shards skips the shard
                # load and the process round-trip (payloads build lazily,
                # only for cache misses)
                versions = sharded.versions()
                keys = [
                    ("shard_tokens", index, versions[index], column, mode, ngram_size)
                    for index in range(sharded.n_shards)
                ]
                shard_rows = self._shard_map(
                    _extract_shard_tokens,
                    keys=keys,
                    payload_for=lambda index: (
                        sharded.store.get(index).column_ref(column),
                        mode,
                        ngram_size,
                    ),
                )
            else:
                payloads = [
                    (shard.column_ref(column), mode, ngram_size)
                    for _offset, shard in sharded.iter_shards()
                ]
                shard_rows = self._shard_map(_extract_shard_tokens, payloads)
        else:
            # One distinct-value cache across shards: a value recurring in
            # many shards is tokenized once, like the monolithic pass.
            value_cache: Dict[str, tuple] = {}
            shard_rows = [
                ColumnTokenization.extract(
                    shard.column_ref(column), mode, ngram_size, value_cache=value_cache
                ).row_tokens
                for _offset, shard in sharded.iter_shards()
            ]
        with timers.stage("merge"):
            return tree_merge_tokenizations(mode, ngram_size, shard_rows)


def _extract_shard_tokens(payload) -> list:
    """Worker entry point for the tokenization fan-out (module-level so
    it is picklable by ``ProcessPoolExecutor``)."""
    values, mode, ngram_size = payload
    return ColumnTokenization.extract(values, mode, ngram_size).row_tokens
