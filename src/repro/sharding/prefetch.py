"""A bounded fetch pipeline that overlaps shard I/O with compute.

Sharded discovery and detection read shard objects in ascending index
order (``ShardedTable.iter_shards``), so the access pattern is known the
moment shard N is requested: shards N+1..N+k come next.
:class:`PrefetchingFetcher` exploits that by scheduling those fetches —
the full GET **plus checksum verification plus retry backoff** — on a
small thread pool while the caller computes over shard N.  Python
threads overlap fine here: ``urllib`` socket waits release the GIL, and
a retrying shard sleeps its backoff inside its fetch thread instead of
stalling the compute path.

The pipeline is bounded (never more than ``depth`` fetches ahead, at
most ``depth`` threads), keeps results strictly per-index (futures are
popped on consumption, so bytes are handed out exactly once), and
reports through a :class:`~repro.perf.timers.StageTimers`:

* ``fetch_wait`` — time the *caller* spent blocked on shard bytes (the
  unhidden part of I/O; near zero when prefetch keeps up),
* ``prefetch_hit`` — a zero-duration tick per shard whose bytes were
  already fetched when asked for (count = hits).

Errors keep their sequential semantics: a fetch that exhausts its
retries raises from the ``get()`` of that shard, not from some
unrelated call.  :meth:`close` cancels pending work and joins the
threads; a closed fetcher degrades to sequential fetching rather than
failing, mirroring the degrade-to-serial contract of the worker pool.
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Optional

from repro.errors import TableError
from repro.perf.timers import StageTimers


class PrefetchingFetcher:
    """Fetch ``index → bytes`` ahead of a sequential reader.

    Parameters
    ----------
    fetch:
        The blocking fetch (GET + checksum verify under the store's
        retry policy).  Must be thread-safe; both object clients are —
        each request opens its own connection.
    depth:
        How many indexes ahead of the requested one to keep in flight
        (also the thread-pool size).  Must be ``>= 1``.
    timers:
        Stage timers to report ``fetch_wait``/``prefetch_hit`` into;
        a private one is created when omitted.
    """

    def __init__(
        self,
        fetch: Callable[[int], bytes],
        depth: int,
        timers: Optional[StageTimers] = None,
    ):
        if depth < 1:
            raise TableError(f"prefetch depth must be >= 1, got {depth}")
        self._fetch = fetch
        self.depth = depth
        self.timers = timers if timers is not None else StageTimers()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._futures: "OrderedDict[int, Future]" = OrderedDict()
        self._closed = False
        #: shards whose bytes were already in hand when asked for
        self.prefetch_hits = 0
        #: shards the caller had to wait on (fetch not finished, or
        #: not scheduled at all)
        self.demand_fetches = 0

    # -- lifecycle ---------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.depth, thread_name_prefix="shard-prefetch"
            )
        return self._executor

    def close(self) -> None:
        """Cancel pending fetches and join the threads.  Idempotent; a
        closed fetcher still serves :meth:`get` (sequentially)."""
        self._closed = True
        futures, self._futures = self._futures, OrderedDict()
        for future in futures.values():
            future.cancel()
        if self._executor is not None:
            executor, self._executor = self._executor, None
            executor.shutdown(wait=True)
        # consume exceptions of fetches that were already running when
        # close() hit, so they don't surface as stray tracebacks
        for future in futures.values():
            if future.done() and not future.cancelled():
                future.exception()

    def __enter__(self) -> "PrefetchingFetcher":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- fetching ----------------------------------------------------------------

    def _schedule(self, index: int) -> None:
        if index in self._futures or len(self._futures) > self.depth:
            return
        self._futures[index] = self._ensure_executor().submit(self._fetch, index)

    def get(self, index: int, horizon: int) -> bytes:
        """Bytes for ``index``, scheduling ``index+1..index+depth``
        (bounded by ``horizon``, the total shard count) in the
        background.  Blocks only for the unhidden remainder of this
        shard's own fetch, which lands in ``fetch_wait``.

        Out-of-order access (the maintenance path reads dirty shards in
        arbitrary order) is served too: an index with no fetch in flight
        is simply fetched on the calling thread.  A stale future from an
        earlier pass is still valid — objects are immutable."""
        if self._closed:
            with self.timers.stage("fetch_wait"):
                return self._fetch(index)
        # schedule the successors first so the fetch threads work while
        # this shard is being waited on (and later parsed/computed over)
        for ahead in range(index + 1, min(index + 1 + self.depth, horizon)):
            self._schedule(ahead)
        future = self._futures.pop(index, None)
        if future is None:
            # never scheduled (first shard of a pass, or random access):
            # fetching on the calling thread beats a submit-and-wait hop
            self.demand_fetches += 1
            with self.timers.stage("fetch_wait"):
                return self._fetch(index)
        hit = future.done()
        with self.timers.stage("fetch_wait"):
            data = future.result()
        if hit:
            self.prefetch_hits += 1
            self.timers.add("prefetch_hit", 0.0)
        else:
            self.demand_fetches += 1
        return data
