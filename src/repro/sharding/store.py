"""Pluggable shard storage behind :class:`ShardedTable`.

A :class:`ShardStore` owns the per-shard :class:`~repro.dataset.table.Table`
objects of one sharded dataset.  The sharded engines never hold shard
lists themselves anymore — they address shards through the store, so the
*where* of shard bytes (process memory, local disk, and in the future a
remote object store) is swappable without touching discovery/detection.

Two implementations ship today:

* :class:`InMemoryShardStore` — the original behaviour: live ``Table``
  objects in a list.  Mutation detection works through the shards' own
  version counters.
* :class:`SpillToDiskShardStore` — shards are written to CSV files in a
  spill directory as they are appended and re-parsed on access, with a
  small LRU of recently loaded shards; resident memory is bounded by
  the LRU size no matter how many shards the dataset has.  Shards are
  immutable by contract (see :class:`ShardedTable`), which is what makes
  the spill round-trip safe.

Every store validates on :meth:`~ShardStore.append` that all shards
share one schema, so a half-built store can never be sealed into an
inconsistent :class:`ShardedTable`.
"""

from __future__ import annotations

import csv
import tempfile
from abc import ABC, abstractmethod
from collections import OrderedDict
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import TableError
from repro.perf.interning import InternPool


class ShardStore(ABC):
    """Ordered, append-only storage for the shards of one dataset."""

    def __init__(self) -> None:
        self._schema: Optional[Schema] = None

    # -- schema ----------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        if self._schema is None:
            raise TableError("the shard store is empty; append a shard first")
        return self._schema

    def column_names(self) -> List[str]:
        return self.schema.names()

    def _check_schema(self, shard: Table) -> None:
        """Shared append-time validation: all shards share one schema."""
        if self._schema is None:
            self._schema = shard.schema
            return
        if shard.column_names() != self._schema.names():
            raise TableError(
                f"shard {self.n_shards} has columns {shard.column_names()}, "
                f"expected {self._schema.names()} (all shards must share one schema)"
            )

    # -- the storage contract ----------------------------------------------------

    @property
    @abstractmethod
    def n_shards(self) -> int:
        """How many shards have been appended."""

    @abstractmethod
    def append(self, shard: Table) -> None:
        """Store one shard (validating its schema against the first)."""

    @abstractmethod
    def shard_row_counts(self) -> List[int]:
        """Per-shard row counts, in shard order (cheap — no shard loads)."""

    @abstractmethod
    def get(self, index: int) -> Table:
        """The shard at ``index`` (may load from backing storage)."""

    @abstractmethod
    def versions(self) -> Tuple[int, ...]:
        """Per-shard mutation counters — the staleness key for merged
        artifacts built over this store."""

    def close(self) -> None:
        """Release backing resources (a no-op for in-memory stores)."""

    def __len__(self) -> int:
        return self.n_shards


class InMemoryShardStore(ShardStore):
    """Shards held as live :class:`Table` objects — the default store."""

    def __init__(self, shards: Optional[List[Table]] = None):
        super().__init__()
        self._shards: List[Table] = []
        for shard in shards or ():
            self.append(shard)

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def append(self, shard: Table) -> None:
        self._check_schema(shard)
        self._shards.append(shard)

    def shard_row_counts(self) -> List[int]:
        return [shard.n_rows for shard in self._shards]

    def get(self, index: int) -> Table:
        return self._shards[index]

    def versions(self) -> Tuple[int, ...]:
        # live counters: a shard mutated behind our back changes the
        # tuple, invalidating every merged artifact built over it
        return tuple(shard.version for shard in self._shards)


class SpillToDiskShardStore(ShardStore):
    """Shards spilled to CSV files; resident memory bounded by a small LRU.

    Parameters
    ----------
    directory:
        Where the shard files go.  ``None`` creates a private temporary
        directory that is removed on :meth:`close` (or interpreter
        exit).
    cache_shards:
        How many recently accessed shards stay parsed in memory.  ``1``
        (the default) is enough for the sharded engines, which walk the
        shards sequentially.
    """

    def __init__(self, directory: Union[str, Path, None] = None, cache_shards: int = 1):
        super().__init__()
        if cache_shards < 1:
            raise TableError(f"cache_shards must be >= 1, got {cache_shards}")
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if directory is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-shards-")
            directory = self._tmpdir.name
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._cache_shards = cache_shards
        #: per-shard (path, row count, version-at-append)
        self._meta: List[Tuple[Path, int, int]] = []
        self._loaded: "OrderedDict[int, Table]" = OrderedDict()
        #: re-parsed cell strings are interned per store, so the resident
        #: string footprint across shard loads is the *distinct* value
        #: set, not one fresh copy per load
        self._interned = InternPool()

    @property
    def n_shards(self) -> int:
        return len(self._meta)

    def append(self, shard: Table) -> None:
        self._check_schema(shard)
        path = self.directory / f"shard_{len(self._meta):06d}.csv"
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            for row in shard.iter_rows():
                writer.writerow(row)
        self._meta.append((path, shard.n_rows, shard.version))

    def shard_row_counts(self) -> List[int]:
        return [n_rows for _path, n_rows, _version in self._meta]

    def get(self, index: int) -> Table:
        cached = self._loaded.get(index)
        if cached is not None:
            self._loaded.move_to_end(index)
            return cached
        path, n_rows, _version = self._meta[index]
        width = len(self.schema)
        columns: List[List[str]] = [[] for _ in range(width)]
        intern = self._interned.intern
        with path.open("r", newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            for row in reader:
                if len(row) != width:
                    # strict like the csvio readers: a ragged row is
                    # corruption, never silently padded or truncated
                    raise TableError(
                        f"spill file {path.name} line {reader.line_num} has "
                        f"{len(row)} fields, expected {width} (corrupted?)"
                    )
                for column, value in zip(columns, row):
                    column.append(intern(value))
        shard = Table(self.schema, columns)
        if shard.n_rows != n_rows:
            raise TableError(
                f"spilled shard {index} read back {shard.n_rows} rows, "
                f"expected {n_rows} (spill file corrupted?)"
            )
        self._loaded[index] = shard
        while len(self._loaded) > self._cache_shards:
            self._loaded.popitem(last=False)
        return shard

    def versions(self) -> Tuple[int, ...]:
        # spilled shards are frozen at append time; the recorded counters
        # are the stable staleness key
        return tuple(version for _path, _n_rows, version in self._meta)

    def close(self) -> None:
        self._loaded.clear()
        self._interned.clear()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None


#: CLI/session-facing names for the shipped store backends
STORE_KINDS = ("memory", "spill", "object")


def make_shard_store(
    kind: str,
    directory: Union[str, Path, None] = None,
    object_url: Optional[str] = None,
    retry_policy=None,
    prefetch_depth: int = 0,
) -> ShardStore:
    """Build a shard store from its CLI/session-facing name.

    ``directory`` is the spill/object root; ``None`` means a private
    temporary directory removed on ``close()``.  For the ``object``
    kind, ``object_url`` switches the backing client from the local
    filesystem to the remote
    :class:`~repro.sharding.remote.HttpObjectClient` at that base URL —
    the store then owns that remote namespace, so ``close()`` deletes
    its uploaded objects instead of leaking them on the server.
    ``retry_policy`` overrides the object store's default
    :class:`~repro.sharding.remote.RetryPolicy`, and ``prefetch_depth``
    (object kind only) enables its background fetch pipeline.
    """
    if kind == "memory":
        return InMemoryShardStore()
    if kind == "spill":
        return SpillToDiskShardStore(directory)
    if kind == "object":
        # imported lazily: object_store builds on this module
        from repro.sharding.object_store import ObjectShardStore
        from repro.sharding.remote import HttpObjectClient

        if object_url:
            return ObjectShardStore(
                client=HttpObjectClient(object_url),
                owns_client=True,
                retry_policy=retry_policy,
                prefetch_depth=prefetch_depth,
            )
        return ObjectShardStore(
            root=directory, retry_policy=retry_policy, prefetch_depth=prefetch_depth
        )
    raise TableError(
        f"unknown shard store kind {kind!r} (expected one of {', '.join(STORE_KINDS)})"
    )
