"""An in-process object server for tests and benches — no network needed.

:class:`ObjectHTTPServer` is a standard-library ``http.server`` speaking
the minimal blob protocol :class:`~repro.sharding.remote.HttpObjectClient`
expects:

* ``PUT /{key}`` stores the request body under ``key`` (``201``);
* ``GET /{key}`` returns the bytes (``200``), honouring an HTTP
  ``Range: bytes=a-b`` header with a ``206`` partial response;
* ``DELETE /{key}`` removes the object (``204``, also for absent keys);
* ``GET /?prefix=...`` lists matching keys as newline-separated text.

Everything lives in one in-memory dict guarded by a lock, served from a
daemon thread on a loopback ephemeral port — CI never touches a real
network.  ``fail_next_with(status, n)`` arms the server to answer the
next ``n`` requests with an HTTP error, for exercising the client's
transient-failure classification against a *real* HTTP response (the
richer fault vocabulary lives client-side in
:class:`~repro.sharding.remote.FaultInjectingClient`).
"""

from __future__ import annotations

import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional


class _ObjectRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, *_args) -> None:  # keep test output clean
        pass

    # -- helpers ------------------------------------------------------------------

    def _key(self) -> str:
        return urllib.parse.unquote(urllib.parse.urlsplit(self.path).path.lstrip("/"))

    def _reply(self, status: int, body: bytes = b"", headers: Optional[dict] = None):
        self.send_response(status)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _forced_failure(self) -> bool:
        status = self.server.take_forced_failure()
        if status is None:
            return False
        self._reply(status, b"injected server failure")
        return True

    # -- the blob protocol --------------------------------------------------------

    def do_PUT(self) -> None:
        if self._forced_failure():
            return
        length = int(self.headers.get("Content-Length", 0))
        body = self.rfile.read(length)
        with self.server.lock:
            self.server.objects[self._key()] = body
        self._reply(201)

    def do_GET(self) -> None:
        if self._forced_failure():
            return
        parsed = urllib.parse.urlsplit(self.path)
        if parsed.path in ("", "/"):
            prefix = urllib.parse.parse_qs(parsed.query).get("prefix", [""])[0]
            with self.server.lock:
                keys = sorted(k for k in self.server.objects if k.startswith(prefix))
            self._reply(
                200, "\n".join(keys).encode("utf-8"), {"Content-Type": "text/plain"}
            )
            return
        with self.server.lock:
            data = self.server.objects.get(self._key())
        if data is None:
            self._reply(404, b"no such object")
            return
        range_header = self.headers.get("Range")
        if range_header and range_header.startswith("bytes="):
            start_text, _, end_text = range_header[len("bytes=") :].partition("-")
            start = int(start_text)
            end = int(end_text) if end_text else len(data) - 1
            chunk = data[start : end + 1]
            self._reply(
                206,
                chunk,
                {"Content-Range": f"bytes {start}-{start + len(chunk) - 1}/{len(data)}"},
            )
            return
        self._reply(200, data)

    def do_DELETE(self) -> None:
        if self._forced_failure():
            return
        with self.server.lock:
            self.server.objects.pop(self._key(), None)
        self._reply(204)


class _Server(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address):
        super().__init__(address, _ObjectRequestHandler)
        self.objects: Dict[str, bytes] = {}
        self.lock = threading.Lock()
        self._forced_failures: list = []

    def take_forced_failure(self) -> Optional[int]:
        with self.lock:
            if self._forced_failures:
                return self._forced_failures.pop(0)
        return None


class ObjectHTTPServer:
    """Lifecycle wrapper: ``with ObjectHTTPServer() as server:`` yields a
    running loopback server whose base URL is ``server.url``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self._address = (host, port)
        self._server: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        if self._server is None:
            raise RuntimeError("the object server is not running; call start()")
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def objects(self) -> Dict[str, bytes]:
        """The live object dict (read under the server's lock in handlers;
        tests may inspect it directly between requests)."""
        if self._server is None:
            raise RuntimeError("the object server is not running; call start()")
        return self._server.objects

    def object_count(self) -> int:
        return len(self.objects)

    def fail_next_with(self, status: int, n: int = 1) -> None:
        """Answer the next ``n`` requests with the given HTTP status."""
        with self._server.lock:
            self._server._forced_failures.extend([status] * n)

    def start(self) -> "ObjectHTTPServer":
        if self._server is not None:
            return self
        self._server = _Server(self._address)
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="object-http-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)
        self._server = None
        self._thread = None

    def __enter__(self) -> "ObjectHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()
