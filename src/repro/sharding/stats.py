"""Mergeable per-shard sufficient statistics.

The sharded engines never ship whole shards between pipeline stages;
they extract small, *mergeable* statistics per shard and reduce them:

* **pair groups** — for one ``(LHS, RHS)`` attribute pair, the nested map
  ``LHS value → RHS value → [global row ids]``.  This is the sufficient
  statistic of batch detection: constant rules need the rows per
  (matching LHS value, observed RHS value), and variable rules derive
  their cross-shard ``≡_Q`` blocks by projecting each distinct LHS value
  once.  Merging is nested dict union with list concatenation; because
  shards are reduced in row order, each ``(LHS value, RHS value)`` row
  list stays ascending.

* **shard tokenizations** — one shard's
  :class:`~repro.discovery.inverted_index.ColumnTokenization` rows.
  Merging is plain concatenation: global tuple ids are shard offset +
  local row, which is exactly the position the concatenated list puts
  them at, so the merged tokenization is byte-for-byte the monolithic
  single-pass extraction.

Both statistics are built from dicts of strings plus compact
``array('i')`` row-id sequences (see :mod:`repro.dataset.rowids`), so
they cross process boundaries cheaply when the shard fan-out runs on
``concurrent.futures`` workers — and stay small enough to hold for a
whole out-of-core run without approaching the materialized table's
footprint.

Both statistics are also **invertible**: because one shard's global row
ids form a contiguous range, a shard's contribution occupies a
contiguous slice of every merged row list (and a contiguous row range of
the merged tokenization).  :func:`unmerge_pair_groups` /
:func:`merge_into_pair_groups` and :func:`splice_tokenization` exploit
that to retract one shard's statistic and insert a replacement —
``merged = base − old_delta + new_delta`` — which is what lets the rule
maintainer (:mod:`repro.discovery.maintenance`) treat an edit batch from
the shard overlay as a *delta shard* instead of re-merging everything.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.constrained.constrained_pattern import ConstrainedPattern
from repro.dataset.rowids import RowIds, row_ids
from repro.detection.index import narrow_candidates_by_prefix
from repro.discovery.inverted_index import ColumnTokenization
from repro.kernels.match import batch_matching_values
from repro.kernels.runtime import kernels_enabled
from repro.patterns.pattern import Pattern
from repro.perf.memo import MatchMemo
from repro.pfd.tableau import Wildcard

#: LHS value → RHS value → ascending global row ids (``array('i')``).
PairGroups = Dict[str, Dict[str, RowIds]]


def extract_pair_groups(
    lhs_values: Sequence[str],
    rhs_values: Sequence[str],
    offset: int,
) -> PairGroups:
    """One shard's pair groups for one attribute pair, rows globalized by
    ``offset`` (one pass over the shard)."""
    groups: PairGroups = {}
    for local_row, (lhs_value, rhs_value) in enumerate(zip(lhs_values, rhs_values)):
        by_rhs = groups.get(lhs_value)
        if by_rhs is None:
            by_rhs = groups[lhs_value] = {}
        rows = by_rhs.get(rhs_value)
        if rows is None:
            by_rhs[rhs_value] = row_ids((offset + local_row,))
        else:
            rows.append(offset + local_row)
    return groups


def merge_pair_groups(shard_groups: Sequence[PairGroups]) -> "MergedPairGroups":
    """Reduce per-shard pair groups (in shard order) into one merged
    statistic.  Row lists concatenate ascending because every shard's
    global ids exceed the previous shard's."""
    merged: PairGroups = {}
    for groups in shard_groups:
        for lhs_value, by_rhs in groups.items():
            merged_rhs = merged.get(lhs_value)
            if merged_rhs is None:
                merged[lhs_value] = {
                    rhs_value: row_ids(rows) for rhs_value, rows in by_rhs.items()
                }
                continue
            for rhs_value, rows in by_rhs.items():
                existing = merged_rhs.get(rhs_value)
                if existing is None:
                    merged_rhs[rhs_value] = row_ids(rows)
                else:
                    existing.extend(rows)
    return MergedPairGroups(merged)


def unmerge_pair_groups(
    merged: "MergedPairGroups", shard_groups: PairGroups
) -> None:
    """Retract one shard's contribution from a merged statistic, in place.

    ``shard_groups`` must be the pair groups *as extracted from that
    shard* (same offset, same contents) — exactly what
    :func:`extract_pair_groups` produced when the shard was merged.
    Because a shard's global row ids are a contiguous range, its rows
    occupy a contiguous slice of each merged row list; the slice is cut
    out with two bisects, keeping the remaining lists ascending.  Groups
    emptied by the retraction are pruned (and ``sorted_values`` shrinks
    with them), so the result is indistinguishable from a merge that
    never saw the shard.
    """
    groups = merged.groups
    values_changed = False
    for lhs_value, by_rhs in shard_groups.items():
        merged_rhs = groups[lhs_value]
        for rhs_value, rows in by_rhs.items():
            existing = merged_rhs[rhs_value]
            lo = bisect_left(existing, rows[0])
            hi = bisect_right(existing, rows[-1], lo=lo)
            del existing[lo:hi]
            if not existing:
                del merged_rhs[rhs_value]
        if not merged_rhs:
            del groups[lhs_value]
            values_changed = True
    if values_changed:
        merged.sorted_values = sorted(groups)


def merge_into_pair_groups(
    merged: "MergedPairGroups", shard_groups: PairGroups
) -> None:
    """Insert one shard's contribution into a merged statistic, in place.

    The inverse of :func:`unmerge_pair_groups`: each row list lands as a
    contiguous slice at its bisected position (the shard's global-id
    range is disjoint from every other shard's), so row lists stay
    ascending and ``unmerge → merge_into`` round-trips to an equal
    statistic.  New distinct LHS values re-sort ``sorted_values``.
    """
    groups = merged.groups
    values_changed = False
    for lhs_value, by_rhs in shard_groups.items():
        merged_rhs = groups.get(lhs_value)
        if merged_rhs is None:
            groups[lhs_value] = {
                rhs_value: row_ids(rows) for rhs_value, rows in by_rhs.items()
            }
            values_changed = True
            continue
        for rhs_value, rows in by_rhs.items():
            existing = merged_rhs.get(rhs_value)
            if existing is None:
                merged_rhs[rhs_value] = row_ids(rows)
            else:
                position = bisect_left(existing, rows[0])
                existing[position:position] = row_ids(rows)
    if values_changed:
        merged.sorted_values = sorted(groups)


def splice_tokenization(
    merged: ColumnTokenization,
    start_row: int,
    old_rows: int,
    new_row_tokens: Sequence[Tuple[Tuple[str, int, str], ...]],
) -> ColumnTokenization:
    """Replace one shard's row range of a merged tokenization, in place.

    The tokenization analogue of unmerge + merge_into: rows
    ``[start_row, start_row + old_rows)`` — one shard's contribution,
    which concatenation placed exactly there — are retracted and the
    replacement shard's rows are spliced in.  Rows are tokenized
    independently, so the result equals re-extracting the whole column
    with the new shard contents.  Returns ``merged`` for chaining.
    """
    merged.row_tokens[start_row : start_row + old_rows] = list(new_row_tokens)
    return merged


class MergedPairGroups:
    """The cross-shard pair groups of one attribute pair, plus the sorted
    distinct-LHS-value array that answers pattern lookups."""

    __slots__ = ("groups", "sorted_values", "last_candidates_tested")

    def __init__(self, groups: PairGroups):
        self.groups = groups
        self.sorted_values: List[str] = sorted(groups)
        #: distinct values regex-tested by the last lookup (cost statistic)
        self.last_candidates_tested = 0

    @property
    def n_distinct(self) -> int:
        return len(self.sorted_values)

    def matching_values(
        self,
        lhs_cell,
        memo: MatchMemo,
        use_kernels: Optional[str] = None,
    ) -> List[str]:
        """Distinct LHS values satisfying a rule's LHS cell.

        Patterns are narrowed by literal prefix and memo-tested once per
        distinct value (the same verdict store the monolithic index
        uses); a plain-string cell is a dictionary hit; a wildcard cell
        matches everything (as ``cell_matches`` defines).  When the
        vectorized kernels are enabled, plain patterns run through the
        batch matcher (identical verdicts, same memo tables).
        """
        if isinstance(lhs_cell, Pattern) and kernels_enabled(use_kernels):
            candidates = narrow_candidates_by_prefix(self.sorted_values, lhs_cell)
            self.last_candidates_tested = len(candidates)
            return batch_matching_values(lhs_cell, candidates, memo=memo)
        if isinstance(lhs_cell, (Pattern, ConstrainedPattern)):
            candidates = narrow_candidates_by_prefix(self.sorted_values, lhs_cell)
            self.last_candidates_tested = len(candidates)
            matches = memo.matcher(lhs_cell)
            return [value for value in candidates if matches(value)]
        if isinstance(lhs_cell, Wildcard):
            self.last_candidates_tested = 0
            return list(self.sorted_values)
        self.last_candidates_tested = 1
        return [lhs_cell] if lhs_cell in self.groups else []


def merge_tokenizations(
    mode: str,
    ngram_size: int,
    shard_row_tokens: Sequence[Sequence[Tuple[Tuple[str, int, str], ...]]],
) -> ColumnTokenization:
    """Concatenate per-shard tokenization rows into the monolithic
    single-pass tokenization of the whole column."""
    row_tokens: List[Tuple[Tuple[str, int, str], ...]] = []
    for shard_rows in shard_row_tokens:
        row_tokens.extend(shard_rows)
    return ColumnTokenization(mode, ngram_size, row_tokens)


# -- tree reduction ----------------------------------------------------------------
#
# The left folds above reduce one shard at a time on the driver — fine
# for a handful of shards, serial coordination for hundreds.  The tree
# variants below reduce *adjacent* partials pairwise, level by level:
# adjacent partials cover adjacent contiguous global-row ranges, so
# every pairwise merge concatenates a strictly lower id range with a
# strictly higher one and row lists stay ascending at every level.
# Merging adjacent pairs is therefore order-insensitive with respect to
# the fold: the result is value-equal to the left fold over the same
# shards (proven by the randomized equivalence tests in
# tests/sharding/test_tree_merge.py).
#
# Level-0 inputs are never mutated — they may be cached per-shard
# artifacts (``TABLE_ARTIFACTS``, the worker pool's warm cache) —
# so the first merge touching a partial copies it; intermediate results
# are owned by the reduction and merged in place.  An optional
# ``merge_map`` hook (same shape as the engines' shard map) runs each
# level's independent pairwise merges through a fan-out.


def _merge_adjacent_pair_groups(payload) -> PairGroups:
    """Merge two adjacent pair-group partials (module-level so a process
    fan-out can pickle it).  ``owns_left`` says whether ``left`` is an
    intermediate the reduction owns (mutable) or a level-0 input (copy)."""
    left, right, owns_left = payload
    if owns_left:
        merged = left
    else:
        merged = {
            lhs_value: {rhs_value: row_ids(rows) for rhs_value, rows in by_rhs.items()}
            for lhs_value, by_rhs in left.items()
        }
    for lhs_value, by_rhs in right.items():
        merged_rhs = merged.get(lhs_value)
        if merged_rhs is None:
            merged[lhs_value] = {
                rhs_value: row_ids(rows) for rhs_value, rows in by_rhs.items()
            }
            continue
        for rhs_value, rows in by_rhs.items():
            existing = merged_rhs.get(rhs_value)
            if existing is None:
                merged_rhs[rhs_value] = row_ids(rows)
            else:
                existing.extend(rows)
    return merged


def _merge_adjacent_token_rows(payload) -> List[Tuple[Tuple[str, int, str], ...]]:
    """Concatenate two adjacent tokenization partials (tree analogue of
    the :func:`merge_tokenizations` fold step)."""
    left, right, owns_left = payload
    merged = left if owns_left else list(left)
    merged.extend(right)
    return merged


def _tree_reduce(partials: List, merge_adjacent, merge_map) -> Tuple[object, bool]:
    """Reduce partials pairwise until one remains.  Returns ``(result,
    owned)`` — ``owned`` is ``False`` only for a single-partial input,
    where the result still aliases the caller's level-0 data."""
    owned = [False] * len(partials)
    while len(partials) > 1:
        payloads = [
            (partials[i], partials[i + 1], owned[i])
            for i in range(0, len(partials) - 1, 2)
        ]
        if merge_map is not None and len(payloads) > 1:
            level = list(merge_map(merge_adjacent, payloads))
        else:
            level = [merge_adjacent(payload) for payload in payloads]
        next_owned = [True] * len(level)
        if len(partials) % 2:
            level.append(partials[-1])
            next_owned.append(owned[-1])
        partials, owned = level, next_owned
    return partials[0], owned[0]


def tree_merge_pair_groups(
    shard_groups: Sequence[PairGroups], merge_map=None
) -> "MergedPairGroups":
    """Tree-reduce per-shard pair groups (in shard order) into one merged
    statistic, value-equal to :func:`merge_pair_groups`.  The level-0
    partials are left untouched (they may be cached), and ``merge_map``
    optionally fans each level's independent pairwise merges out."""
    partials = list(shard_groups)
    if not partials:
        return MergedPairGroups({})
    result, owned = _tree_reduce(partials, _merge_adjacent_pair_groups, merge_map)
    if not owned:
        result = {
            lhs_value: {rhs_value: row_ids(rows) for rhs_value, rows in by_rhs.items()}
            for lhs_value, by_rhs in result.items()
        }
    return MergedPairGroups(result)


def tree_merge_tokenizations(
    mode: str,
    ngram_size: int,
    shard_row_tokens: Sequence[Sequence[Tuple[Tuple[str, int, str], ...]]],
    merge_map=None,
) -> ColumnTokenization:
    """Tree-reduce per-shard tokenization rows, value-equal to
    :func:`merge_tokenizations` (concatenation of adjacent ranges is
    associative; shard order is preserved at every level)."""
    partials = list(shard_row_tokens)
    if not partials:
        return ColumnTokenization(mode, ngram_size, [])
    result, owned = _tree_reduce(partials, _merge_adjacent_token_rows, merge_map)
    rows = result if owned else list(result)
    return ColumnTokenization(mode, ngram_size, rows)
