"""Mergeable per-shard sufficient statistics.

The sharded engines never ship whole shards between pipeline stages;
they extract small, *mergeable* statistics per shard and reduce them:

* **pair groups** — for one ``(LHS, RHS)`` attribute pair, the nested map
  ``LHS value → RHS value → [global row ids]``.  This is the sufficient
  statistic of batch detection: constant rules need the rows per
  (matching LHS value, observed RHS value), and variable rules derive
  their cross-shard ``≡_Q`` blocks by projecting each distinct LHS value
  once.  Merging is nested dict union with list concatenation; because
  shards are reduced in row order, each ``(LHS value, RHS value)`` row
  list stays ascending.

* **shard tokenizations** — one shard's
  :class:`~repro.discovery.inverted_index.ColumnTokenization` rows.
  Merging is plain concatenation: global tuple ids are shard offset +
  local row, which is exactly the position the concatenated list puts
  them at, so the merged tokenization is byte-for-byte the monolithic
  single-pass extraction.

Both statistics are built from dicts of strings plus compact
``array('i')`` row-id sequences (see :mod:`repro.dataset.rowids`), so
they cross process boundaries cheaply when the shard fan-out runs on
``concurrent.futures`` workers — and stay small enough to hold for a
whole out-of-core run without approaching the materialized table's
footprint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.constrained.constrained_pattern import ConstrainedPattern
from repro.dataset.rowids import RowIds, row_ids
from repro.detection.index import narrow_candidates_by_prefix
from repro.discovery.inverted_index import ColumnTokenization
from repro.kernels.match import batch_matching_values
from repro.kernels.runtime import kernels_enabled
from repro.patterns.pattern import Pattern
from repro.perf.memo import MatchMemo
from repro.pfd.tableau import Wildcard

#: LHS value → RHS value → ascending global row ids (``array('i')``).
PairGroups = Dict[str, Dict[str, RowIds]]


def extract_pair_groups(
    lhs_values: Sequence[str],
    rhs_values: Sequence[str],
    offset: int,
) -> PairGroups:
    """One shard's pair groups for one attribute pair, rows globalized by
    ``offset`` (one pass over the shard)."""
    groups: PairGroups = {}
    for local_row, (lhs_value, rhs_value) in enumerate(zip(lhs_values, rhs_values)):
        by_rhs = groups.get(lhs_value)
        if by_rhs is None:
            by_rhs = groups[lhs_value] = {}
        rows = by_rhs.get(rhs_value)
        if rows is None:
            by_rhs[rhs_value] = row_ids((offset + local_row,))
        else:
            rows.append(offset + local_row)
    return groups


def merge_pair_groups(shard_groups: Sequence[PairGroups]) -> "MergedPairGroups":
    """Reduce per-shard pair groups (in shard order) into one merged
    statistic.  Row lists concatenate ascending because every shard's
    global ids exceed the previous shard's."""
    merged: PairGroups = {}
    for groups in shard_groups:
        for lhs_value, by_rhs in groups.items():
            merged_rhs = merged.get(lhs_value)
            if merged_rhs is None:
                merged[lhs_value] = {
                    rhs_value: row_ids(rows) for rhs_value, rows in by_rhs.items()
                }
                continue
            for rhs_value, rows in by_rhs.items():
                existing = merged_rhs.get(rhs_value)
                if existing is None:
                    merged_rhs[rhs_value] = row_ids(rows)
                else:
                    existing.extend(rows)
    return MergedPairGroups(merged)


class MergedPairGroups:
    """The cross-shard pair groups of one attribute pair, plus the sorted
    distinct-LHS-value array that answers pattern lookups."""

    __slots__ = ("groups", "sorted_values", "last_candidates_tested")

    def __init__(self, groups: PairGroups):
        self.groups = groups
        self.sorted_values: List[str] = sorted(groups)
        #: distinct values regex-tested by the last lookup (cost statistic)
        self.last_candidates_tested = 0

    @property
    def n_distinct(self) -> int:
        return len(self.sorted_values)

    def matching_values(
        self,
        lhs_cell,
        memo: MatchMemo,
        use_kernels: Optional[str] = None,
    ) -> List[str]:
        """Distinct LHS values satisfying a rule's LHS cell.

        Patterns are narrowed by literal prefix and memo-tested once per
        distinct value (the same verdict store the monolithic index
        uses); a plain-string cell is a dictionary hit; a wildcard cell
        matches everything (as ``cell_matches`` defines).  When the
        vectorized kernels are enabled, plain patterns run through the
        batch matcher (identical verdicts, same memo tables).
        """
        if isinstance(lhs_cell, Pattern) and kernels_enabled(use_kernels):
            candidates = narrow_candidates_by_prefix(self.sorted_values, lhs_cell)
            self.last_candidates_tested = len(candidates)
            return batch_matching_values(lhs_cell, candidates, memo=memo)
        if isinstance(lhs_cell, (Pattern, ConstrainedPattern)):
            candidates = narrow_candidates_by_prefix(self.sorted_values, lhs_cell)
            self.last_candidates_tested = len(candidates)
            matches = memo.matcher(lhs_cell)
            return [value for value in candidates if matches(value)]
        if isinstance(lhs_cell, Wildcard):
            self.last_candidates_tested = 0
            return list(self.sorted_values)
        self.last_candidates_tested = 1
        return [lhs_cell] if lhs_cell in self.groups else []


def merge_tokenizations(
    mode: str,
    ngram_size: int,
    shard_row_tokens: Sequence[Sequence[Tuple[Tuple[str, int, str], ...]]],
) -> ColumnTokenization:
    """Concatenate per-shard tokenization rows into the monolithic
    single-pass tokenization of the whole column."""
    row_tokens: List[Tuple[Tuple[str, int, str], ...]] = []
    for shard_rows in shard_row_tokens:
        row_tokens.extend(shard_rows)
    return ColumnTokenization(mode, ngram_size, row_tokens)
