"""Sharded, out-of-core discovery and detection.

The sharding subsystem partitions a dataset into row shards
(:class:`ShardedTable`), extracts mergeable per-shard sufficient
statistics (:mod:`repro.sharding.stats`), and runs discovery
(:class:`ShardedDiscoverer`) and detection (:class:`ShardedDetector`)
over the merged statistics — producing rule sets and violations
canonically equal to a monolithic run while keeping every per-shard
stage bounded by the shard size and fan-out-ready for worker processes.
"""

from repro.sharding.detection import SHARDED_STRATEGY, ShardedDetector
from repro.sharding.discovery import ShardedDiscoverer
from repro.sharding.object_store import (
    LocalObjectClient,
    ObjectShardStore,
    ObjectStoreError,
)
from repro.sharding.remote import (
    FAULT_KINDS,
    FaultInjectingClient,
    HttpObjectClient,
    ObjectChecksumError,
    RetryPolicy,
)
from repro.sharding.overlay import OverlayShardStore, ShardOverlay
from repro.sharding.prefetch import PrefetchingFetcher
from repro.sharding.sharded_table import ShardedTable
from repro.sharding.stats import (
    MergedPairGroups,
    extract_pair_groups,
    merge_into_pair_groups,
    merge_pair_groups,
    merge_tokenizations,
    splice_tokenization,
    tree_merge_pair_groups,
    tree_merge_tokenizations,
    unmerge_pair_groups,
)
from repro.sharding.store import (
    STORE_KINDS,
    InMemoryShardStore,
    ShardStore,
    SpillToDiskShardStore,
    make_shard_store,
)

__all__ = [
    "SHARDED_STRATEGY",
    "STORE_KINDS",
    "ShardedDetector",
    "ShardedDiscoverer",
    "ShardedTable",
    "ShardStore",
    "ShardOverlay",
    "OverlayShardStore",
    "InMemoryShardStore",
    "SpillToDiskShardStore",
    "LocalObjectClient",
    "ObjectShardStore",
    "ObjectStoreError",
    "ObjectChecksumError",
    "FAULT_KINDS",
    "FaultInjectingClient",
    "HttpObjectClient",
    "RetryPolicy",
    "MergedPairGroups",
    "PrefetchingFetcher",
    "extract_pair_groups",
    "merge_pair_groups",
    "merge_into_pair_groups",
    "unmerge_pair_groups",
    "merge_tokenizations",
    "splice_tokenization",
    "tree_merge_pair_groups",
    "tree_merge_tokenizations",
    "make_shard_store",
]
