"""An object-store-style :class:`~repro.sharding.store.ShardStore` backend.

Shards are serialized to CSV *objects* addressed by string keys through a
minimal get/put/list/delete client API — the shape of S3-alike blob
stores.  Two clients ship today: :class:`LocalObjectClient` keeps objects
as files under a local root, and
:class:`~repro.sharding.remote.HttpObjectClient` speaks the same
contract over HTTP (S3-compatible-style PUT/GET/DELETE plus Range
reads).

On top of the raw byte transport the store adds the things a remote
medium needs that local spill files do not:

* **checksums** — every object is written alongside its SHA-256 digest
  and verified on read, so a torn or bit-rotted object is an error, not
  silently wrong data; a mismatch raises
  :class:`~repro.sharding.remote.ObjectChecksumError` carrying the
  object key and both digests.
* **retries** — reads *and writes* go through one shared
  :class:`~repro.sharding.remote.RetryPolicy` (bounded attempts,
  exponential backoff with seeded jitter, idempotent operations only —
  which every full-object put/get/delete is), so a transiently failing
  put no longer loses the shard and poisons the upload.
* **cleanup on error paths** — a put that exhausts its retries deletes
  the possibly-partial object before surfacing, and :meth:`close`
  releases the object root (and, for stores that own their remote
  namespace, the uploaded objects) even when called off an error path.

Like :class:`~repro.sharding.store.SpillToDiskShardStore`, re-parsed
cell strings are interned per store and a small LRU bounds how many
shards stay resident.
"""

from __future__ import annotations

import csv
import hashlib
import io
import shutil
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.dataset.table import Table
from repro.errors import TableError
from repro.perf.interning import InternPool
from repro.perf.timers import StageTimers
from repro.sharding.prefetch import PrefetchingFetcher
from repro.sharding.remote import (
    FaultInjectingClient,
    HttpObjectClient,
    ObjectChecksumError,
    ObjectStoreError,
    RetryPolicy,
    validate_key,
)
from repro.sharding.store import ShardStore

__all__ = [
    "LocalObjectClient",
    "ObjectShardStore",
    "ObjectStoreError",
    "ObjectChecksumError",
    "FaultInjectingClient",
    "HttpObjectClient",
    "RetryPolicy",
]


class LocalObjectClient:
    """Filesystem-backed object client: keys are paths under one root.

    The API is deliberately the minimal blob-store surface —
    ``put(key, data)``, ``get(key)``, ``get_range(key, start, length)``,
    ``list(prefix)``, ``delete(key)`` — so the remote
    :class:`~repro.sharding.remote.HttpObjectClient` is a drop-in.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if root is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-objects-")
            root = self._tmpdir.name
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / validate_key(key)

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(data)
        except OSError as exc:
            raise ObjectStoreError(
                f"object {key!r} could not be written: {exc}", key=key
            ) from exc

    def get(self, key: str) -> bytes:
        path = self._path(key)
        try:
            return path.read_bytes()
        except OSError as exc:
            raise ObjectStoreError(
                f"object {key!r} could not be read: {exc}", key=key
            ) from exc

    def get_range(self, key: str, start: int, length: int) -> bytes:
        return self.get(key)[start : start + length]

    def list(self, prefix: str = "") -> List[str]:
        keys = []
        for path in self.root.rglob("*"):
            if path.is_file():
                key = path.relative_to(self.root).as_posix()
                if key.startswith(prefix):
                    keys.append(key)
        return sorted(keys)

    def delete(self, key: str) -> None:
        path = self._path(key)
        try:
            path.unlink()
        except FileNotFoundError:
            pass
        except OSError as exc:
            raise ObjectStoreError(
                f"object {key!r} could not be deleted: {exc}", key=key
            ) from exc

    def close(self) -> None:
        """Remove the private temporary root (idempotent; never raises —
        a cleanup failure on an error path must not mask the original
        error, so stragglers are swept with ``ignore_errors``)."""
        if self._tmpdir is not None:
            tmpdir, self._tmpdir = self._tmpdir, None
            try:
                tmpdir.cleanup()
            except OSError:
                shutil.rmtree(tmpdir.name, ignore_errors=True)


class ObjectShardStore(ShardStore):
    """Shards as checksummed CSV objects behind an object client.

    Parameters
    ----------
    client:
        The object client to store shards through
        (:class:`LocalObjectClient`,
        :class:`~repro.sharding.remote.HttpObjectClient`, or a
        :class:`~repro.sharding.remote.FaultInjectingClient` wrapper).
        ``None`` builds a :class:`LocalObjectClient` over ``root``
        (itself defaulting to a private temporary directory removed on
        :meth:`close`).
    root:
        Local root for the default client; ignored when ``client`` is
        given.
    prefix:
        Key prefix for this dataset's shard objects.
    cache_shards:
        How many recently read shards stay parsed in memory.
    max_read_attempts:
        Shorthand for ``retry_policy=RetryPolicy(max_attempts=...)``;
        ignored when an explicit ``retry_policy`` is given.
    retry_policy:
        The shared :class:`~repro.sharding.remote.RetryPolicy` both
        reads and writes run under.
    owns_client:
        Whether :meth:`close` closes the client too.  Defaults to
        owning exactly the client the store built itself; pass ``True``
        when handing over a client the store should tear down.
    delete_objects_on_close:
        Whether :meth:`close` deletes this store's objects from the
        client (best-effort).  Defaults to ``True`` for an owned
        non-local client — a remote namespace has no temporary
        directory whose removal would reclaim the bytes — and ``False``
        otherwise.
    prefetch_depth:
        How many shard objects ahead of a read to fetch (GET + checksum
        verification, retries included) on background threads via
        :class:`~repro.sharding.prefetch.PrefetchingFetcher`.  ``0``
        (the default) reads sequentially on the caller's thread.
    timers:
        :class:`~repro.perf.timers.StageTimers` receiving the
        ``fetch_wait``/``prefetch_hit`` stages; a private instance is
        created when omitted (exposed as :attr:`timers` either way).
    """

    def __init__(
        self,
        client=None,
        root: Union[str, Path, None] = None,
        prefix: str = "shards",
        cache_shards: int = 1,
        max_read_attempts: int = 3,
        retry_policy: Optional[RetryPolicy] = None,
        owns_client: Optional[bool] = None,
        delete_objects_on_close: Optional[bool] = None,
        prefetch_depth: int = 0,
        timers: Optional[StageTimers] = None,
    ):
        super().__init__()
        if cache_shards < 1:
            raise TableError(f"cache_shards must be >= 1, got {cache_shards}")
        if max_read_attempts < 1:
            raise TableError(f"max_read_attempts must be >= 1, got {max_read_attempts}")
        if prefetch_depth < 0:
            raise TableError(f"prefetch_depth must be >= 0, got {prefetch_depth}")
        self._owns_client = (client is None) if owns_client is None else owns_client
        self.client = client if client is not None else LocalObjectClient(root)
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(max_attempts=max_read_attempts)
        )
        if delete_objects_on_close is None:
            delete_objects_on_close = self._owns_client and not isinstance(
                self.client, LocalObjectClient
            )
        self._delete_objects_on_close = delete_objects_on_close
        self.prefix = prefix.rstrip("/")
        self._cache_shards = cache_shards
        #: per-shard (key, row count, version-at-append, sha256 hexdigest)
        self._meta: List[Tuple[str, int, int, str]] = []
        self._loaded: "OrderedDict[int, Table]" = OrderedDict()
        self._interned = InternPool()
        #: read/write attempts beyond the first, for observability/tests
        self.retried_reads = 0
        self.retried_puts = 0
        self.timers = timers if timers is not None else StageTimers()
        self._prefetcher: Optional[PrefetchingFetcher] = (
            PrefetchingFetcher(self._fetch_verified, prefetch_depth, self.timers)
            if prefetch_depth > 0
            else None
        )

    # -- serialization -----------------------------------------------------------

    def _key(self, index: int) -> str:
        return f"{self.prefix}/shard_{index:06d}.csv"

    @staticmethod
    def _serialize(shard: Table) -> bytes:
        buffer = io.StringIO(newline="")
        writer = csv.writer(buffer)
        for row in shard.iter_rows():
            writer.writerow(row)
        return buffer.getvalue().encode("utf-8")

    def _parse(self, index: int, key: str, data: bytes, n_rows: int) -> Table:
        width = len(self.schema)
        columns: List[List[str]] = [[] for _ in range(width)]
        intern = self._interned.intern
        reader = csv.reader(io.StringIO(data.decode("utf-8"), newline=""))
        for row in reader:
            if len(row) != width:
                raise TableError(
                    f"object {key} line {reader.line_num} has "
                    f"{len(row)} fields, expected {width} (corrupted?)"
                )
            for column, value in zip(columns, row):
                column.append(intern(value))
        shard = Table(self.schema, columns)
        if shard.n_rows != n_rows:
            raise TableError(
                f"shard object {index} read back {shard.n_rows} rows, "
                f"expected {n_rows} (object corrupted?)"
            )
        return shard

    # -- the storage contract ----------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._meta)

    def append(self, shard: Table) -> None:
        self._check_schema(shard)
        key = self._key(len(self._meta))
        data = self._serialize(shard)
        digest = hashlib.sha256(data).hexdigest()

        def _count_put_retry(_exc: ObjectStoreError) -> None:
            self.retried_puts += 1

        try:
            # a full-object put is idempotent (same key, same bytes), so
            # a transient failure is retried instead of losing the shard
            self.retry_policy.run(
                lambda: self.client.put(key, data),
                what=f"shard object {key} upload failed",
                on_retry=_count_put_retry,
            )
        except ObjectStoreError:
            # don't leave a possibly-partial object behind the store's back
            try:
                self.client.delete(key)
            except ObjectStoreError:
                pass
            raise
        self._meta.append((key, shard.n_rows, shard.version, digest))

    def shard_row_counts(self) -> List[int]:
        return [n_rows for _key, n_rows, _version, _digest in self._meta]

    def _fetch_verified(self, index: int) -> bytes:
        """Blocking fetch of one shard object: GET + SHA-256 verify
        under the shared retry policy.  Thread-safe (the prefetcher
        calls it from its fetch threads); retry backoff sleeps happen
        on the calling thread."""
        key, _n_rows, _version, digest = self._meta[index]

        def _download() -> bytes:
            data = self.client.get(key)
            actual = hashlib.sha256(data).hexdigest()
            if actual != digest:
                raise ObjectChecksumError(key, expected=digest, actual=actual)
            return data

        def _count_read_retry(_exc: ObjectStoreError) -> None:
            self.retried_reads += 1

        return self.retry_policy.run(
            _download,
            what=f"shard object {key} unreadable",
            on_retry=_count_read_retry,
        )

    @property
    def prefetch_hits(self) -> int:
        """Shards whose bytes were already prefetched when read (``0``
        without a prefetcher)."""
        return self._prefetcher.prefetch_hits if self._prefetcher is not None else 0

    def get(self, index: int) -> Table:
        cached = self._loaded.get(index)
        if cached is not None:
            self._loaded.move_to_end(index)
            return cached
        key, n_rows, _version, _digest = self._meta[index]
        if self._prefetcher is not None:
            data = self._prefetcher.get(index, self.n_shards)
        else:
            with self.timers.stage("fetch_wait"):
                data = self._fetch_verified(index)
        shard = self._parse(index, key, data, n_rows)
        self._loaded[index] = shard
        while len(self._loaded) > self._cache_shards:
            self._loaded.popitem(last=False)
        return shard

    def versions(self) -> Tuple[int, ...]:
        # objects are frozen at append time, like spill files
        return tuple(version for _key, _n_rows, version, _digest in self._meta)

    def close(self) -> None:
        """Release everything the store holds: the shard LRU, the intern
        pool, this dataset's objects (when the store owns its remote
        namespace) and the client itself (when owned).  Safe to call off
        an error path mid-upload — cleanup failures never mask the
        original error — and idempotent."""
        if self._prefetcher is not None:
            # join the fetch threads before touching the client or the
            # objects they may still be reading
            self._prefetcher.close()
        self._loaded.clear()
        self._interned.clear()
        try:
            if self._delete_objects_on_close:
                for key, _n_rows, _version, _digest in self._meta:
                    try:
                        # deletes are idempotent, so transient faults are
                        # retried like any other operation — a flaky
                        # backend must not leak the namespace
                        self.retry_policy.run(
                            lambda key=key: self.client.delete(key),
                            what=f"shard object {key} cleanup failed",
                        )
                    except ObjectStoreError:
                        pass  # best-effort: never raise out of close()
                self._meta = []
        finally:
            if self._owns_client:
                self.client.close()
