"""An object-store-style :class:`~repro.sharding.store.ShardStore` backend.

Shards are serialized to CSV *objects* addressed by string keys through a
minimal get/put/list client API — the shape of S3-alike blob stores — so
the only thing a remote backend needs to provide later is another
:class:`ObjectClient`.  The client shipped today,
:class:`LocalObjectClient`, keeps objects as files under a local root.

On top of the raw byte transport the store adds the two things a remote
medium needs that local spill files do not:

* **checksums** — every object is written alongside its SHA-256 digest
  and verified on read, so a torn or bit-rotted object is an error, not
  silently wrong data;
* **read retries** — a failed read (checksum mismatch or client error)
  is retried a bounded number of times before surfacing, the standard
  posture against transiently inconsistent object reads.

Like :class:`~repro.sharding.store.SpillToDiskShardStore`, re-parsed
cell strings are interned per store and a small LRU bounds how many
shards stay resident.
"""

from __future__ import annotations

import csv
import hashlib
import io
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.dataset.table import Table
from repro.errors import TableError
from repro.perf.interning import InternPool
from repro.sharding.store import ShardStore


class ObjectStoreError(TableError):
    """A get/put/list operation against the object client failed."""


class LocalObjectClient:
    """Filesystem-backed object client: keys are paths under one root.

    The API is deliberately the minimal blob-store surface —
    ``put(key, data)``, ``get(key)``, ``list(prefix)``,
    ``delete(key)`` — so swapping in a remote client later is a
    drop-in.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if root is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-objects-")
            root = self._tmpdir.name
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        if not key or key.startswith(("/", ".")) or ".." in key.split("/"):
            raise ObjectStoreError(f"invalid object key {key!r}")
        return self.root / key

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(data)

    def get(self, key: str) -> bytes:
        path = self._path(key)
        try:
            return path.read_bytes()
        except OSError as exc:
            raise ObjectStoreError(f"object {key!r} could not be read: {exc}") from exc

    def list(self, prefix: str = "") -> List[str]:
        keys = []
        for path in self.root.rglob("*"):
            if path.is_file():
                key = path.relative_to(self.root).as_posix()
                if key.startswith(prefix):
                    keys.append(key)
        return sorted(keys)

    def delete(self, key: str) -> None:
        path = self._path(key)
        try:
            path.unlink()
        except FileNotFoundError:
            pass

    def close(self) -> None:
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None


class ObjectShardStore(ShardStore):
    """Shards as checksummed CSV objects behind an :class:`ObjectClient`.

    Parameters
    ----------
    client:
        The object client to store shards through.  ``None`` builds a
        :class:`LocalObjectClient` over ``root`` (itself defaulting to a
        private temporary directory removed on :meth:`close`).
    root:
        Local root for the default client; ignored when ``client`` is
        given.
    prefix:
        Key prefix for this dataset's shard objects.
    cache_shards:
        How many recently read shards stay parsed in memory.
    max_read_attempts:
        Total read attempts per shard before a corrupt/unreadable object
        surfaces as a :class:`TableError`.
    """

    def __init__(
        self,
        client: Optional[LocalObjectClient] = None,
        root: Union[str, Path, None] = None,
        prefix: str = "shards",
        cache_shards: int = 1,
        max_read_attempts: int = 3,
    ):
        super().__init__()
        if cache_shards < 1:
            raise TableError(f"cache_shards must be >= 1, got {cache_shards}")
        if max_read_attempts < 1:
            raise TableError(f"max_read_attempts must be >= 1, got {max_read_attempts}")
        self._owns_client = client is None
        self.client = client if client is not None else LocalObjectClient(root)
        self.prefix = prefix.rstrip("/")
        self._cache_shards = cache_shards
        self._max_read_attempts = max_read_attempts
        #: per-shard (key, row count, version-at-append, sha256 hexdigest)
        self._meta: List[Tuple[str, int, int, str]] = []
        self._loaded: "OrderedDict[int, Table]" = OrderedDict()
        self._interned = InternPool()
        #: read attempts beyond the first, for observability/tests
        self.retried_reads = 0

    # -- serialization -----------------------------------------------------------

    def _key(self, index: int) -> str:
        return f"{self.prefix}/shard_{index:06d}.csv"

    @staticmethod
    def _serialize(shard: Table) -> bytes:
        buffer = io.StringIO(newline="")
        writer = csv.writer(buffer)
        for row in shard.iter_rows():
            writer.writerow(row)
        return buffer.getvalue().encode("utf-8")

    def _parse(self, index: int, key: str, data: bytes, n_rows: int) -> Table:
        width = len(self.schema)
        columns: List[List[str]] = [[] for _ in range(width)]
        intern = self._interned.intern
        reader = csv.reader(io.StringIO(data.decode("utf-8"), newline=""))
        for row in reader:
            if len(row) != width:
                raise TableError(
                    f"object {key} line {reader.line_num} has "
                    f"{len(row)} fields, expected {width} (corrupted?)"
                )
            for column, value in zip(columns, row):
                column.append(intern(value))
        shard = Table(self.schema, columns)
        if shard.n_rows != n_rows:
            raise TableError(
                f"shard object {index} read back {shard.n_rows} rows, "
                f"expected {n_rows} (object corrupted?)"
            )
        return shard

    # -- the storage contract ----------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._meta)

    def append(self, shard: Table) -> None:
        self._check_schema(shard)
        key = self._key(len(self._meta))
        data = self._serialize(shard)
        digest = hashlib.sha256(data).hexdigest()
        self.client.put(key, data)
        self._meta.append((key, shard.n_rows, shard.version, digest))

    def shard_row_counts(self) -> List[int]:
        return [n_rows for _key, n_rows, _version, _digest in self._meta]

    def get(self, index: int) -> Table:
        cached = self._loaded.get(index)
        if cached is not None:
            self._loaded.move_to_end(index)
            return cached
        key, n_rows, _version, digest = self._meta[index]
        last_error: Optional[Exception] = None
        data: Optional[bytes] = None
        for attempt in range(self._max_read_attempts):
            if attempt:
                self.retried_reads += 1
            try:
                candidate = self.client.get(key)
            except ObjectStoreError as exc:
                last_error = exc
                continue
            if hashlib.sha256(candidate).hexdigest() != digest:
                last_error = TableError(
                    f"object {key} failed its checksum (expected sha256 {digest[:12]}…)"
                )
                continue
            data = candidate
            break
        if data is None:
            raise TableError(
                f"shard object {key} unreadable after "
                f"{self._max_read_attempts} attempts: {last_error}"
            )
        shard = self._parse(index, key, data, n_rows)
        self._loaded[index] = shard
        while len(self._loaded) > self._cache_shards:
            self._loaded.popitem(last=False)
        return shard

    def versions(self) -> Tuple[int, ...]:
        # objects are frozen at append time, like spill files
        return tuple(version for _key, _n_rows, version, _digest in self._meta)

    def close(self) -> None:
        self._loaded.clear()
        self._interned.clear()
        if self._owns_client:
            self.client.close()
