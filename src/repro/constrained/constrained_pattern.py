"""Constrained patterns: segmented patterns with constrained projections.

Example (λ4 of the paper): ``\\LU\\LL*\\ \\A*`` on a name attribute with
the leading ``\\LU\\LL*\\ `` segment constrained.  The embedded pattern
matches any capitalized first name followed by anything; the constrained
projection of ``"John Charles"`` is ``("John ",)`` so two tuples whose
names start with the same first name are ``≡_Q``-equivalent.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConstraintError
from repro.patterns.pattern import Pattern
from repro.patterns.syntax import ClassAtom, Element, Literal, ONE, Quantifier


@dataclass(frozen=True)
class Segment:
    """One segment of a constrained pattern."""

    pattern: Pattern
    constrained: bool = False

    def to_text(self) -> str:
        text = self.pattern.to_text()
        if self.constrained:
            return "⟨" + text + "⟩"
        return text


class ConstrainedPattern:
    """A concatenation of pattern segments, at least one constrained.

    The textual form marks constrained segments with angle brackets,
    e.g. ``⟨\\LU\\LL*\\ ⟩\\A*``; :meth:`parse` accepts that syntax.
    """

    def __init__(self, segments: Sequence[Segment]):
        segments = list(segments)
        if not segments:
            raise ConstraintError("a constrained pattern needs at least one segment")
        if not any(s.constrained for s in segments):
            raise ConstraintError(
                "a constrained pattern must mark at least one segment as constrained"
            )
        self._segments: Tuple[Segment, ...] = tuple(segments)
        self._hash: Optional[int] = None
        self._regex = self._compile()

    # -- constructors ----------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "ConstrainedPattern":
        """Parse the angle-bracket syntax, e.g. ``⟨\\D{3}⟩\\ \\D{2}``.

        ASCII ``<`` / ``>`` are also accepted so constrained patterns can
        be written without Unicode input.
        """
        normalized = text.replace("<", "⟨").replace(">", "⟩")
        segments: List[Segment] = []
        buffer = ""
        constrained = False
        i = 0
        while i < len(normalized):
            char = normalized[i]
            if char == "⟨":
                if constrained:
                    raise ConstraintError(f"nested constrained segment in {text!r}")
                if buffer:
                    segments.append(Segment(Pattern.parse(buffer), False))
                    buffer = ""
                constrained = True
            elif char == "⟩":
                if not constrained:
                    raise ConstraintError(f"unbalanced '⟩' in {text!r}")
                segments.append(Segment(Pattern.parse(buffer), True))
                buffer = ""
                constrained = False
            else:
                buffer += char
            i += 1
        if constrained:
            raise ConstraintError(f"unterminated constrained segment in {text!r}")
        if buffer:
            segments.append(Segment(Pattern.parse(buffer), False))
        return cls(segments)

    @classmethod
    def whole_value(cls, pattern: Pattern) -> "ConstrainedPattern":
        """A constrained pattern whose single segment is the whole value."""
        return cls([Segment(pattern, True)])

    # -- structure -------------------------------------------------------------

    @property
    def segments(self) -> Tuple[Segment, ...]:
        return self._segments

    @property
    def constrained_segments(self) -> List[Segment]:
        return [s for s in self._segments if s.constrained]

    def embedded_pattern(self) -> Pattern:
        """The pattern obtained by dropping the constraint annotations."""
        combined = Pattern([])
        for segment in self._segments:
            combined = combined.concat(segment.pattern)
        return combined

    def to_text(self) -> str:
        return "".join(s.to_text() for s in self._segments)

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConstrainedPattern({self.to_text()!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstrainedPattern):
            return NotImplemented
        return self._segments == other._segments

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = self._hash = hash(self._segments)
        return value

    # -- matching & projection ----------------------------------------------------

    def _compile(self) -> "re.Pattern[str]":
        # Compilation is shared process-wide: equal segment tuples (equal
        # constrained patterns, however constructed) compile exactly once.
        from repro.perf.pattern_cache import constrained_regex_for

        return constrained_regex_for(self._segments)

    def matches(self, value: str) -> bool:
        """``s ↦ Q``: the value matches the embedded pattern."""
        return self._regex.fullmatch(value) is not None

    def project(self, value: str) -> Optional[Tuple[str, ...]]:
        """The constrained projection ``s(Q)`` or None when no match.

        Python's regex engine resolves the (rare) ambiguity between
        adjacent unbounded segments greedily from the left, which gives a
        deterministic, documented projection.
        """
        match = self._regex.fullmatch(value)
        if match is None:
            return None
        return tuple(match.groups())

    def equivalent(self, left: str, right: str) -> bool:
        """``left ≡_Q right``: both match and their projections agree."""
        left_projection = self.project(left)
        if left_projection is None:
            return False
        right_projection = self.project(right)
        if right_projection is None:
            return False
        return left_projection == right_projection

    def blocking_key(self, value: str) -> Optional[Tuple[str, ...]]:
        """Key used to block tuples during variable-PFD detection.

        Identical to :meth:`project`; exposed under a separate name so
        detection code reads naturally.
        """
        return self.project(value)


# -- convenience factories used by discovery ---------------------------------------


def constrained_prefix(
    prefix_length: int,
    remainder: Pattern,
    head: Optional[Pattern] = None,
) -> ConstrainedPattern:
    """A constrained pattern fixing the first ``prefix_length`` characters.

    The constrained segment defaults to ``\\A{prefix_length}`` (any
    characters, but the *same* characters across equivalent values); when
    the callers knows the prefix shape it can pass ``head`` — e.g. λ5's
    ``⟨\\D{3}⟩\\D{2}`` for zip codes uses a ``\\D{3}`` head.
    """
    if prefix_length <= 0:
        raise ConstraintError("prefix length must be positive")
    from repro.patterns.alphabet import CharClass

    if head is None:
        head = Pattern(
            [Element(ClassAtom(CharClass.ANY), Quantifier(prefix_length, prefix_length))]
        )
    return ConstrainedPattern([Segment(head, True), Segment(remainder, False)])


def constrained_first_token(rest: Optional[Pattern] = None) -> ConstrainedPattern:
    """λ4-style constrained pattern: first word constrained, rest free.

    The constrained segment is ``\\LU\\LL*\\ `` (a capitalized word and
    the following space); the unconstrained remainder defaults to
    ``\\A*``.
    """
    from repro.patterns.alphabet import CharClass

    head = Pattern(
        [
            Element(ClassAtom(CharClass.UPPER), ONE),
            Element(ClassAtom(CharClass.LOWER), Quantifier(0, None)),
            Element(Literal(" "), ONE),
        ]
    )
    tail = rest if rest is not None else Pattern.any_string()
    return ConstrainedPattern([Segment(head, True), Segment(tail, False)])


def constrained_word_sequence(
    word_patterns: Sequence[Pattern],
    constrained_index: int,
    trailing_any: bool = True,
) -> ConstrainedPattern:
    """Constrain one word of a space-separated word-pattern sequence.

    ``word_patterns`` are patterns for the individual tokens (typically
    generalized from observed tokens, e.g. ``\\LU\\LL+\\S`` for
    ``"Holloway,"``); the token at ``constrained_index`` becomes the
    constrained segment and a trailing ``\\A*`` absorbs any further
    tokens.  This is the λ4-family generator used by discovery for
    multi-token attributes such as full names.
    """
    if not word_patterns:
        raise ConstraintError("need at least one word pattern")
    if not 0 <= constrained_index < len(word_patterns):
        raise ConstraintError(
            f"constrained index {constrained_index} out of range for "
            f"{len(word_patterns)} word patterns"
        )
    space = Pattern([Element(Literal(" "), ONE)])
    segments: List[Segment] = []
    for i, word in enumerate(word_patterns):
        if i > 0:
            segments.append(Segment(space, False))
        segments.append(Segment(word, i == constrained_index))
    if trailing_any:
        segments.append(Segment(Pattern.parse("\\A*"), False))
    return ConstrainedPattern(segments)
