"""Constrained patterns (Section 2 of the paper).

A constrained pattern ``Q`` concatenates several pattern segments, at
least one of which is *constrained* (annotated with ``X`` in the paper).
Matching a constrained pattern is matching its embedded pattern; two
strings are equivalent under ``Q`` (``s ≡_Q s'``) when both match and
their constrained-segment projections agree.  Variable PFDs use this
equivalence to say "tuples that agree on *this part* of the LHS value
must agree on the RHS".
"""

from repro.constrained.constrained_pattern import (
    ConstrainedPattern,
    Segment,
    constrained_first_token,
    constrained_prefix,
)
from repro.constrained.restriction import is_restriction_of

__all__ = [
    "ConstrainedPattern",
    "Segment",
    "constrained_first_token",
    "constrained_prefix",
    "is_restriction_of",
]
