"""The restriction relation between constrained patterns.

The paper defines ``Q ⊆ Q'`` ("Q is a restricted pattern of Q'") as: for
any two strings ``s, s'``, ``s ≡_Q s'`` implies ``s ≡_{Q'} s'``.  In
other words the equivalence induced by Q refines the one induced by Q'.

Deciding this for arbitrary segmentations would require reasoning about
all string pairs, so :func:`is_restriction_of` implements a *sound*
structural test covering the pattern families the system actually
produces (and the paper's examples):

1. **Fixed-offset rule** — when the character offsets of every
   constrained segment are statically known in both patterns (all
   segments up to the last constrained one have a fixed length, as in the
   ``⟨\\D{3}⟩\\D{2}`` prefix family), Q restricts Q' iff the character
   positions pinned by Q' are a subset of those pinned by Q.
2. **Word-alignment rule** — when both patterns decompose into
   space-free word segments separated by literal spaces (with optional
   ``\\A*`` gaps), each constrained segment is identified by its word
   index counted from the left (before the first gap) or from the right
   (after the last gap); Q restricts Q' iff every word position
   constrained by Q' is also constrained by Q.

In both cases the embedded pattern of Q must additionally be contained in
the embedded pattern of Q' (otherwise a string could match Q but not Q',
making ``≡_{Q'}`` false trivially).  When neither rule applies the
function conservatively returns False.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from repro.constrained.constrained_pattern import ConstrainedPattern
from repro.patterns.alphabet import CharClass
from repro.patterns.containment import pattern_contains
from repro.patterns.syntax import ClassAtom, Literal

#: A label identifying a constrained region: ("char", start, stop) for the
#: fixed-offset rule, ("L", i) / ("R", -j) for the word-alignment rule.
Label = Tuple


def is_restriction_of(restricted: ConstrainedPattern, general: ConstrainedPattern) -> bool:
    """Whether ``restricted ⊆ general`` in the paper's sense (sound test)."""
    if not pattern_contains(restricted.embedded_pattern(), general.embedded_pattern()):
        return False
    decision = _fixed_offset_rule(restricted, general)
    if decision is not None:
        return decision
    decision = _word_alignment_rule(restricted, general)
    if decision is not None:
        return decision
    return False


# -- rule 1: fixed character offsets -------------------------------------------------


def _constrained_char_positions(pattern: ConstrainedPattern) -> Optional[FrozenSet[int]]:
    """Character positions pinned by the constrained segments, or None if
    the offsets are not statically determined."""
    positions: List[int] = []
    offset = 0
    last_constrained = max(
        i for i, segment in enumerate(pattern.segments) if segment.constrained
    )
    for index, segment in enumerate(pattern.segments):
        if index > last_constrained:
            break
        length = segment.pattern.max_length()
        if length is None or length != segment.pattern.min_length():
            return None
        if segment.constrained:
            positions.extend(range(offset, offset + length))
        offset += length
    return frozenset(positions)


def _fixed_offset_rule(
    restricted: ConstrainedPattern, general: ConstrainedPattern
) -> Optional[bool]:
    restricted_positions = _constrained_char_positions(restricted)
    general_positions = _constrained_char_positions(general)
    if restricted_positions is None or general_positions is None:
        return None
    return general_positions <= restricted_positions


# -- rule 2: word alignment ------------------------------------------------------------


def _atom_can_match_space(atom) -> bool:
    if isinstance(atom, Literal):
        return atom.char == " "
    if isinstance(atom, ClassAtom):
        return atom.char_class in (CharClass.ANY, CharClass.SYMBOL)
    return True


def _flatten(pattern: ConstrainedPattern) -> List[Tuple[str, bool]]:
    """Flatten the segments into (kind, constrained) element units.

    Kinds: ``"separator"`` (a single literal space), ``"gap"`` (an atom
    that can absorb spaces, e.g. ``\\A*``), ``"wordchar"`` (anything that
    cannot match a space).
    """
    units: List[Tuple[str, bool]] = []
    for segment in pattern.segments:
        for element in segment.pattern.elements:
            atom = element.atom
            if isinstance(atom, Literal) and atom.char == " " and element.quantifier.is_single:
                units.append(("separator", segment.constrained))
            elif _atom_can_match_space(atom):
                units.append(("gap", segment.constrained))
            else:
                units.append(("wordchar", segment.constrained))
    return units


def _word_labels(pattern: ConstrainedPattern) -> Optional[FrozenSet[Label]]:
    """Word-position labels pinned by the constrained segments.

    Words are maximal runs of space-free units; a word counts as pinned
    when all of its units are constrained, unpinned when none are, and
    the decomposition fails (None) when a word is partially constrained
    or a gap unit is constrained.  Constrained separators are ignored —
    a literal space can only ever match ``" "``, so agreement on it is
    automatic.
    """
    units = _flatten(pattern)
    if any(kind == "gap" and constrained for kind, constrained in units):
        return None

    def word_runs(indexes) -> Optional[List[Tuple[str, int]]]:
        """(pinned?, word-index) pairs over a unit index range; word
        indexes are counted by separators crossed."""
        runs: List[Tuple[str, int]] = []
        word_index = 0
        current: List[bool] = []
        for i in indexes:
            kind, constrained = units[i]
            if kind == "wordchar":
                current.append(constrained)
            else:
                if current:
                    runs.append((_word_state(current), word_index))
                    current = []
                word_index += 1
        if current:
            runs.append((_word_state(current), word_index))
        return runs

    first_gap = next((i for i, (k, _c) in enumerate(units) if k == "gap"), len(units))
    last_gap = next(
        (i for i in range(len(units) - 1, -1, -1) if units[i][0] == "gap"), -1
    )

    labels: List[Label] = []
    left_runs = word_runs(range(first_gap))
    for state, index in left_runs:
        if state == "mixed":
            return None
        if state == "pinned":
            labels.append(("L", index))
    if last_gap >= 0:
        right_units = list(range(last_gap + 1, len(units)))
        # count from the right: reverse, then negate indexes
        reversed_runs = word_runs(reversed(right_units))
        for state, index in reversed_runs:
            if state == "mixed":
                return None
            if state == "pinned":
                labels.append(("R", -(index + 1)))
        # any constrained word strictly between the gaps has no stable position
        for i in range(first_gap, last_gap + 1):
            kind, constrained = units[i]
            if kind == "wordchar" and constrained:
                return None
    return frozenset(labels)


def _word_state(flags: List[bool]) -> str:
    if all(flags):
        return "pinned"
    if not any(flags):
        return "free"
    return "mixed"


def _word_alignment_rule(
    restricted: ConstrainedPattern, general: ConstrainedPattern
) -> Optional[bool]:
    restricted_labels = _word_labels(restricted)
    general_labels = _word_labels(general)
    if restricted_labels is None or general_labels is None:
        return None
    return general_labels <= restricted_labels
