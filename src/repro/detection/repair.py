"""Repair suggestions for detected violations.

The paper: "if we assume that the LHS value is correct then the RHS could
[be] repaired by changing it to tp[B]".  Constant-PFD violations therefore
carry the tableau constant as the suggested repair; variable-PFD
violations suggest the majority value of the offending block.  Repairs
are suggestions only — :func:`apply_repairs` exists so the examples can
show a full detect-and-fix loop, but nothing applies them implicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.dataset.table import Table
from repro.detection.rules import elect_expected_value
from repro.detection.violation import Violation, ViolationReport


@dataclass(frozen=True)
class RepairSuggestion:
    """A proposed cell overwrite."""

    row: int
    attribute: str
    current_value: str
    suggested_value: str
    pfd_name: str
    confidence: float

    def describe(self) -> str:
        return (
            f"row {self.row}: {self.attribute} "
            f"{self.current_value!r} → {self.suggested_value!r} ({self.pfd_name})"
        )


def suggest_repairs(report: ViolationReport) -> List[RepairSuggestion]:
    """Turn a violation report into per-cell repair suggestions.

    When several violations flag the same cell, the suggestion backed by
    the most violations (then the first seen) wins; its confidence is the
    fraction of that cell's violations that agree with it.  The election
    itself is :func:`repro.detection.rules.elect_expected_value`, shared
    with the emission layer that produced the expected values.
    """
    by_cell: Dict[Tuple[int, str], List[Violation]] = {}
    for violation in report:
        if violation.expected_value is None:
            continue
        by_cell.setdefault(violation.suspect_cell, []).append(violation)
    suggestions: List[RepairSuggestion] = []
    for (row, attribute), violations in sorted(by_cell.items()):
        winner, backer, confidence = elect_expected_value(violations)
        suggestions.append(
            RepairSuggestion(
                row=row,
                attribute=attribute,
                current_value=violations[0].observed_value,
                suggested_value=winner,
                pfd_name=backer.pfd_name,
                confidence=confidence,
            )
        )
    return suggestions


def apply_repairs(
    table: Table,
    suggestions: Iterable[RepairSuggestion],
    min_confidence: float = 0.0,
) -> Table:
    """Return a copy of the table with suggestions at or above the
    confidence threshold applied."""
    repaired = table.copy()
    for suggestion in suggestions:
        if suggestion.confidence < min_confidence:
            continue
        repaired.set_cell(suggestion.row, suggestion.attribute, suggestion.suggested_value)
    return repaired
