"""Incremental violation maintenance under table updates.

The ANMAT workflow is interactive: the user confirms rules, fixes cells,
and re-checks.  Re-running :meth:`ErrorDetector.detect_all` after every
single-cell repair re-scans the whole table even though the edit can
only affect violations whose rule touches the edited value.  The
:class:`IncrementalDetector` keeps per-rule violation state — the rows
in scope of each constant rule, the ``≡_Q`` blocks of each variable rule
— and maintains it under the structured deltas recorded by
:meth:`Table.set_cell` / :meth:`Table.append_row` /
:meth:`Table.delete_row`:

* a **cell edit** re-evaluates one row per constant rule over the edited
  attribute, and moves one row between blocks (re-deriving only the two
  affected blocks) per variable rule;
* an **append** evaluates the new row against every rule;
* a **delete** unposts the row, renumbers the indexes behind it, and
  re-derives only the block the row left.

All violation *semantics* — and the state the hooks above maintain —
live in the shared evaluators of :mod:`repro.detection.rules`; this
module only owns delta replay and the shadow columns it reads from.
Because batch detection emits through the very same evaluators, the two
paths cannot drift apart.

Pattern verdicts and constrained projections are read through the shared
:class:`~repro.perf.memo.MatchMemo` (one regex run per distinct value,
ever) and the initial build shares the per-table
:class:`~repro.perf.table_cache.TableArtifactCache` artifacts with the
batch detector, so attaching an incremental detector right after a full
detection run costs dictionary lookups, not regex work.

Correctness contract: after any sequence of mutations,
``detector.report().canonical_violations()`` equals the canonical
violations of a from-scratch ``ErrorDetector(table).detect_all(pfds)``
on the final table — for *every* strategy, bruteforce included, since
emission is unified — randomized equivalence tests enforce this.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.constrained.constrained_pattern import ConstrainedPattern
from repro.dataset.table import CellEdit, RowAppend, RowDelete, Table
from repro.detection.detector import DetectionStrategy, ErrorDetector
from repro.detection.rules import (
    ConstantRuleEvaluator,
    RuleEvaluator,
    VariableRuleEvaluator,
    make_rule_evaluator,
)
from repro.detection.violation import ViolationReport
from repro.errors import DetectionError
from repro.patterns.pattern import Pattern
from repro.perf.memo import MatchMemo, MATCH_MEMO
from repro.perf.timers import StageTimers
from repro.pfd.pfd import PFD


class IncrementalDetector:
    """Maintains a :class:`ViolationReport` for a fixed rule set under
    table mutations.

    Either mutate through the detector (:meth:`set_cell`,
    :meth:`append_row`, :meth:`delete_row`) or mutate the table directly
    and call :meth:`refresh` — both replay the table's delta log; the
    detector falls back to a full rebuild only when the log no longer
    covers the gap.
    """

    def __init__(
        self,
        table: Table,
        pfds: Iterable[PFD],
        strategy: str = DetectionStrategy.AUTO,
        memo: Optional[MatchMemo] = None,
        timers: Optional[StageTimers] = None,
    ):
        if strategy not in DetectionStrategy.ALL:
            raise DetectionError(
                f"unknown strategy {strategy!r}; expected one of {DetectionStrategy.ALL}"
            )
        self.table = table
        self.pfds = list(pfds)
        self.strategy = strategy
        self.memo = MATCH_MEMO if memo is None else memo
        #: wall-clock accumulated per maintenance stage across the edit
        #: loop's lifetime (``seed`` — full state builds, ``reevaluate`` —
        #: constant-rule row re-evaluations, ``rederive_block`` —
        #: variable-rule block re-derivations); the bench harness prints
        #: the breakdown like the mining stage timers, and can pass a
        #: shared instance to accumulate across detector rebuilds
        self.timers = StageTimers() if timers is None else timers
        self._rules: List[RuleEvaluator] = []
        # Shadow copies of every rule-referenced column, advanced in
        # lockstep with each replayed delta.  Handlers read these, never
        # the live table: when refresh() catches up on a *batch* of
        # deltas, the live table is already at the final state, but a
        # delta's row index refers to the numbering at mutation time.
        self._shadow: Dict[str, List[str]] = {}
        self._synced_version = -1
        self._rebuild()

    # -- initial build ---------------------------------------------------------

    def _rebuild(self) -> None:
        """Compute the full per-rule state from the current table."""
        with self.timers.stage("seed"):
            self._rebuild_timed()

    def _rebuild_timed(self) -> None:
        self._rules = []
        self._shadow = {}
        detector = ErrorDetector(self.table, memo=self.memo)
        for pfd in self.pfds:
            for attribute in (pfd.lhs_attribute, pfd.rhs_attribute):
                if attribute not in self._shadow:
                    self._shadow[attribute] = list(self.table.column_ref(attribute))
        for pfd in self.pfds:
            lhs_values = self._shadow[pfd.lhs_attribute]
            rhs_values = self._shadow[pfd.rhs_attribute]
            for rule_index, rule in enumerate(pfd.tableau):
                evaluator = make_rule_evaluator(pfd, rule_index, rule)
                if isinstance(evaluator, VariableRuleEvaluator):
                    evaluator.seed_full(self.memo, lhs_values, rhs_values)
                else:
                    evaluator.seed_full(
                        self._initial_scope(detector, evaluator, lhs_values),
                        rhs_values,
                        self.memo,
                    )
                self._rules.append(evaluator)
        self._synced_version = self.table.version

    def _initial_scope(
        self,
        detector: ErrorDetector,
        evaluator: ConstantRuleEvaluator,
        lhs_values: Sequence[str],
    ) -> Iterable[int]:
        """Rows matching a constant rule's LHS cell, via the shared
        per-table column index so batch and incremental runs reuse one
        artifact."""
        cell = evaluator.lhs_cell
        if isinstance(cell, (Pattern, ConstrainedPattern)):
            return detector.column_index(evaluator.lhs).matching_rows(cell, self.memo)
        if isinstance(cell, str):
            return detector.column_index(evaluator.lhs).matching_constant(cell)
        return range(len(lhs_values))  # wildcard LHS: every row is in scope

    # -- mutation API ------------------------------------------------------------

    def set_cell(self, row: int, attribute: str, value: object) -> None:
        """Overwrite one cell and update the maintained report."""
        self.table.set_cell(row, attribute, value)
        self.refresh()

    def append_row(self, values) -> int:
        """Append one row and update the maintained report."""
        row = self.table.append_row(values)
        self.refresh()
        return row

    def delete_row(self, row: int) -> Tuple[str, ...]:
        """Delete one row and update the maintained report."""
        removed = self.table.delete_row(row)
        self.refresh()
        return removed

    def refresh(self) -> None:
        """Catch up with mutations applied directly to the table."""
        if self.table.version == self._synced_version:
            return
        deltas = self.table.deltas_since(self._synced_version)
        if deltas is None:
            self._rebuild()
            return
        for delta in deltas:
            self._advance_shadow(delta)
            if isinstance(delta, CellEdit):
                self._apply_edit(delta)
            elif isinstance(delta, RowAppend):
                self._apply_append(delta)
            elif isinstance(delta, RowDelete):
                self._apply_delete(delta)
            else:  # unknown delta kind — be safe, rebuild
                self._rebuild()
                return
        self._synced_version = self.table.version

    # -- delta handlers ------------------------------------------------------------

    def _advance_shadow(self, delta) -> None:
        """Bring the shadow columns to the state right after ``delta``."""
        schema = self.table.schema
        if isinstance(delta, CellEdit):
            column = self._shadow.get(delta.column)
            if column is not None:
                column[delta.row] = delta.new
        elif isinstance(delta, RowAppend):
            for attribute, column in self._shadow.items():
                column.append(delta.values[schema.index_of(attribute)])
        elif isinstance(delta, RowDelete):
            for column in self._shadow.values():
                del column[delta.row]

    def _apply_edit(self, delta: CellEdit) -> None:
        for evaluator in self._rules:
            if isinstance(evaluator, ConstantRuleEvaluator):
                if delta.column in (evaluator.lhs, evaluator.rhs):
                    with self.timers.stage("reevaluate"):
                        evaluator.reevaluate_row(
                            self.memo,
                            delta.row,
                            self._shadow[evaluator.lhs][delta.row],
                            self._shadow[evaluator.rhs][delta.row],
                        )
            else:
                rhs_values = self._shadow[evaluator.rhs]
                if delta.column == evaluator.lhs:
                    with self.timers.stage("rederive_block"):
                        evaluator.move_row(
                            self.memo, delta.row, delta.new, rhs_values
                        )
                elif delta.column == evaluator.rhs:
                    with self.timers.stage("rederive_block"):
                        evaluator.rhs_changed(delta.row, rhs_values)

    def _apply_append(self, delta: RowAppend) -> None:
        schema = self.table.schema
        for evaluator in self._rules:
            lhs_value = delta.values[schema.index_of(evaluator.lhs)]
            rhs_value = delta.values[schema.index_of(evaluator.rhs)]
            if isinstance(evaluator, ConstantRuleEvaluator):
                evaluator.append_row(self.memo, delta.row, lhs_value, rhs_value)
            else:
                evaluator.append_row(
                    self.memo, delta.row, lhs_value, self._shadow[evaluator.rhs]
                )

    def _apply_delete(self, delta: RowDelete) -> None:
        for evaluator in self._rules:
            if isinstance(evaluator, ConstantRuleEvaluator):
                evaluator.delete_row(delta.row)
            else:
                evaluator.delete_row(delta.row, self._shadow[evaluator.rhs])

    # -- output ---------------------------------------------------------------------

    def report(self) -> ViolationReport:
        """The maintained report for the table's current contents.

        Refreshes first, so it is always safe to call after direct table
        mutations.  Violations are deduplicated with the same identity
        key as :meth:`ViolationReport.merged_with`; compare against a
        batch run via :meth:`ViolationReport.canonical_violations`.
        """
        self.refresh()
        report = ViolationReport(n_rows=self.table.n_rows, strategy=self.strategy)
        seen = set()
        for evaluator in self._rules:
            for violation in evaluator.emit():
                key = report.identity_key(violation)
                if key in seen:
                    continue
                seen.add(key)
                report.add(violation)
        return report
