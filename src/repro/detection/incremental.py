"""Incremental violation maintenance under table updates.

The ANMAT workflow is interactive: the user confirms rules, fixes cells,
and re-checks.  Re-running :meth:`ErrorDetector.detect_all` after every
single-cell repair re-scans the whole table even though the edit can
only affect violations whose rule touches the edited value.  The
:class:`IncrementalDetector` keeps per-rule violation state — the rows
in scope of each constant rule, the ``≡_Q`` blocks of each variable rule
— and maintains it under the structured deltas recorded by
:meth:`Table.set_cell` / :meth:`Table.append_row` /
:meth:`Table.delete_row`:

* a **cell edit** re-evaluates one row per constant rule over the edited
  attribute, and moves one row between blocks (re-deriving only the two
  affected blocks) per variable rule;
* an **append** evaluates the new row against every rule;
* a **delete** unposts the row, renumbers the indexes behind it, and
  re-derives only the block the row left.

Pattern verdicts and constrained projections are read through the shared
:class:`~repro.perf.memo.MatchMemo` (one regex run per distinct value,
ever) and the initial build shares the per-table
:class:`~repro.perf.table_cache.TableArtifactCache` artifacts with the
batch detector, so attaching an incremental detector right after a full
detection run costs dictionary lookups, not regex work.

Correctness contract: after any sequence of mutations,
``detector.report().canonical_violations()`` equals the canonical
violations of a from-scratch ``ErrorDetector(table).detect_all(pfds)``
on the final table — randomized equivalence tests enforce this.
"""

from __future__ import annotations

import bisect
from dataclasses import replace
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.constrained.constrained_pattern import ConstrainedPattern
from repro.dataset.table import CellEdit, RowAppend, RowDelete, Table
from repro.detection.blocking import (
    add_row_to_blocks,
    majority_value,
    remove_row_from_blocks,
    renumber_blocks_after_delete,
    split_block_by_rhs,
)
from repro.detection.detector import DetectionStrategy, ErrorDetector, _as_constrained
from repro.detection.violation import Violation, ViolationKind, ViolationReport
from repro.errors import DetectionError
from repro.patterns.pattern import Pattern
from repro.perf.memo import MatchMemo, MATCH_MEMO
from repro.pfd.pfd import PFD
from repro.pfd.tableau import Wildcard, cell_matches, cell_to_text


def _shift_after_delete(violation: Violation, deleted_row: int) -> Violation:
    """Renumber a violation's row references after a row deletion.

    The violation must not reference the deleted row itself (those are
    re-derived from their block instead of shifted).
    """

    def shift(row: int) -> int:
        return row - 1 if row > deleted_row else row

    return replace(
        violation,
        rows=tuple(shift(r) for r in violation.rows),
        cells=tuple((shift(r), attr) for r, attr in violation.cells),
        suspect_cell=(shift(violation.suspect_cell[0]), violation.suspect_cell[1]),
    )


class _ConstantRuleState:
    """One constant tableau rule: per-row violations, one row at a time."""

    __slots__ = (
        "lhs", "rhs", "lhs_cell", "rhs_cell", "expected",
        "pfd_name", "rule_index", "rule_text", "violations",
    )

    def __init__(self, pfd: PFD, rule_index: int, rule) -> None:
        self.lhs = pfd.lhs_attribute
        self.rhs = pfd.rhs_attribute
        self.lhs_cell = rule.cell(self.lhs)
        self.rhs_cell = rule.cell(self.rhs)
        self.expected = cell_to_text(self.rhs_cell)
        self.pfd_name = pfd.name or str(pfd.fd)
        self.rule_index = rule_index
        self.rule_text = rule.render()
        #: row → its violation (only violating rows are stored)
        self.violations: Dict[int, Violation] = {}

    def _lhs_matches(self, memo: MatchMemo, value: str) -> bool:
        if isinstance(self.lhs_cell, (Pattern, ConstrainedPattern)):
            return memo.matches(self.lhs_cell, value)
        return cell_matches(self.lhs_cell, value)

    def _rhs_satisfied(self, memo: MatchMemo, value: str) -> bool:
        if isinstance(self.rhs_cell, (Pattern, ConstrainedPattern)):
            return memo.matches(self.rhs_cell, value)
        return cell_matches(self.rhs_cell, value)

    def _violation(self, row: int, observed: str) -> Violation:
        return Violation(
            pfd_name=self.pfd_name,
            lhs_attribute=self.lhs,
            rhs_attribute=self.rhs,
            kind=ViolationKind.CONSTANT,
            rule_index=self.rule_index,
            rule_text=self.rule_text,
            rows=(row,),
            cells=((row, self.lhs), (row, self.rhs)),
            suspect_cell=(row, self.rhs),
            observed_value=observed,
            expected_value=self.expected,
        )

    def reevaluate_row(self, memo: MatchMemo, row: int, lhs_value: str, rhs_value: str) -> None:
        """Recompute one row's membership after its LHS or RHS changed."""
        if self._lhs_matches(memo, lhs_value) and not self._rhs_satisfied(memo, rhs_value):
            self.violations[row] = self._violation(row, rhs_value)
        else:
            self.violations.pop(row, None)

    def delete_row(self, row: int) -> None:
        self.violations.pop(row, None)
        self.violations = {
            (r - 1 if r > row else r): (
                _shift_after_delete(v, row) if r > row else v
            )
            for r, v in self.violations.items()
        }

    def emit(self) -> Iterable[Violation]:
        for row in sorted(self.violations):
            yield self.violations[row]


class _VariableRuleState:
    """One variable tableau rule: ``≡_Q`` blocks plus per-block violations."""

    __slots__ = (
        "lhs", "rhs", "constrained", "pfd_name", "rule_index", "rule_text",
        "blocks", "row_key", "block_violations",
    )

    def __init__(self, pfd: PFD, rule_index: int, rule) -> None:
        self.lhs = pfd.lhs_attribute
        self.rhs = pfd.rhs_attribute
        self.constrained = _as_constrained(rule.cell(self.lhs))
        self.pfd_name = pfd.name or str(pfd.fd)
        self.rule_index = rule_index
        self.rule_text = rule.render()
        #: projection key → ascending row list (the ``≡_Q`` block)
        self.blocks: Dict[Hashable, List[int]] = {}
        #: row → its block key (rows whose projection is None are absent)
        self.row_key: Dict[int, Hashable] = {}
        #: block key → that block's current violations
        self.block_violations: Dict[Hashable, List[Violation]] = {}

    def rederive_block(self, key: Hashable, rhs_values: Sequence[str]) -> None:
        """Recompute one block's violations (mirrors the batch detector)."""
        rows = self.blocks.get(key)
        self.block_violations.pop(key, None)
        if rows is None or len(rows) < 2:
            return
        groups = split_block_by_rhs(rows, rhs_values)
        if len(groups) < 2:
            return
        majority = majority_value(groups)
        witness = groups[majority][0]
        violations: List[Violation] = []
        for value, value_rows in groups.items():
            if value == majority:
                continue
            for row in value_rows:
                violations.append(
                    Violation(
                        pfd_name=self.pfd_name,
                        lhs_attribute=self.lhs,
                        rhs_attribute=self.rhs,
                        kind=ViolationKind.VARIABLE,
                        rule_index=self.rule_index,
                        rule_text=self.rule_text,
                        rows=(witness, row),
                        cells=(
                            (witness, self.lhs),
                            (witness, self.rhs),
                            (row, self.lhs),
                            (row, self.rhs),
                        ),
                        suspect_cell=(row, self.rhs),
                        observed_value=value,
                        expected_value=majority,
                    )
                )
        if violations:
            self.block_violations[key] = violations

    def move_row(
        self,
        memo: MatchMemo,
        row: int,
        new_lhs_value: str,
        rhs_values: Sequence[str],
    ) -> None:
        """Re-home a row whose LHS value changed; re-derive both blocks."""
        old_key = self.row_key.get(row)
        new_key = memo.project(self.constrained, new_lhs_value)
        if old_key == new_key:
            # Same block (the violation payload carries no LHS values),
            # or still unmatched: nothing can have changed.
            return
        if old_key is not None:
            remove_row_from_blocks(self.blocks, old_key, row)
            self.rederive_block(old_key, rhs_values)
        if new_key is None:
            self.row_key.pop(row, None)
        else:
            add_row_to_blocks(self.blocks, new_key, row)
            self.row_key[row] = new_key
            self.rederive_block(new_key, rhs_values)

    def rhs_changed(self, row: int, rhs_values: Sequence[str]) -> None:
        key = self.row_key.get(row)
        if key is not None:
            self.rederive_block(key, rhs_values)

    def append_row(
        self,
        memo: MatchMemo,
        row: int,
        lhs_value: str,
        rhs_values: Sequence[str],
    ) -> None:
        key = memo.project(self.constrained, lhs_value)
        if key is None:
            return
        add_row_to_blocks(self.blocks, key, row)
        self.row_key[row] = key
        self.rederive_block(key, rhs_values)

    def delete_row(self, row: int, rhs_values: Sequence[str]) -> None:
        """Unpost a deleted row, renumber everything behind it, and
        re-derive the block it left (``rhs_values`` are post-delete)."""
        key = self.row_key.pop(row, None)
        if key is not None:
            remove_row_from_blocks(self.blocks, key, row)
        renumber_blocks_after_delete(self.blocks, row)
        self.row_key = {
            (r - 1 if r > row else r): k for r, k in self.row_key.items()
        }
        # Untouched blocks only need their stored row references shifted;
        # membership, majorities, and witnesses are unchanged for them.
        self.block_violations = {
            k: [_shift_after_delete(v, row) for v in violations]
            for k, violations in self.block_violations.items()
            if k != key
        }
        if key is not None:
            self.rederive_block(key, rhs_values)

    def emit(self) -> Iterable[Violation]:
        collected: List[Violation] = []
        for violations in self.block_violations.values():
            collected.extend(violations)
        collected.sort(key=lambda v: (v.rows, v.suspect_cell))
        return collected


class IncrementalDetector:
    """Maintains a :class:`ViolationReport` for a fixed rule set under
    table mutations.

    Either mutate through the detector (:meth:`set_cell`,
    :meth:`append_row`, :meth:`delete_row`) or mutate the table directly
    and call :meth:`refresh` — both replay the table's delta log; the
    detector falls back to a full rebuild only when the log no longer
    covers the gap.
    """

    def __init__(
        self,
        table: Table,
        pfds: Iterable[PFD],
        strategy: str = DetectionStrategy.AUTO,
        memo: Optional[MatchMemo] = None,
    ):
        if strategy not in DetectionStrategy.ALL:
            raise DetectionError(
                f"unknown strategy {strategy!r}; expected one of {DetectionStrategy.ALL}"
            )
        if strategy == DetectionStrategy.BRUTEFORCE:
            # Brute force emits one violation per violating *pair* (no
            # majority blocking); that shape cannot be maintained from
            # per-block state, so refusing beats silently diverging.
            raise DetectionError(
                "incremental maintenance supports the blocking strategies "
                "(auto/scan/index) only; bruteforce reports per-pair violations"
            )
        self.table = table
        self.pfds = list(pfds)
        self.strategy = strategy
        self.memo = MATCH_MEMO if memo is None else memo
        self._rules: List[object] = []
        # Shadow copies of every rule-referenced column, advanced in
        # lockstep with each replayed delta.  Handlers read these, never
        # the live table: when refresh() catches up on a *batch* of
        # deltas, the live table is already at the final state, but a
        # delta's row index refers to the numbering at mutation time.
        self._shadow: Dict[str, List[str]] = {}
        self._synced_version = -1
        self._rebuild()

    # -- initial build ---------------------------------------------------------

    def _rebuild(self) -> None:
        """Compute the full per-rule state from the current table."""
        self._rules = []
        self._shadow = {}
        detector = ErrorDetector(self.table, memo=self.memo)
        for pfd in self.pfds:
            for attribute in (pfd.lhs_attribute, pfd.rhs_attribute):
                if attribute not in self._shadow:
                    self._shadow[attribute] = list(self.table.column_ref(attribute))
        for pfd in self.pfds:
            lhs = pfd.lhs_attribute
            rhs = pfd.rhs_attribute
            lhs_values = self._shadow[lhs]
            rhs_values = self._shadow[rhs]
            for rule_index, rule in enumerate(pfd.tableau):
                if isinstance(rule.cell(rhs), Wildcard):
                    state = _VariableRuleState(pfd, rule_index, rule)
                    project = self.memo.projector(state.constrained)
                    for row, value in enumerate(lhs_values):
                        key = project(value)
                        if key is None:
                            continue
                        state.blocks.setdefault(key, []).append(row)
                        state.row_key[row] = key
                    for key in state.blocks:
                        state.rederive_block(key, rhs_values)
                else:
                    state = _ConstantRuleState(pfd, rule_index, rule)
                    for row in self._initial_scope(detector, state, lhs_values):
                        value = rhs_values[row]
                        if not state._rhs_satisfied(self.memo, value):
                            state.violations[row] = state._violation(row, value)
                self._rules.append(state)
        self._synced_version = self.table.version

    def _initial_scope(
        self,
        detector: ErrorDetector,
        state: _ConstantRuleState,
        lhs_values: Sequence[str],
    ) -> Iterable[int]:
        """Rows matching a constant rule's LHS cell, via the shared
        per-table column index so batch and incremental runs reuse one
        artifact."""
        cell = state.lhs_cell
        if isinstance(cell, (Pattern, ConstrainedPattern)):
            return detector.column_index(state.lhs).matching_rows(cell, self.memo)
        if isinstance(cell, str):
            return detector.column_index(state.lhs).matching_constant(cell)
        return range(len(lhs_values))  # wildcard LHS: every row is in scope

    # -- mutation API ------------------------------------------------------------

    def set_cell(self, row: int, attribute: str, value: object) -> None:
        """Overwrite one cell and update the maintained report."""
        self.table.set_cell(row, attribute, value)
        self.refresh()

    def append_row(self, values) -> int:
        """Append one row and update the maintained report."""
        row = self.table.append_row(values)
        self.refresh()
        return row

    def delete_row(self, row: int) -> Tuple[str, ...]:
        """Delete one row and update the maintained report."""
        removed = self.table.delete_row(row)
        self.refresh()
        return removed

    def refresh(self) -> None:
        """Catch up with mutations applied directly to the table."""
        if self.table.version == self._synced_version:
            return
        deltas = self.table.deltas_since(self._synced_version)
        if deltas is None:
            self._rebuild()
            return
        for delta in deltas:
            self._advance_shadow(delta)
            if isinstance(delta, CellEdit):
                self._apply_edit(delta)
            elif isinstance(delta, RowAppend):
                self._apply_append(delta)
            elif isinstance(delta, RowDelete):
                self._apply_delete(delta)
            else:  # unknown delta kind — be safe, rebuild
                self._rebuild()
                return
        self._synced_version = self.table.version

    # -- delta handlers ------------------------------------------------------------

    def _advance_shadow(self, delta) -> None:
        """Bring the shadow columns to the state right after ``delta``."""
        schema = self.table.schema
        if isinstance(delta, CellEdit):
            column = self._shadow.get(delta.column)
            if column is not None:
                column[delta.row] = delta.new
        elif isinstance(delta, RowAppend):
            for attribute, column in self._shadow.items():
                column.append(delta.values[schema.index_of(attribute)])
        elif isinstance(delta, RowDelete):
            for column in self._shadow.values():
                del column[delta.row]

    def _apply_edit(self, delta: CellEdit) -> None:
        for state in self._rules:
            if isinstance(state, _ConstantRuleState):
                if delta.column in (state.lhs, state.rhs):
                    state.reevaluate_row(
                        self.memo,
                        delta.row,
                        self._shadow[state.lhs][delta.row],
                        self._shadow[state.rhs][delta.row],
                    )
            else:
                rhs_values = self._shadow[state.rhs]
                if delta.column == state.lhs:
                    state.move_row(self.memo, delta.row, delta.new, rhs_values)
                elif delta.column == state.rhs:
                    state.rhs_changed(delta.row, rhs_values)

    def _apply_append(self, delta: RowAppend) -> None:
        schema = self.table.schema
        for state in self._rules:
            lhs_value = delta.values[schema.index_of(state.lhs)]
            rhs_value = delta.values[schema.index_of(state.rhs)]
            if isinstance(state, _ConstantRuleState):
                state.reevaluate_row(self.memo, delta.row, lhs_value, rhs_value)
            else:
                state.append_row(
                    self.memo, delta.row, lhs_value, self._shadow[state.rhs]
                )

    def _apply_delete(self, delta: RowDelete) -> None:
        for state in self._rules:
            if isinstance(state, _ConstantRuleState):
                state.delete_row(delta.row)
            else:
                state.delete_row(delta.row, self._shadow[state.rhs])

    # -- output ---------------------------------------------------------------------

    def report(self) -> ViolationReport:
        """The maintained report for the table's current contents.

        Refreshes first, so it is always safe to call after direct table
        mutations.  Violations are deduplicated with the same identity
        key as :meth:`ViolationReport.merged_with`; compare against a
        batch run via :meth:`ViolationReport.canonical_violations`.
        """
        self.refresh()
        report = ViolationReport(n_rows=self.table.n_rows, strategy=self.strategy)
        seen = set()
        for state in self._rules:
            for violation in state.emit():
                key = report.identity_key(violation)
                if key in seen:
                    continue
                seen.add(key)
                report.add(violation)
        return report
