"""Error detection with PFDs (Section 3 of the paper).

Constant PFDs are checked with a single pass assisted by a per-column
pattern index; variable PFDs are checked by *blocking* the tuples on the
constrained projection of the LHS pattern, avoiding the quadratic
pairwise comparison.  A deliberately naive brute-force strategy is also
provided so the benchmarks can reproduce the paper's argument for
indexes and blocking.
"""

from repro.detection.violation import Violation, ViolationKind, ViolationReport
from repro.detection.index import PatternColumnIndex
from repro.detection.blocking import block_by_key, block_by_projection
from repro.detection.rules import (
    ConstantRuleEvaluator,
    VariableRuleEvaluator,
    build_rule_evaluators,
    make_rule_evaluator,
)
from repro.detection.detector import DetectionStrategy, ErrorDetector
from repro.detection.incremental import IncrementalDetector
from repro.detection.repair import RepairSuggestion, suggest_repairs

__all__ = [
    "Violation",
    "ViolationKind",
    "ViolationReport",
    "PatternColumnIndex",
    "block_by_key",
    "block_by_projection",
    "ConstantRuleEvaluator",
    "VariableRuleEvaluator",
    "build_rule_evaluators",
    "make_rule_evaluator",
    "DetectionStrategy",
    "ErrorDetector",
    "IncrementalDetector",
    "RepairSuggestion",
    "suggest_repairs",
]
