"""Violations: the output of error detection.

A violation identifies the cells "that are highly likely to be erroneous
values".  For a constant PFD a violation involves two cells of a single
tuple (the matching LHS cell and the disagreeing RHS cell); for a
variable PFD it involves the four cells of a tuple pair, exactly as in
the paper's r3/r4 example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple


#: A cell reference: (row index, attribute name).
Cell = Tuple[int, str]


class ViolationKind:
    """String constants naming the two violation families."""

    CONSTANT = "constant"
    VARIABLE = "variable"


@dataclass(frozen=True, slots=True)
class Violation:
    """One detected violation of a PFD rule.

    Kept deliberately compact (slotted, with the cell tuples derived
    rather than stored): detection reports on large datasets hold one
    instance per violating row, and the per-instance ``__dict__`` plus
    materialized cell tuples would otherwise rival the dataset itself.
    """

    pfd_name: str
    lhs_attribute: str
    rhs_attribute: str
    kind: str
    rule_index: int
    rule_text: str
    rows: Tuple[int, ...]
    observed_value: str
    expected_value: Optional[str] = None

    @property
    def cells(self) -> Tuple[Cell, ...]:
        """Every cell participating in the violation: each involved row
        crossed with the rule's attributes (just the one cell per row
        when the rule is over a single attribute)."""
        if self.lhs_attribute == self.rhs_attribute:
            return tuple((row, self.rhs_attribute) for row in self.rows)
        return tuple(
            (row, attr)
            for row in self.rows
            for attr in (self.lhs_attribute, self.rhs_attribute)
        )

    @property
    def suspect_cell(self) -> Cell:
        """The cell the engine believes is wrong — always the RHS cell of
        the offending tuple (the last entry of ``rows``)."""
        return (self.rows[-1], self.rhs_attribute)

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``8505467600 | CA`` of Table 3."""
        # `is not None`, not truthiness: an empty-string expectation (a
        # constant rule whose RHS constant is "") must still render.
        expectation = (
            f" (expected {self.expected_value!r})" if self.expected_value is not None else ""
        )
        return (
            f"{self.pfd_name}: rows {list(self.rows)} — "
            f"{self.rhs_attribute}={self.observed_value!r}{expectation} "
            f"violates [{self.rule_text}]"
        )

    def __str__(self) -> str:
        return self.describe()


@dataclass
class ViolationReport:
    """All violations found by one detection run."""

    violations: List[Violation] = field(default_factory=list)
    n_rows: int = 0
    elapsed_seconds: float = 0.0
    strategy: str = "auto"
    comparisons: int = 0

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    def extend(self, violations: Iterable[Violation]) -> None:
        self.violations.extend(violations)

    def __len__(self) -> int:
        return len(self.violations)

    def __iter__(self) -> Iterator[Violation]:
        return iter(self.violations)

    def is_empty(self) -> bool:
        return not self.violations

    # -- aggregations ------------------------------------------------------------

    def suspect_cells(self) -> Set[Cell]:
        """Distinct cells flagged as likely errors."""
        return {v.suspect_cell for v in self.violations}

    def involved_cells(self) -> Set[Cell]:
        """Every cell participating in any violation."""
        cells: Set[Cell] = set()
        for violation in self.violations:
            cells.update(violation.cells)
        return cells

    def suspect_rows(self) -> List[int]:
        """Rows containing at least one suspect cell, sorted."""
        return sorted({row for row, _attr in self.suspect_cells()})

    def by_pfd(self) -> Dict[str, List[Violation]]:
        grouped: Dict[str, List[Violation]] = {}
        for violation in self.violations:
            grouped.setdefault(violation.pfd_name, []).append(violation)
        return grouped

    def by_attribute(self) -> Dict[str, List[Violation]]:
        grouped: Dict[str, List[Violation]] = {}
        for violation in self.violations:
            grouped.setdefault(violation.rhs_attribute, []).append(violation)
        return grouped

    def violation_ratio(self) -> float:
        """Suspect rows as a fraction of the table size."""
        if self.n_rows == 0:
            return 0.0
        return len(self.suspect_rows()) / self.n_rows

    def identity_key(self, violation: Violation) -> Tuple:
        """The dedup identity of a violation (see :meth:`merged_with`)."""
        return (
            violation.pfd_name,
            violation.rule_index,
            violation.rows,
            violation.suspect_cell,
        )

    def canonical_violations(self) -> List[Violation]:
        """The violations sorted by identity key.

        Detection emits violations in traversal order, which differs
        between a from-scratch run and an incrementally maintained
        report; sorting by the (unique) identity key gives both a single
        canonical form, so equivalence is plain ``==`` on the lists.
        """
        return sorted(self.violations, key=self.identity_key)

    def merged_with(self, other: "ViolationReport") -> "ViolationReport":
        """Union of two reports (deduplicated)."""
        merged = ViolationReport(
            n_rows=max(self.n_rows, other.n_rows),
            elapsed_seconds=self.elapsed_seconds + other.elapsed_seconds,
            strategy=self.strategy,
            comparisons=self.comparisons + other.comparisons,
        )
        seen: Set[Tuple] = set()
        for violation in list(self.violations) + list(other.violations):
            key = self.identity_key(violation)
            if key in seen:
                continue
            seen.add(key)
            merged.add(violation)
        return merged
