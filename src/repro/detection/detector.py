"""The error-detection engine.

Strategies (Section 3 of the paper):

* ``scan`` — constant rules: one pass over the table per rule; variable
  rules: pairwise comparison restricted to rows matching the embedded
  pattern (still quadratic).
* ``index`` — constant rules consult the per-column
  :class:`~repro.detection.index.PatternColumnIndex` so only rows whose
  value can match ``tp[A]`` are inspected; variable rules use the index
  to shortlist rows and then blocking.
* ``bruteforce`` — variable rules enumerate *all* tuple pairs, exactly
  the naive algorithm the paper says must be avoided; kept for the
  strategy-comparison benchmark.  (Only its *enumeration* is naive: the
  violations themselves are emitted by the same shared evaluators as
  every other strategy, so all strategies report identical violations.)
* ``auto`` — ``index`` (the default).

Violation *semantics* — what constitutes a violation, witness selection,
majority tie-breaking, :class:`Violation` construction — live in
:mod:`repro.detection.rules`; this module only owns candidate
enumeration per strategy.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.constrained.constrained_pattern import ConstrainedPattern
from repro.dataset.table import CellEdit, RowAppend, RowDelete, Table
from repro.detection.blocking import block_by_projection
from repro.detection.index import PatternColumnIndex
from repro.detection.rules import (
    ConstantRuleEvaluator,
    VariableRuleEvaluator,
    make_rule_evaluator,
)
from repro.detection.violation import ViolationReport
from repro.errors import DetectionError
from repro.patterns.pattern import Pattern
from repro.perf import TABLE_ARTIFACTS
from repro.perf.memo import MatchMemo, MATCH_MEMO
from repro.pfd.pfd import PFD
from repro.pfd.tableau import cell_matches


class DetectionStrategy:
    """String constants naming the supported strategies."""

    AUTO = "auto"
    SCAN = "scan"
    INDEX = "index"
    BRUTEFORCE = "bruteforce"

    ALL = (AUTO, SCAN, INDEX, BRUTEFORCE)


class ErrorDetector:
    """Applies PFDs to a table and reports violations.

    Detectors share two process-wide caches: the per-table pattern
    column indexes (rebuilding them per detector instance was pure
    waste — they depend only on the column contents) and the
    :class:`MatchMemo` of per-distinct-value verdicts reused by every
    rule touching a column.  Pass a private ``memo`` to isolate a
    detector from the shared one.
    """

    def __init__(self, table: Table, memo: Optional[MatchMemo] = None):
        self.table = table
        self.memo = MATCH_MEMO if memo is None else memo
        # per-attribute index patchers, built once per detector — the
        # cache-hit path must not pay an allocation per lookup
        self._index_patchers: dict = {}

    # -- public API ----------------------------------------------------------------

    def column_index(self, attribute: str) -> PatternColumnIndex:
        """The (cached) pattern index of a column.

        Always resolved through the shared artifact cache — it checks
        ``table.version``, so an index built before a ``set_cell`` is
        never served stale.  (No instance-level cache on purpose: it
        would be version-blind.)  When the table's delta log covers the
        gap, the stale index is *patched* forward (one posting move per
        edit) instead of rebuilt — see :func:`column_index_patcher`.
        """
        patcher = self._index_patchers.get(attribute)
        if patcher is None:
            patcher = self._index_patchers[attribute] = column_index_patcher(
                self.table, attribute
            )
        return TABLE_ARTIFACTS.get(
            self.table,
            ("pattern_column_index", attribute),
            lambda: PatternColumnIndex(self.table.column_ref(attribute)),
            patch=patcher,
        )

    def detect(self, pfd: PFD, strategy: str = DetectionStrategy.AUTO) -> ViolationReport:
        """Detect all violations of one PFD."""
        if strategy not in DetectionStrategy.ALL:
            raise DetectionError(
                f"unknown strategy {strategy!r}; expected one of {DetectionStrategy.ALL}"
            )
        started = time.perf_counter()
        report = ViolationReport(n_rows=self.table.n_rows, strategy=strategy)
        lhs = pfd.lhs_attribute
        rhs = pfd.rhs_attribute
        lhs_values = self.table.column_ref(lhs)
        rhs_values = self.table.column_ref(rhs)
        for rule_index, rule in enumerate(pfd.tableau):
            evaluator = make_rule_evaluator(pfd, rule_index, rule)
            if isinstance(evaluator, VariableRuleEvaluator):
                self._detect_variable_rule(
                    report, evaluator, lhs_values, rhs_values, strategy
                )
            else:
                self._detect_constant_rule(
                    report, evaluator, lhs_values, rhs_values, strategy
                )
        report.elapsed_seconds = time.perf_counter() - started
        return report

    def detect_all(
        self, pfds: Iterable[PFD], strategy: str = DetectionStrategy.AUTO
    ) -> ViolationReport:
        """Detect violations of every PFD and merge the reports."""
        merged = ViolationReport(n_rows=self.table.n_rows, strategy=strategy)
        for pfd in pfds:
            merged = merged.merged_with(self.detect(pfd, strategy))
        merged.strategy = strategy
        return merged

    # -- constant rules -----------------------------------------------------------------

    def _matching_rows(
        self,
        attribute: str,
        lhs_cell,
        values: Sequence[str],
        strategy: str,
        report: ViolationReport,
    ) -> Sequence[int]:
        """Rows whose LHS value satisfies the rule's LHS cell.

        Returns a direct reference to index-owned storage on the indexed
        constant path (no defensive copy) — callers only iterate.
        """
        use_index = strategy in (DetectionStrategy.AUTO, DetectionStrategy.INDEX)
        if use_index and isinstance(lhs_cell, (Pattern, ConstrainedPattern)):
            # Matching rows are a pure function of (column, pattern); the
            # shared artifact cache hands the same tuple to every rule and
            # every detector over this table.  The candidate count is
            # replayed so the comparisons statistic stays identical.
            index = self.column_index(attribute)

            def compute() -> Tuple[Tuple[int, ...], int]:
                rows = tuple(index.matching_rows(lhs_cell, self.memo))
                return rows, index.last_candidates_tested

            rows, candidates_tested = TABLE_ARTIFACTS.get(
                self.table, ("matching_rows", attribute, lhs_cell), compute
            )
            report.comparisons += candidates_tested
            return rows
        if use_index and isinstance(lhs_cell, str):
            return self.column_index(attribute).matching_constant(lhs_cell)
        rows = []
        for row, value in enumerate(values):
            report.comparisons += 1
            if cell_matches(lhs_cell, value):
                rows.append(row)
        return rows

    def _detect_constant_rule(
        self,
        report: ViolationReport,
        evaluator: ConstantRuleEvaluator,
        lhs_values: Sequence[str],
        rhs_values: Sequence[str],
        strategy: str,
    ) -> None:
        rows = self._matching_rows(
            evaluator.lhs, evaluator.lhs_cell, lhs_values, strategy, report
        )
        report.extend(evaluator.emit_full(rows, rhs_values, self.memo, report))

    # -- variable rules ------------------------------------------------------------------

    def _detect_variable_rule(
        self,
        report: ViolationReport,
        evaluator: VariableRuleEvaluator,
        lhs_values: Sequence[str],
        rhs_values: Sequence[str],
        strategy: str,
    ) -> None:
        constrained = evaluator.constrained
        matching = self._matching_rows(
            evaluator.lhs, constrained, lhs_values, strategy, report
        )
        if strategy == DetectionStrategy.BRUTEFORCE:
            blocks = self._bruteforce_disagreeing_blocks(
                matching, constrained, lhs_values, rhs_values, report
            )
            # The pair loop already counted its comparisons — no report
            # here, just the shared per-block emission.
            report.extend(evaluator.emit_full(blocks, rhs_values))
            return
        # Projection blocks depend only on (LHS column, pattern) — share
        # them across rules, strategies, and detector instances.
        lhs = evaluator.lhs
        blocks = TABLE_ARTIFACTS.get(
            self.table,
            ("projection_blocks", lhs, constrained),
            lambda: block_by_projection(matching, lhs_values, constrained, memo=self.memo),
        )
        report.extend(evaluator.emit_full(blocks, rhs_values, report))

    def _bruteforce_disagreeing_blocks(
        self,
        matching: Sequence[int],
        constrained: ConstrainedPattern,
        lhs_values: Sequence[str],
        rhs_values: Sequence[str],
        report: ViolationReport,
    ) -> Dict[Hashable, List[int]]:
        """The naive quadratic pair enumeration, reduced to blocks.

        Compares every pair of matching rows (the comparison count the
        strategy benchmark is about) and collects the rows of violating
        pairs per ``≡_Q`` key.  A block with two disagreeing RHS groups
        puts *every* one of its rows into some violating pair, so the
        collected row sets are complete blocks wherever a disagreement
        exists — exactly the blocks the shared evaluator needs, making
        bruteforce emission identical to the blocking strategies.

        Projections are memoized per distinct value, so the quadratic
        pair loop degenerates to dictionary lookups instead of running
        the projection regex twice per pair.
        """
        project = self.memo.projector(constrained)
        rows_by_key: Dict[Hashable, Set[int]] = {}
        for i_index in range(len(matching)):
            i = matching[i_index]
            left_projection = project(lhs_values[i])
            for j_index in range(i_index + 1, len(matching)):
                j = matching[j_index]
                report.comparisons += 1
                if rhs_values[i] == rhs_values[j]:
                    continue
                if left_projection is None:
                    continue
                if left_projection == project(lhs_values[j]):
                    rows_by_key.setdefault(left_projection, set()).update((i, j))
        return {key: sorted(rows) for key, rows in rows_by_key.items()}


def column_index_patcher(table: Table, attribute: str):
    """A :class:`TableArtifactCache` patcher applying table deltas to a
    cached :class:`PatternColumnIndex` — one posting move per edit, no
    regex re-evaluation (verdicts live in the MatchMemo, keyed by value).
    """

    def patch(index: PatternColumnIndex, deltas) -> Optional[PatternColumnIndex]:
        column = table.schema.index_of(attribute)
        for delta in deltas:
            if isinstance(delta, CellEdit):
                if delta.column == attribute:
                    index.apply_edit(delta.row, delta.old, delta.new)
            elif isinstance(delta, RowAppend):
                index.apply_append(delta.row, delta.values[column])
            elif isinstance(delta, RowDelete):
                index.apply_delete(delta.row, delta.values[column])
            else:  # unknown delta kind: decline, forcing a rebuild
                return None
        return index

    return patch
