"""Single rule-evaluation engine shared by every execution strategy.

The paper's detection semantics (Section 3) come in two families —
constant tableau rules checked row by row, and variable rules checked
per ``≡_Q`` block with majority-witness selection — and every execution
strategy (scan, index, bruteforce, incremental maintenance) must emit
*identical* violations for the same table.  This module is the one place
those semantics live:

* :class:`ConstantRuleEvaluator` — LHS match / RHS satisfaction checks
  and per-row :class:`~repro.detection.violation.Violation` construction
  for one constant tableau rule;
* :class:`VariableRuleEvaluator` — RHS splitting of a ``≡_Q`` block,
  majority tie-breaking, witness selection, and violation construction
  for one variable tableau rule.

Each evaluator has two entry points.  ``emit_full`` serves batch
detection: given the rows (or blocks) in scope it yields the rule's
violations without retaining state.  The fine-grained hooks
(``seed_full``, ``reevaluate_row``, ``move_row``, ``append_row``,
``delete_row``, ``rederive_block``) serve incremental maintenance: the
evaluator keeps per-rule state current under table deltas and ``emit()``
returns the maintained violations.  Both paths share the same core
(``block_violations_for`` / ``make_violation``), so batch and
incremental runs cannot drift apart.

Pattern verdicts and constrained projections are always read through a
:class:`~repro.perf.memo.MatchMemo` (one regex run per distinct value),
and the callers hand in rows/blocks resolved via the shared
``TABLE_ARTIFACTS`` cache — the evaluators only own *semantics*, never
candidate enumeration.
"""

from __future__ import annotations

from dataclasses import replace
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.constrained.constrained_pattern import ConstrainedPattern
from repro.detection.blocking import (
    add_row_to_blocks,
    majority_value,
    remove_row_from_blocks,
    renumber_blocks_after_delete,
    split_block_by_rhs,
)
from repro.detection.violation import Violation, ViolationKind, ViolationReport
from repro.errors import DetectionError
from repro.patterns.pattern import Pattern
from repro.perf.memo import MatchMemo
from repro.pfd.pfd import PFD
from repro.pfd.tableau import Wildcard, cell_matches, cell_to_text


def as_constrained(lhs_cell) -> ConstrainedPattern:
    """Normalize a variable rule's LHS cell to a constrained pattern."""
    if isinstance(lhs_cell, ConstrainedPattern):
        return lhs_cell
    if isinstance(lhs_cell, Pattern):
        return ConstrainedPattern.whole_value(lhs_cell)
    if isinstance(lhs_cell, str):
        return ConstrainedPattern.whole_value(Pattern.literal(lhs_cell))
    raise DetectionError(
        f"variable rule has an unsupported LHS cell {lhs_cell!r}; "
        "expected a pattern or constrained pattern"
    )


def shift_violation_after_delete(violation: Violation, deleted_row: int) -> Violation:
    """Renumber a violation's row references after a row deletion.

    The violation must not reference the deleted row itself (those are
    re-derived from their block instead of shifted).
    """

    def shift(row: int) -> int:
        return row - 1 if row > deleted_row else row

    return replace(
        violation,
        rows=tuple(shift(r) for r in violation.rows),
    )


def elect_expected_value(violations: Sequence[Violation]) -> Tuple[str, Violation, float]:
    """The expected value backed by the most violations over one cell.

    The repair layer's attribution semantics, kept next to the emission
    semantics that produce the ``expected_value`` fields it counts:
    returns ``(winner, backer, confidence)`` where ties keep the
    first-seen value (dict insertion order), the backer is an actual
    violation that voted for the winner, and the confidence is the
    fraction of the cell's violations that agree with it.
    """
    votes: Dict[str, int] = {}
    for violation in violations:
        votes[violation.expected_value] = votes.get(violation.expected_value, 0) + 1
    winner = max(votes, key=lambda value: votes[value])
    backer = next(v for v in violations if v.expected_value == winner)
    return winner, backer, votes[winner] / len(violations)


class ConstantRuleEvaluator:
    """One constant tableau rule's violation semantics.

    Stateless when driven through :meth:`emit_full`; stateful (a
    ``row → Violation`` map) when driven through the incremental hooks.
    """

    kind = ViolationKind.CONSTANT

    __slots__ = (
        "lhs", "rhs", "lhs_cell", "rhs_cell", "expected",
        "pfd_name", "rule_index", "rule_text", "violations",
    )

    def __init__(self, pfd: PFD, rule_index: int, rule) -> None:
        self.lhs = pfd.lhs_attribute
        self.rhs = pfd.rhs_attribute
        self.lhs_cell = rule.cell(self.lhs)
        self.rhs_cell = rule.cell(self.rhs)
        self.expected = cell_to_text(self.rhs_cell)
        self.pfd_name = pfd.name or str(pfd.fd)
        self.rule_index = rule_index
        self.rule_text = rule.render()
        #: row → its violation (only violating rows are stored)
        self.violations: Dict[int, Violation] = {}

    # -- semantic core ---------------------------------------------------------

    def lhs_matches(self, memo: MatchMemo, value: str) -> bool:
        if isinstance(self.lhs_cell, (Pattern, ConstrainedPattern)):
            return memo.matches(self.lhs_cell, value)
        return cell_matches(self.lhs_cell, value)

    def rhs_satisfied(self, memo: MatchMemo, value: str) -> bool:
        if isinstance(self.rhs_cell, (Pattern, ConstrainedPattern)):
            return memo.matches(self.rhs_cell, value)
        return cell_matches(self.rhs_cell, value)

    def make_violation(self, row: int, observed: str) -> Violation:
        return Violation(
            pfd_name=self.pfd_name,
            lhs_attribute=self.lhs,
            rhs_attribute=self.rhs,
            kind=ViolationKind.CONSTANT,
            rule_index=self.rule_index,
            rule_text=self.rule_text,
            rows=(row,),
            observed_value=observed,
            expected_value=self.expected,
        )

    # -- batch entry points ----------------------------------------------------

    def emit_full(
        self,
        rows: Iterable[int],
        rhs_values: Sequence[str],
        memo: MatchMemo,
        report: Optional[ViolationReport] = None,
    ) -> Iterator[Violation]:
        """Violations among ``rows`` (the rows whose LHS satisfies the
        rule — candidate enumeration stays with the caller/strategy).

        With a ``report`` the per-row RHS checks are counted into its
        ``comparisons`` statistic.
        """
        for row in rows:
            if report is not None:
                report.comparisons += 1
            observed = rhs_values[row]
            if self.rhs_satisfied(memo, observed):
                continue
            yield self.make_violation(row, observed)

    def emit_value_groups(
        self,
        value_groups: Iterable[Tuple[str, Sequence[int]]],
        memo: MatchMemo,
        report: Optional[ViolationReport] = None,
    ) -> Iterator[Violation]:
        """Violations among in-scope rows pre-grouped by their RHS value.

        ``value_groups`` yields ``(observed RHS value, rows holding it)``
        pairs covering the rows whose LHS satisfies the rule.  The RHS
        check runs once per *group* instead of once per row — the shape
        the sharded engine feeds from its merged distinct-value
        statistics — and the emitted violations are exactly
        :meth:`emit_full`'s for the union of the groups' rows.

        With a ``report`` each group counts one check into the
        ``comparisons`` statistic (the sharded engine's cost model is
        distinct-value-level, not row-level).
        """
        for observed, rows in value_groups:
            if report is not None:
                report.comparisons += 1
            if self.rhs_satisfied(memo, observed):
                continue
            for row in rows:
                yield self.make_violation(row, observed)

    # -- incremental state hooks -----------------------------------------------

    def seed_full(
        self, rows: Iterable[int], rhs_values: Sequence[str], memo: MatchMemo
    ) -> None:
        """(Re)build the maintained state from the rule's in-scope rows."""
        self.violations = {
            violation.rows[0]: violation
            for violation in self.emit_full(rows, rhs_values, memo)
        }

    def reevaluate_row(
        self, memo: MatchMemo, row: int, lhs_value: str, rhs_value: str
    ) -> None:
        """Recompute one row's membership after its LHS or RHS changed."""
        if self.lhs_matches(memo, lhs_value) and not self.rhs_satisfied(memo, rhs_value):
            self.violations[row] = self.make_violation(row, rhs_value)
        else:
            self.violations.pop(row, None)

    def append_row(
        self, memo: MatchMemo, row: int, lhs_value: str, rhs_value: str
    ) -> None:
        """Evaluate a freshly appended row (same check as a re-evaluation)."""
        self.reevaluate_row(memo, row, lhs_value, rhs_value)

    def delete_row(self, row: int) -> None:
        self.violations.pop(row, None)
        self.violations = {
            (r - 1 if r > row else r): (
                shift_violation_after_delete(v, row) if r > row else v
            )
            for r, v in self.violations.items()
        }

    def emit(self) -> Iterable[Violation]:
        for row in sorted(self.violations):
            yield self.violations[row]


class VariableRuleEvaluator:
    """One variable tableau rule's violation semantics.

    Stateless when driven through :meth:`emit_full` over derived blocks;
    stateful (``≡_Q`` blocks plus per-block violations) when driven
    through the incremental hooks.
    """

    kind = ViolationKind.VARIABLE

    __slots__ = (
        "lhs", "rhs", "constrained", "pfd_name", "rule_index", "rule_text",
        "blocks", "row_key", "block_violations",
    )

    def __init__(self, pfd: PFD, rule_index: int, rule) -> None:
        self.lhs = pfd.lhs_attribute
        self.rhs = pfd.rhs_attribute
        self.constrained = as_constrained(rule.cell(self.lhs))
        self.pfd_name = pfd.name or str(pfd.fd)
        self.rule_index = rule_index
        self.rule_text = rule.render()
        #: projection key → ascending row list (the ``≡_Q`` block)
        self.blocks: Dict[Hashable, List[int]] = {}
        #: row → its block key (rows whose projection is None are absent)
        self.row_key: Dict[int, Hashable] = {}
        #: block key → that block's current violations
        self.block_violations: Dict[Hashable, List[Violation]] = {}

    # -- semantic core ---------------------------------------------------------

    def block_violations_for(
        self, rows: Sequence[int], rhs_values: Sequence[str]
    ) -> List[Violation]:
        """One block's violations: split by RHS, pick the majority value
        (ties broken lexicographically), suspect every minority row with
        the majority's first row as witness."""
        if len(rows) < 2:
            return []
        return self.violations_for_groups(split_block_by_rhs(rows, rhs_values))

    def violations_for_groups(
        self, groups: Mapping[str, Sequence[int]]
    ) -> List[Violation]:
        """One block's violations from its pre-split ``RHS value → rows``
        groups.

        The semantic core shared by :meth:`block_violations_for` (which
        splits an in-order row list) and the sharded engine (which merges
        per-shard groups whose concatenated row lists are not globally
        sorted — hence the witness is ``min()`` of the majority group,
        which equals "first row" whenever the lists are ascending).
        """
        if len(groups) < 2:
            return []
        majority = majority_value(groups)
        witness = min(groups[majority])
        violations: List[Violation] = []
        for value, value_rows in groups.items():
            if value == majority:
                continue
            for row in value_rows:
                violations.append(
                    Violation(
                        pfd_name=self.pfd_name,
                        lhs_attribute=self.lhs,
                        rhs_attribute=self.rhs,
                        kind=ViolationKind.VARIABLE,
                        rule_index=self.rule_index,
                        rule_text=self.rule_text,
                        rows=(witness, row),
                        observed_value=value,
                        expected_value=majority,
                    )
                )
        return violations

    # -- batch entry point -----------------------------------------------------

    def emit_full(
        self,
        blocks: Union[Mapping[Hashable, Sequence[int]], Iterable[Sequence[int]]],
        rhs_values: Sequence[str],
        report: Optional[ViolationReport] = None,
    ) -> Iterator[Violation]:
        """Violations of every block (a ``key → rows`` mapping or a bare
        iterable of row lists — deriving the blocks stays with the
        caller/strategy).

        With a ``report`` every multi-row block counts its size into the
        ``comparisons`` statistic, matching the cost model of the
        blocking strategies; the bruteforce path passes no report since
        its pair loop already counted.
        """
        block_lists = blocks.values() if isinstance(blocks, Mapping) else blocks
        for rows in block_lists:
            if len(rows) < 2:
                continue
            if report is not None:
                report.comparisons += len(rows)
            yield from self.block_violations_for(rows, rhs_values)

    # -- incremental state hooks -----------------------------------------------

    def seed_full(
        self, memo: MatchMemo, lhs_values: Sequence[str], rhs_values: Sequence[str]
    ) -> None:
        """(Re)build blocks, row keys, and violations from full columns."""
        self.blocks = {}
        self.row_key = {}
        self.block_violations = {}
        project = memo.projector(self.constrained)
        for row, value in enumerate(lhs_values):
            key = project(value)
            if key is None:
                continue
            self.blocks.setdefault(key, []).append(row)
            self.row_key[row] = key
        for key, rows in self.blocks.items():
            violations = self.block_violations_for(rows, rhs_values)
            if violations:
                self.block_violations[key] = violations

    def rederive_block(self, key: Hashable, rhs_values: Sequence[str]) -> None:
        """Recompute one block's violations through the shared core."""
        self.block_violations.pop(key, None)
        rows = self.blocks.get(key)
        if rows is None:
            return
        violations = self.block_violations_for(rows, rhs_values)
        if violations:
            self.block_violations[key] = violations

    def move_row(
        self,
        memo: MatchMemo,
        row: int,
        new_lhs_value: str,
        rhs_values: Sequence[str],
    ) -> None:
        """Re-home a row whose LHS value changed; re-derive both blocks."""
        old_key = self.row_key.get(row)
        new_key = memo.project(self.constrained, new_lhs_value)
        if old_key == new_key:
            # Same block (the violation payload carries no LHS values),
            # or still unmatched: nothing can have changed.
            return
        if old_key is not None:
            remove_row_from_blocks(self.blocks, old_key, row)
            self.rederive_block(old_key, rhs_values)
        if new_key is None:
            self.row_key.pop(row, None)
        else:
            add_row_to_blocks(self.blocks, new_key, row)
            self.row_key[row] = new_key
            self.rederive_block(new_key, rhs_values)

    def rhs_changed(self, row: int, rhs_values: Sequence[str]) -> None:
        key = self.row_key.get(row)
        if key is not None:
            self.rederive_block(key, rhs_values)

    def append_row(
        self,
        memo: MatchMemo,
        row: int,
        lhs_value: str,
        rhs_values: Sequence[str],
    ) -> None:
        key = memo.project(self.constrained, lhs_value)
        if key is None:
            return
        add_row_to_blocks(self.blocks, key, row)
        self.row_key[row] = key
        self.rederive_block(key, rhs_values)

    def delete_row(self, row: int, rhs_values: Sequence[str]) -> None:
        """Unpost a deleted row, renumber everything behind it, and
        re-derive the block it left (``rhs_values`` are post-delete)."""
        key = self.row_key.pop(row, None)
        if key is not None:
            remove_row_from_blocks(self.blocks, key, row)
        renumber_blocks_after_delete(self.blocks, row)
        self.row_key = {
            (r - 1 if r > row else r): k for r, k in self.row_key.items()
        }
        # Untouched blocks only need their stored row references shifted;
        # membership, majorities, and witnesses are unchanged for them.
        self.block_violations = {
            k: [shift_violation_after_delete(v, row) for v in violations]
            for k, violations in self.block_violations.items()
            if k != key
        }
        if key is not None:
            self.rederive_block(key, rhs_values)

    def emit(self) -> Iterable[Violation]:
        collected: List[Violation] = []
        for violations in self.block_violations.values():
            collected.extend(violations)
        collected.sort(key=lambda v: (v.rows, v.suspect_cell))
        return collected


#: Either evaluator family (they share the entry-point protocol).
RuleEvaluator = Union[ConstantRuleEvaluator, VariableRuleEvaluator]


def make_rule_evaluator(pfd: PFD, rule_index: int, rule) -> RuleEvaluator:
    """The evaluator for one tableau rule: a wildcard RHS makes it a
    variable rule, anything else a constant rule."""
    if isinstance(rule.cell(pfd.rhs_attribute), Wildcard):
        return VariableRuleEvaluator(pfd, rule_index, rule)
    return ConstantRuleEvaluator(pfd, rule_index, rule)


def build_rule_evaluators(pfd: PFD) -> List[RuleEvaluator]:
    """One evaluator per tableau rule, in tableau order."""
    return [
        make_rule_evaluator(pfd, rule_index, rule)
        for rule_index, rule in enumerate(pfd.tableau)
    ]
