"""Blocking for variable-PFD detection.

The brute-force check of a variable PFD compares all pairs of tuples
matching the LHS pattern — quadratic in the worst case.  "The quadratic
time complexity can be avoided using blocking": tuples are first grouped
by the constrained projection of their LHS value (the ``≡_Q``
equivalence class), and only tuples inside the same block need to be
compared; within a block the RHS values either all agree (no violation)
or can be split by value, which is linear per block.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.constrained.constrained_pattern import ConstrainedPattern
from repro.perf.memo import MatchMemo


def block_by_key(
    rows: Sequence[int],
    values: Sequence[str],
    key: Callable[[str], Optional[Hashable]],
) -> Dict[Hashable, List[int]]:
    """Group rows by an arbitrary key of their value.

    Rows whose key is None (the value does not participate) are dropped.
    """
    blocks: Dict[Hashable, List[int]] = {}
    for row in rows:
        block_key = key(values[row])
        if block_key is None:
            continue
        blocks.setdefault(block_key, []).append(row)
    return blocks


def block_by_projection(
    rows: Sequence[int],
    values: Sequence[str],
    pattern: ConstrainedPattern,
    memo: Optional[MatchMemo] = None,
) -> Dict[Tuple[str, ...], List[int]]:
    """Group rows by the constrained projection ``s(Q)`` of their value.

    With a ``memo`` the projection regex runs once per distinct value
    instead of once per row (and the verdicts are shared with every
    other rule over the same pattern).
    """
    if memo is not None:
        return block_by_key(rows, values, memo.projector(pattern))
    return block_by_key(rows, values, pattern.blocking_key)


def split_block_by_rhs(
    block_rows: Sequence[int], rhs_values: Sequence[str]
) -> Dict[str, List[int]]:
    """Split one block by the RHS value of its rows."""
    groups: Dict[str, List[int]] = {}
    for row in block_rows:
        groups.setdefault(rhs_values[row], []).append(row)
    return groups


def majority_value(groups: Dict[str, List[int]]) -> str:
    """The RHS value held by the largest share of a block (ties broken
    lexicographically so results are deterministic)."""
    return max(groups, key=lambda value: (len(groups[value]), value))
