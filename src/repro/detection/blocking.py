"""Blocking for variable-PFD detection.

The brute-force check of a variable PFD compares all pairs of tuples
matching the LHS pattern — quadratic in the worst case.  "The quadratic
time complexity can be avoided using blocking": tuples are first grouped
by the constrained projection of their LHS value (the ``≡_Q``
equivalence class), and only tuples inside the same block need to be
compared; within a block the RHS values either all agree (no violation)
or can be split by value, which is linear per block.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.constrained.constrained_pattern import ConstrainedPattern
from repro.perf.memo import MatchMemo


def block_by_key(
    rows: Sequence[int],
    values: Sequence[str],
    key: Callable[[str], Optional[Hashable]],
) -> Dict[Hashable, List[int]]:
    """Group rows by an arbitrary key of their value.

    Rows whose key is None (the value does not participate) are dropped.
    """
    blocks: Dict[Hashable, List[int]] = {}
    for row in rows:
        block_key = key(values[row])
        if block_key is None:
            continue
        blocks.setdefault(block_key, []).append(row)
    return blocks


def block_by_projection(
    rows: Sequence[int],
    values: Sequence[str],
    pattern: ConstrainedPattern,
    memo: Optional[MatchMemo] = None,
) -> Dict[Tuple[str, ...], List[int]]:
    """Group rows by the constrained projection ``s(Q)`` of their value.

    With a ``memo`` the projection regex runs once per distinct value
    instead of once per row (and the verdicts are shared with every
    other rule over the same pattern).
    """
    if memo is not None:
        return block_by_key(rows, values, memo.projector(pattern))
    return block_by_key(rows, values, pattern.blocking_key)


# -- partial updates -------------------------------------------------------------
#
# Blocks are plain ``key → sorted row list`` dicts, so maintaining them
# under table deltas is dictionary surgery: the helpers below keep the
# row lists sorted ascending (the invariant the violation emitter relies
# on for deterministic witnesses) without re-projecting untouched rows.


def add_row_to_blocks(
    blocks: Dict[Hashable, List[int]], key: Optional[Hashable], row: int
) -> None:
    """Insert a row into its block (no-op when the key is None)."""
    if key is None:
        return
    bisect.insort(blocks.setdefault(key, []), row)


def remove_row_from_blocks(
    blocks: Dict[Hashable, List[int]], key: Hashable, row: int
) -> None:
    """Remove a row from its block, dropping the block when it empties."""
    rows = blocks.get(key)
    at = bisect.bisect_left(rows, row) if rows is not None else 0
    if rows is None or at == len(rows) or rows[at] != row:
        raise ValueError(f"blocks out of sync: row {row} not in block {key!r}")
    del rows[at]
    if not rows:
        del blocks[key]


def renumber_blocks_after_delete(
    blocks: Dict[Hashable, List[int]], deleted_row: int
) -> None:
    """Shift every row index behind a deleted row down by one.

    Row lists are sorted ascending (the emitter invariant), so the rows
    to decrement form a suffix located by binary search — blocks wholly
    below the deleted row cost one ``bisect`` instead of a full rewrite.
    """
    for rows in blocks.values():
        for i in range(bisect.bisect_right(rows, deleted_row), len(rows)):
            rows[i] -= 1


def split_block_by_rhs(
    block_rows: Sequence[int], rhs_values: Sequence[str]
) -> Dict[str, List[int]]:
    """Split one block by the RHS value of its rows."""
    groups: Dict[str, List[int]] = {}
    for row in block_rows:
        groups.setdefault(rhs_values[row], []).append(row)
    return groups


def majority_value(groups: Dict[str, List[int]]) -> str:
    """The RHS value held by the largest share of a block (ties broken
    lexicographically so results are deterministic)."""
    return max(groups, key=lambda value: (len(groups[value]), value))
