"""Per-column pattern index.

"For better performance, we create an index supporting regular
expressions for each column present on the LHS of the PFDs.  In this
case, the search for violations will be limited to those tuples that
match tp[A]."  This module implements that index with three
accelerations:

* matching is evaluated once per *distinct* value rather than once per
  row (columns such as city or gender have few distinct values), and the
  verdicts are memoized in the shared :class:`~repro.perf.memo.MatchMemo`
  so every rule touching the column reuses them;
* patterns with a literal prefix (``850\\D{7}``, ``6060\\D``) are answered
  from a sorted array of distinct values via binary search on the prefix,
  so only values sharing the prefix are regex-tested;
* row lists are stored and returned as immutable tuples — lookups hand
  out references, never copies.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.constrained.constrained_pattern import ConstrainedPattern
from repro.kernels.match import batch_matching_values
from repro.kernels.runtime import kernels_enabled
from repro.patterns.pattern import Pattern
from repro.perf.memo import MatchMemo, MATCH_MEMO


def narrow_candidates_by_prefix(
    sorted_values: Sequence[str],
    pattern: Union[Pattern, ConstrainedPattern],
) -> Sequence[str]:
    """Distinct values (from an ascending list) that could match the
    pattern, narrowed to the slice sharing its literal prefix.

    Shared by :class:`PatternColumnIndex` and the sharded engine's merged
    distinct-value statistics: patterns with a literal prefix
    (``850\\D{7}``) are answered with two binary searches, so only values
    starting with the prefix are regex-tested.
    """
    prefix = ""
    if isinstance(pattern, Pattern):
        prefix = pattern.literal_prefix()
    elif isinstance(pattern, ConstrainedPattern):
        prefix = pattern.segments[0].pattern.literal_prefix()
    if not prefix:
        return sorted_values
    low = bisect.bisect_left(sorted_values, prefix)
    # The upper bound is the prefix with its last character bumped —
    # every string starting with the prefix sorts below it.
    upper_key = prefix[:-1] + chr(ord(prefix[-1]) + 1)
    high = bisect.bisect_left(sorted_values, upper_key)
    return sorted_values[low:high]


class PatternColumnIndex:
    """An index over one column answering "which rows match this pattern?"."""

    def __init__(self, values: Sequence[str]):
        self._n_rows = len(values)
        rows_by_value: Dict[str, List[int]] = {}
        for row, value in enumerate(values):
            rows_by_value.setdefault(value, []).append(row)
        #: value → immutable tuple of row indexes (shared, never copied)
        self._rows_by_value: Dict[str, Tuple[int, ...]] = {
            value: tuple(rows) for value, rows in rows_by_value.items()
        }
        self._sorted_values: List[str] = sorted(self._rows_by_value)
        #: statistics: how many distinct values were regex-tested by the
        #: last lookup (used by the strategy-comparison benchmark)
        self.last_candidates_tested = 0

    # -- stats ---------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_distinct(self) -> int:
        return len(self._sorted_values)

    def rows_of_value(self, value: str) -> Tuple[int, ...]:
        """Rows holding exactly ``value`` (a shared immutable tuple)."""
        return self._rows_by_value.get(value, ())

    # -- lookups -----------------------------------------------------------------

    def _candidate_values(self, pattern: Union[Pattern, ConstrainedPattern]) -> Sequence[str]:
        """Distinct values that could match, narrowed by literal prefix."""
        return narrow_candidates_by_prefix(self._sorted_values, pattern)

    def matching_values(
        self,
        pattern: Union[Pattern, ConstrainedPattern],
        memo: Optional[MatchMemo] = None,
    ) -> List[str]:
        """Distinct values matching the pattern (memoized verdicts).

        Plain patterns run through the vectorized batch matcher when the
        kernels are enabled (identical verdicts, same memo tables);
        constrained patterns always use the scalar matcher.
        """
        memo = MATCH_MEMO if memo is None else memo
        candidates = self._candidate_values(pattern)
        self.last_candidates_tested = len(candidates)
        if isinstance(pattern, Pattern) and kernels_enabled():
            return batch_matching_values(pattern, candidates, memo=memo)
        matches = memo.matcher(pattern)
        return [value for value in candidates if matches(value)]

    def matching_rows(
        self,
        pattern: Union[Pattern, ConstrainedPattern],
        memo: Optional[MatchMemo] = None,
    ) -> List[int]:
        """Row indexes whose value matches the pattern, sorted."""
        rows: List[int] = []
        for value in self.matching_values(pattern, memo):
            rows.extend(self._rows_by_value[value])
        rows.sort()
        return rows

    def matching_constant(self, constant: str) -> Tuple[int, ...]:
        """Rows equal to a constant (degenerate pattern)."""
        return self.rows_of_value(constant)

    # -- partial updates ----------------------------------------------------------
    #
    # The incremental-maintenance path (repro.detection.incremental and the
    # delta-aware artifact cache) patches a live index under table deltas
    # instead of rebuilding it: an edit moves one row between two postings,
    # an append adds one posting entry, a delete removes one and renumbers
    # the rows behind it.  Pattern verdicts are *not* stored here (they
    # live in the MatchMemo keyed by value), so no regex ever reruns.

    def _add_row(self, value: str, row: int) -> None:
        rows = self._rows_by_value.get(value)
        if rows is None:
            self._rows_by_value[value] = (row,)
            bisect.insort(self._sorted_values, value)
            return
        at = bisect.bisect_left(rows, row)
        self._rows_by_value[value] = rows[:at] + (row,) + rows[at:]

    def _remove_row(self, value: str, row: int) -> None:
        rows = self._rows_by_value.get(value)
        if rows is None or row not in rows:
            raise ValueError(
                f"index out of sync: row {row} not posted under value {value!r}"
            )
        if len(rows) == 1:
            del self._rows_by_value[value]
            at = bisect.bisect_left(self._sorted_values, value)
            del self._sorted_values[at]
            return
        self._rows_by_value[value] = tuple(r for r in rows if r != row)

    def apply_edit(self, row: int, old: str, new: str) -> None:
        """Move one row between value postings after a cell edit."""
        if old == new:
            return
        self._remove_row(old, row)
        self._add_row(new, row)

    def apply_append(self, row: int, value: str) -> None:
        """Post a freshly appended row (``row`` must be the new last row)."""
        if row != self._n_rows:
            raise ValueError(
                f"appended row {row} is not the next row of a {self._n_rows}-row index"
            )
        self._add_row(value, row)
        self._n_rows += 1

    def apply_delete(self, row: int, old: str) -> None:
        """Unpost a deleted row and renumber the rows behind it."""
        self._remove_row(old, row)
        self._n_rows -= 1
        self._rows_by_value = {
            value: tuple(r if r < row else r - 1 for r in rows)
            for value, rows in self._rows_by_value.items()
        }
