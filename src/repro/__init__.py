"""repro — a reproduction of ANMAT (SIGMOD 2019).

ANMAT discovers *pattern functional dependencies* (PFDs) from dirty
relational data and uses them to detect erroneous cells.  This package
implements the full system described in the paper:

* :mod:`repro.dataset` — an in-memory relational table substrate with CSV
  I/O, type inference and column profiling.
* :mod:`repro.patterns` — the restricted pattern language built on the
  generalization tree (Figure 1 of the paper): parsing, matching,
  containment and pattern generalization.
* :mod:`repro.constrained` — constrained patterns and the ``≡_Q``
  equivalence used by variable PFDs.
* :mod:`repro.pfd` — the PFD model: embedded FD + pattern tableau.
* :mod:`repro.discovery` — the Discover-PFDs algorithm (Figure 2).
* :mod:`repro.detection` — error detection with constant and variable
  PFDs, pattern indexes, and blocking.
* :mod:`repro.sharding` — sharded, out-of-core discovery and detection
  over mergeable per-shard statistics, canonically equal to a
  monolithic run.
* :mod:`repro.baselines` — FD/CFD discovery and detection plus a
  pattern-outlier detector, used for comparison experiments.
* :mod:`repro.anmat` — the end-to-end ANMAT workflow (project store,
  session, report rendering, CLI).
* :mod:`repro.datagen` — seeded synthetic dataset generators standing in
  for the demo's proprietary datasets.
* :mod:`repro.metrics` — precision/recall evaluation against injected
  ground truth.

Quickstart::

    from repro import Table, PfdDiscoverer, ErrorDetector

    table = Table.from_rows(
        ["zip", "city"],
        [["90001", "Los Angeles"], ["90002", "Los Angeles"],
         ["90003", "Los Angeles"], ["90004", "New York"]],
    )
    pfds = PfdDiscoverer().discover(table)
    violations = ErrorDetector(table).detect_all(pfds)
"""

from repro.dataset import Attribute, Schema, Table
from repro.patterns import Pattern, parse_pattern
from repro.constrained import ConstrainedPattern
from repro.pfd import PFD, EmbeddedFD, PatternTableau, TableauRow, WILDCARD
from repro.discovery import DiscoveryConfig, PfdDiscoverer
from repro.detection import ErrorDetector, Violation
from repro.sharding import ShardedDetector, ShardedDiscoverer, ShardedTable
from repro.anmat import AnmatSession

__all__ = [
    "Attribute",
    "Schema",
    "Table",
    "Pattern",
    "parse_pattern",
    "ConstrainedPattern",
    "PFD",
    "EmbeddedFD",
    "PatternTableau",
    "TableauRow",
    "WILDCARD",
    "DiscoveryConfig",
    "PfdDiscoverer",
    "ErrorDetector",
    "Violation",
    "ShardedDetector",
    "ShardedDiscoverer",
    "ShardedTable",
    "AnmatSession",
]

__version__ = "1.0.0"
