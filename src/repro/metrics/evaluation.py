"""Cell-level precision / recall / F1 for error detection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set, Tuple

from repro.detection.violation import ViolationReport
from repro.errors import EvaluationError

#: A cell reference: (row index, attribute name).
Cell = Tuple[int, str]


@dataclass(frozen=True)
class DetectionEvaluation:
    """Confusion counts and derived scores for one detector run."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        if denominator == 0:
            return 0.0
        return self.true_positives / denominator

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        if denominator == 0:
            return 0.0
        return self.true_positives / denominator

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    def as_row(self) -> Tuple[int, int, int, float, float, float]:
        """(tp, fp, fn, precision, recall, f1) — handy for report tables."""
        return (
            self.true_positives,
            self.false_positives,
            self.false_negatives,
            self.precision,
            self.recall,
            self.f1,
        )


def evaluate_cells(detected: Iterable[Cell], ground_truth: Iterable[Cell]) -> DetectionEvaluation:
    """Compare a set of flagged cells against the injected error cells."""
    detected_set: Set[Cell] = set(detected)
    truth_set: Set[Cell] = set(ground_truth)
    for cell in detected_set | truth_set:
        if not (isinstance(cell, tuple) and len(cell) == 2):
            raise EvaluationError(f"cells must be (row, attribute) pairs, got {cell!r}")
    true_positives = len(detected_set & truth_set)
    return DetectionEvaluation(
        true_positives=true_positives,
        false_positives=len(detected_set - truth_set),
        false_negatives=len(truth_set - detected_set),
    )


def evaluate_report(report: ViolationReport, ground_truth: Iterable[Cell]) -> DetectionEvaluation:
    """Evaluate a violation report's suspect cells against ground truth."""
    return evaluate_cells(report.suspect_cells(), ground_truth)
