"""Evaluation metrics.

The demo paper reports discovered PFDs and detected errors qualitatively;
because our stand-in datasets are generated with known injected errors we
can additionally measure cell-level precision/recall of every detector,
which is what the comparison benchmarks (E9/E10 in DESIGN.md) report.
"""

from repro.metrics.evaluation import (
    DetectionEvaluation,
    evaluate_cells,
    evaluate_report,
)
from repro.metrics.stats import summarize_counts, mean, percentile

__all__ = [
    "DetectionEvaluation",
    "evaluate_cells",
    "evaluate_report",
    "summarize_counts",
    "mean",
    "percentile",
]
