"""Small numeric helpers used by the benchmark harnesses."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import EvaluationError


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0 ≤ q ≤ 100) using linear interpolation."""
    if not values:
        raise EvaluationError("percentile of an empty sequence is undefined")
    if not 0.0 <= q <= 100.0:
        raise EvaluationError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def summarize_counts(counts: Dict[str, int]) -> Dict[str, float]:
    """Total / distinct / max-share summary of a frequency map."""
    total = sum(counts.values())
    if total == 0:
        return {"total": 0, "distinct": 0, "max_share": 0.0}
    return {
        "total": total,
        "distinct": len(counts),
        "max_share": max(counts.values()) / total,
    }
