"""Incremental rule maintenance: edit batches as delta shards.

PR 2 made *violations* incremental; this module does the same for the
mined *rule set*.  A re-check after an interactive edit batch used to
re-run full discovery — re-profiling every column, re-tokenizing every
LHS, re-mining every candidate — even though a batch of cell repairs
touches a handful of shards and a couple of columns.

:class:`RuleMaintainer` keeps the baseline of the last sharded discovery
run (the sealed view, its shard versions, the per-candidate reports, the
per-column profiles) and, given the freshly sealed view of the edited
overlay, maintains the rule set instead of recomputing it:

1. **Dirty shards** are the version diff between the two seals
   (:meth:`~repro.sharding.sharded_table.ShardedTable.dirty_shards`) —
   overlay seals are snapshots, so untouched shards keep identical
   versions across seals.
2. **Changed columns** are found by comparing each dirty shard's old and
   new contents column-wise (prefiltered to the columns the overlay
   actually edited), which also recognizes edits that restored the
   original value.
3. **Profiles** are rebuilt for changed columns only; clean columns
   reuse their baseline :class:`~repro.dataset.profiling.ColumnProfile`
   (so candidate generation sees byte-identical inputs).
4. **Candidates** are recomputed from the updated profile — the same
   deterministic :func:`~repro.discovery.candidates.candidate_dependencies`
   full discovery runs.
5. **Mining** runs only for candidates touching a changed column (or
   new to the candidate set), through the existing per-candidate loop
   bodies — kernel and scalar paths both.  A candidate's report is a
   pure function of its two column value sequences, so clean candidates
   reuse their baseline report and the assembled rule set is *identical*
   to a full re-discovery (the differential gate in
   ``tests/discovery/test_maintenance.py`` asserts this).

The delta-shard statistics of :mod:`repro.sharding.stats` carry the
maintained state forward: stored LHS tokenizations are updated with
:func:`~repro.sharding.stats.splice_tokenization` (retract the dirty
shard's rows, splice in the replacement), and the merged pair groups a
previous detection run left on the old view are moved to the new view
via :func:`~repro.sharding.stats.unmerge_pair_groups` /
:func:`~repro.sharding.stats.merge_into_pair_groups` —
``merged = base − old_delta + new_delta`` — so the re-detection that
follows a re-check skips the cross-shard merge as well.

Structural changes (appends, deletes, repartitions) shift global row
ids and change *every* column's value sequence, which would dirty every
candidate — exactly a full re-discovery.  :meth:`RuleMaintainer.maintain`
returns ``None`` for those; the caller falls back to the full pipeline
and re-seeds (the planner records the fallback as a plan decision).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dataset.profiling import ColumnProfileBuilder, TableProfile
from repro.discovery.candidates import CandidateDependency, candidate_dependencies
from repro.discovery.config import DiscoveryConfig
from repro.discovery.decision import DecisionFunction
from repro.discovery.discoverer import (
    DependencyReport,
    DiscoveryResult,
    PfdDiscoverer,
)
from repro.discovery.inverted_index import ColumnTokenization
from repro.kernels.encoder import ColumnEncoding, encode_chunks
from repro.kernels.runtime import kernels_enabled
from repro.kernels.tokenize import batch_tokenize, tokenization_from_encoding
from repro.sharding.overlay import OverlayShardStore
from repro.sharding.sharded_table import ShardedTable
from repro.sharding.stats import (
    extract_pair_groups,
    merge_into_pair_groups,
    merge_tokenizations,
    splice_tokenization,
    unmerge_pair_groups,
)

#: a report is keyed by what determines it: the attribute pair plus the
#: LHS token mode (the mode can flip when the LHS profile changes)
ReportKey = Tuple[str, str, str]


def _report_key(candidate: CandidateDependency) -> ReportKey:
    return (candidate.lhs, candidate.rhs, candidate.lhs_mode)


def _base_of(view: ShardedTable) -> ShardedTable:
    """The immutable base behind a (possibly overlay-sealed) view."""
    store = view.store
    if isinstance(store, OverlayShardStore):
        return store.base
    return view


class RuleMaintainer:
    """Maintains a discovered rule set under overlay edit batches.

    Sits beside :class:`~repro.detection.incremental.IncrementalDetector`
    in the session: the detector keeps the *violations* current per
    edit, the maintainer keeps the *rules* current per re-check.  Seed
    it with a sharded discovery run (:meth:`seed`), then hand each
    re-check's freshly sealed view to :meth:`maintain`.
    """

    def __init__(
        self,
        config: Optional[DiscoveryConfig] = None,
        decision: Optional[DecisionFunction] = None,
    ):
        #: supplies the miners, the per-candidate loop bodies, and the
        #: assemble stage — the same pipeline full discovery runs
        self.discoverer = PfdDiscoverer(config, decision)
        self.config = self.discoverer.config
        self.timers = self.discoverer.timers
        self._view: Optional[ShardedTable] = None
        self._versions: Tuple[int, ...] = ()
        self._row_counts: List[int] = []
        self._n_rows = 0
        self._reports: Dict[ReportKey, DependencyReport] = {}
        self._profiles: Dict[str, object] = {}
        #: maintained merged LHS tokenizations, (column, mode) → statistic
        self._tokenizations: Dict[Tuple[str, str], ColumnTokenization] = {}

    @property
    def seeded(self) -> bool:
        """Whether a baseline discovery run has been adopted."""
        return self._view is not None

    def seed(self, view: ShardedTable, result: DiscoveryResult) -> None:
        """Adopt a sharded discovery run over ``view`` as the baseline.

        Cheap — stores references and the shard-version snapshot; the
        maintained tokenizations are built lazily at the first
        :meth:`maintain` that needs them.
        """
        self._view = view
        self._versions = view.versions()
        self._row_counts = list(view.shard_row_counts())
        self._n_rows = view.n_rows
        self._reports = {
            _report_key(report.candidate): report for report in result.reports
        }
        self._profiles = dict(result.profile.columns)
        self._tokenizations = {}

    def reset(self) -> None:
        """Drop the baseline (e.g. when the dataset is replaced)."""
        self._view = None
        self._versions = ()
        self._row_counts = []
        self._reports = {}
        self._profiles = {}
        self._tokenizations = {}

    # -- the maintenance pass ---------------------------------------------------

    def maintain(
        self, view: ShardedTable, relation: Optional[str] = None
    ) -> Optional[DiscoveryResult]:
        """Bring the rule set up to date with a freshly sealed view.

        Returns the maintained :class:`DiscoveryResult` — identical to a
        full re-discovery over ``view`` — and advances the baseline to
        it.  Returns ``None`` when the baseline does not align
        (unseeded, a different base dataset, a repartition, or a
        structural change such as appends/deletes, where every candidate
        would re-mine anyway): the caller runs full discovery instead
        and re-seeds.
        """
        started = time.perf_counter()
        old_view = self._view
        if old_view is None:
            return None
        if view.column_names() != old_view.column_names():
            return None
        if _base_of(view) is not _base_of(old_view):
            # different base shards (repartition, reload): the version
            # spaces are not comparable, no diff is possible
            return None
        new_counts = view.shard_row_counts()
        if new_counts != self._row_counts:
            # appends/deletes shift global row ids and change every
            # column's value sequence — a full re-mine in disguise
            return None

        dirty = view.dirty_shards(self._versions)
        changed_in_shard, changed_columns = self._diff_columns(view, dirty)

        with self.timers.stage("tokenize"):
            self._splice_tokenizations(view, dirty, changed_in_shard)
        with self.timers.stage("pair_groups"):
            self._carry_pair_groups(view, dirty, changed_in_shard)

        with self.timers.stage("profile"):
            profile = self._maintained_profile(view, changed_columns)
        with self.timers.stage("candidates"):
            candidates = candidate_dependencies(view, self.config, profile)

        with self.timers.stage("mine"):
            reports: List[DependencyReport] = []
            for candidate in candidates:
                baseline = self._reports.get(_report_key(candidate))
                if (
                    baseline is not None
                    and candidate.lhs not in changed_columns
                    and candidate.rhs not in changed_columns
                ):
                    # clean candidate: same value sequences, same report
                    reports.append(baseline)
                else:
                    reports.append(self._remine(view, candidate))
        with self.timers.stage("assemble"):
            pfds = self.discoverer.assemble_pfds(candidates, reports, relation)

        # same memory hygiene as the sharded discoverer: the O(n) mining
        # merges must not be carried past discovery
        view.drop_merged_artifacts(
            "column_concat",
            "column_encoding",
            "kernel_triples",
            "merged_tokenization",
        )

        # advance the baseline to the maintained state
        self._view = view
        self._versions = view.versions()
        self._row_counts = new_counts
        self._reports = {
            _report_key(report.candidate): report for report in reports
        }
        self._profiles = dict(profile.columns)

        return DiscoveryResult(
            pfds=pfds,
            reports=reports,
            profile=profile,
            config=self.config,
            elapsed_seconds=time.perf_counter() - started,
        )

    # -- change detection -------------------------------------------------------

    def _diff_columns(
        self, view: ShardedTable, dirty: Sequence[int]
    ) -> Tuple[Dict[int, Set[str]], Set[str]]:
        """Per dirty shard, the columns whose contents actually changed.

        The overlay's edited-column sets prefilter the comparison (only
        columns with at least one edit can differ between seals); the
        element-wise check then drops edits that restored the original
        value, so a reverted batch dirties nothing.
        """
        names = view.column_names()
        new_store = view.store
        old_view = self._view
        changed_in_shard: Dict[int, Set[str]] = {}
        changed_columns: Set[str] = set()
        for index in dirty:
            if isinstance(new_store, OverlayShardStore):
                compare = [
                    names[j] for j in sorted(new_store.edited_columns(index))
                ]
            else:
                compare = names
            old_shard = old_view.store.get(index)
            new_shard = view.store.get(index)
            changed: Set[str] = set()
            for name in compare:
                if old_shard.column_ref(name) != new_shard.column_ref(name):
                    changed.add(name)
            changed_in_shard[index] = changed
            changed_columns |= changed
        return changed_in_shard, changed_columns

    # -- maintained statistics --------------------------------------------------

    def _splice_tokenizations(
        self,
        view: ShardedTable,
        dirty: Sequence[int],
        changed_in_shard: Dict[int, Set[str]],
    ) -> None:
        """``merged = base − old_delta + new_delta`` for every stored LHS
        tokenization whose column changed: the dirty shard's row range is
        retracted and the re-extracted shard rows are spliced in."""
        for (column, mode), tokenization in self._tokenizations.items():
            for index in dirty:
                if column not in changed_in_shard[index]:
                    continue
                replacement = ColumnTokenization.extract(
                    view.store.get(index).column_ref(column),
                    mode,
                    self.config.ngram_size,
                ).row_tokens
                splice_tokenization(
                    tokenization,
                    view.offset_of(index),
                    self._row_counts[index],
                    replacement,
                )

    def _maintained_tokenization(
        self, view: ShardedTable, column: str, mode: str
    ) -> ColumnTokenization:
        """The merged LHS tokenization for one column, built shard-wise
        on first use and kept current by :meth:`_splice_tokenizations`
        on every later maintain."""
        key = (column, mode)
        tokenization = self._tokenizations.get(key)
        if tokenization is None:
            value_cache: Dict[str, tuple] = {}
            shard_rows = [
                ColumnTokenization.extract(
                    shard.column_ref(column),
                    mode,
                    self.config.ngram_size,
                    value_cache=value_cache,
                ).row_tokens
                for _offset, shard in view.iter_shards()
            ]
            tokenization = merge_tokenizations(
                mode, self.config.ngram_size, shard_rows
            )
            self._tokenizations[key] = tokenization
        return tokenization

    def _carry_pair_groups(
        self,
        view: ShardedTable,
        dirty: Sequence[int],
        changed_in_shard: Dict[int, Set[str]],
    ) -> None:
        """Move the old view's merged pair groups (built by the detection
        run that followed the baseline discovery) onto the new view.

        Pairs over clean columns are carried as-is; pairs touching a
        changed column have each dirty shard's contribution unmerged
        (extracted from the *old* shard — seals are snapshots, so it is
        still readable) and the replacement shard's merged back in.  The
        artifacts are primed into the new view's merged cache, so the
        re-detection after a re-check skips the cross-shard merge.
        """
        old_view = self._view
        if view is old_view:
            return  # nothing changed; the artifacts are already in place
        for key in old_view.merged_artifact_keys("merged_pair_groups"):
            merged = old_view.peek_merged_artifact(key)
            if merged is None:
                continue
            _tag, lhs, rhs = key
            for index in dirty:
                changed = changed_in_shard[index]
                if lhs not in changed and rhs not in changed:
                    continue
                offset = view.offset_of(index)
                old_shard = old_view.store.get(index)
                new_shard = view.store.get(index)
                unmerge_pair_groups(
                    merged,
                    extract_pair_groups(
                        old_shard.column_ref(lhs),
                        old_shard.column_ref(rhs),
                        offset,
                    ),
                )
                merge_into_pair_groups(
                    merged,
                    extract_pair_groups(
                        new_shard.column_ref(lhs),
                        new_shard.column_ref(rhs),
                        offset,
                    ),
                )
            view.prime_merged_artifact(key, merged)
        # the moved artifacts now reflect the *new* state; the old view
        # must not keep serving them
        old_view.drop_merged_artifacts("merged_pair_groups")

    # -- per-candidate re-mining ------------------------------------------------

    def _maintained_profile(
        self, view: ShardedTable, changed_columns: Set[str]
    ) -> TableProfile:
        """Baseline profiles for clean columns, a streaming rebuild for
        changed ones — assembled in schema order so candidate generation
        sees exactly what a full re-profile would."""
        columns = {}
        for name in view.column_names():
            if name in changed_columns or name not in self._profiles:
                builder = ColumnProfileBuilder(name)
                for _offset, shard in view.iter_shards():
                    builder.add(shard.column_ref(name))
                columns[name] = builder.finish()
            else:
                columns[name] = self._profiles[name]
        return TableProfile(n_rows=view.n_rows, columns=columns)

    def _remine(
        self, view: ShardedTable, candidate: CandidateDependency
    ) -> DependencyReport:
        """Re-mine one dirty candidate through the existing loop bodies
        (kernel path when enabled, with the batch paths' scalar
        fallback)."""
        if kernels_enabled(self.config.use_kernels):
            return self._remine_kernel(view, candidate)
        tokenization = None
        if self.config.discover_constant:
            tokenization = self._maintained_tokenization(
                view, candidate.lhs, candidate.lhs_mode
            )
        return self.discoverer.remine_candidate(
            candidate,
            view.column_concat(candidate.lhs),
            view.column_concat(candidate.rhs),
            tokenization=tokenization,
        )

    def _remine_kernel(
        self, view: ShardedTable, candidate: CandidateDependency
    ) -> DependencyReport:
        lhs_encoding = self._encoding(view, candidate.lhs)
        rhs_encoding = self._encoding(view, candidate.rhs)
        triples = None
        if self.config.discover_constant:
            triples = view.merged_artifact(
                (
                    "kernel_triples",
                    candidate.lhs,
                    candidate.lhs_mode,
                    self.config.ngram_size,
                ),
                lambda: batch_tokenize(
                    lhs_encoding, candidate.lhs_mode, self.config.ngram_size
                ),
            )
        report = self.discoverer.remine_candidate_encoded(
            candidate, lhs_encoding, rhs_encoding, triples
        )
        if report is None:
            tokenization = None
            if self.config.discover_constant:
                tokenization = tokenization_from_encoding(
                    lhs_encoding,
                    candidate.lhs_mode,
                    self.config.ngram_size,
                    triples,
                )
            report = self.discoverer.remine_candidate(
                candidate,
                view.column_concat(candidate.lhs),
                view.column_concat(candidate.rhs),
                tokenization=tokenization,
            )
        return report

    def _encoding(self, view: ShardedTable, name: str) -> ColumnEncoding:
        """One column's factorized encoding, streamed shard by shard
        (cached on the view for the other candidates of this pass)."""
        return view.merged_artifact(
            ("column_encoding", name),
            lambda: encode_chunks(
                shard.column_ref(name) for _offset, shard in view.iter_shards()
            ),
        )
