"""Mining variable PFDs (λ4 / λ5 of the paper).

A variable PFD asserts that tuples agreeing on a *constrained part* of
the LHS value agree on the RHS value.  Two families are searched, chosen
by the LHS column's shape:

* **constrained prefixes** for single-token, code-like columns — "the
  first 3 digits of a 5-digit zip code determine the city" (λ5);
* **constrained tokens** for multi-token text columns — "one's first
  name determines one's gender" (λ4).

For each candidate constraint the miner blocks the rows by the
constrained projection and measures how well the blocks agree on the RHS
value; the most general candidate (shortest prefix / earliest usable
token) whose agreement and coverage clear the thresholds is returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.constrained.constrained_pattern import (
    ConstrainedPattern,
    constrained_prefix,
    constrained_word_sequence,
)
from repro.discovery.config import DiscoveryConfig
from repro.patterns.generalize import generalize_strings
from repro.patterns.pattern import Pattern
from repro.patterns.tokenizer import cached_tokenize
from repro.perf.memo import MATCH_MEMO


@dataclass
class VariableCandidate:
    """A variable-PFD candidate with its quality statistics."""

    constrained_pattern: ConstrainedPattern
    coverage: float
    agreement: float
    n_blocks: int
    n_multi_blocks: int
    description: str

    @property
    def pattern_text(self) -> str:
        return self.constrained_pattern.to_text()


def _block_agreement(blocks: Dict[object, List[str]]) -> Tuple[float, int, int]:
    """(weighted agreement, #blocks, #blocks with ≥2 rows).

    Agreement is the fraction of rows whose RHS value equals the majority
    value of their block — exactly the quantity bounded by the
    allowed-violation ratio.
    """
    total = 0
    agreeing = 0
    multi = 0
    for rhs_values in blocks.values():
        total += len(rhs_values)
        counts: Dict[str, int] = {}
        for value in rhs_values:
            counts[value] = counts.get(value, 0) + 1
        agreeing += max(counts.values())
        if len(rhs_values) >= 2:
            multi += 1
    if total == 0:
        return 0.0, 0, 0
    return agreeing / total, len(blocks), multi


class VariablePfdMiner:
    """Searches constrained-prefix and constrained-token variable PFDs."""

    def __init__(self, config: Optional[DiscoveryConfig] = None):
        self.config = config or DiscoveryConfig()

    # -- public API --------------------------------------------------------------

    def mine(
        self,
        lhs_values: Sequence[str],
        rhs_values: Sequence[str],
        mode: str,
    ) -> List[VariableCandidate]:
        """Return variable-PFD candidates for one dependency ``A → B``."""
        pairs = [
            (lhs, rhs)
            for lhs, rhs in zip(lhs_values, rhs_values)
            if lhs != "" and rhs != ""
        ]
        if len(pairs) < 2 * self.config.min_support:
            return []
        if mode in ("prefix", "ngram"):
            candidate = self._mine_prefix(pairs, len(lhs_values))
        else:
            candidate = self._mine_token(pairs, len(lhs_values))
        return [candidate] if candidate is not None else []

    # -- constrained prefixes (λ5 family) -------------------------------------------

    def _mine_prefix(
        self, pairs: Sequence[Tuple[str, str]], n_rows: int
    ) -> Optional[VariableCandidate]:
        lengths = sorted({len(lhs) for lhs, _ in pairs})
        if not lengths:
            return None
        typical_length = lengths[len(lengths) // 2]
        best: Optional[VariableCandidate] = None
        for k in self.config.effective_prefix_lengths(typical_length):
            if k >= typical_length:
                break
            usable = [(lhs, rhs) for lhs, rhs in pairs if len(lhs) > k]
            if len(usable) < 2 * self.config.min_support:
                continue
            blocks: Dict[object, List[str]] = {}
            for lhs, rhs in usable:
                blocks.setdefault(lhs[:k], []).append(rhs)
            agreement, n_blocks, n_multi = _block_agreement(blocks)
            coverage = len(usable) / max(1, n_rows)
            if n_multi < 1 or n_blocks < 2:
                continue
            if agreement < self.config.min_agreement:
                continue
            if coverage < self.config.min_coverage:
                continue
            remainder = generalize_strings([lhs[k:] for lhs, _ in usable])
            if remainder is None:
                remainder = Pattern.any_string()
            head = generalize_strings([lhs[:k] for lhs, _ in usable])
            pattern = constrained_prefix(k, remainder, head=head)
            best = VariableCandidate(
                constrained_pattern=pattern,
                coverage=coverage,
                agreement=agreement,
                n_blocks=n_blocks,
                n_multi_blocks=n_multi,
                description=f"first {k} characters determine the RHS",
            )
            break  # smallest usable prefix = most general constraint
        return best

    # -- constrained tokens (λ4 family) ---------------------------------------------

    def _mine_token(
        self, pairs: Sequence[Tuple[str, str]], n_rows: int
    ) -> Optional[VariableCandidate]:
        tokenized = [(cached_tokenize(lhs), rhs) for lhs, rhs in pairs]
        max_position = self.config.max_constrained_token_position
        for position in range(max_position + 1):
            usable = [
                (tokens, rhs)
                for tokens, rhs in tokenized
                if len(tokens) > position
            ]
            if len(usable) < 2 * self.config.min_support:
                continue
            blocks: Dict[object, List[str]] = {}
            for tokens, rhs in usable:
                key = tokens[position].normalized or tokens[position].text
                blocks.setdefault((position, key), []).append(rhs)
            agreement, n_blocks, n_multi = _block_agreement(blocks)
            coverage = len(usable) / max(1, n_rows)
            if n_multi < 1 or n_blocks < 2:
                continue
            if agreement < self.config.min_agreement:
                continue
            if coverage < self.config.min_coverage:
                continue
            pattern = self._token_constraint_pattern(
                [tokens for tokens, _ in usable], position
            )
            if pattern is None:
                continue
            matched = sum(
                1 for tokens, _ in usable if MATCH_MEMO.matches(pattern, _join(tokens))
            )
            if matched / len(usable) < self.config.min_coverage:
                continue
            return VariableCandidate(
                constrained_pattern=pattern,
                coverage=coverage,
                agreement=agreement,
                n_blocks=n_blocks,
                n_multi_blocks=n_multi,
                description=f"the token at position {position} determines the RHS",
            )
        return None

    def _token_constraint_pattern(
        self, token_lists: Sequence[Sequence], position: int
    ) -> Optional[ConstrainedPattern]:
        """Build the constrained word-sequence pattern for a token position.

        Word patterns for positions 0..position are generalized from the
        observed tokens; positions after the constrained one collapse
        into the trailing ``\\A*``.
        """
        word_patterns: List[Pattern] = []
        for word_index in range(position + 1):
            words = [str(tokens[word_index].text) for tokens in token_lists]
            generalized = generalize_strings(words)
            if generalized is None:
                generalized = Pattern(
                    [
                        element
                        for element in Pattern.parse("\\A+").elements
                    ]
                )
            word_patterns.append(generalized)
        try:
            return constrained_word_sequence(word_patterns, position)
        except Exception:  # pragma: no cover - defensive
            return None


def _join(tokens: Sequence) -> str:
    return " ".join(token.text for token in tokens)
