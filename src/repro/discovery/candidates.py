"""Candidate dependency generation (Figure 2, line 1).

``CandidateDependencies(T)`` profiles the table and returns the ordered
attribute pairs ``A → B`` on which PFD discovery is attempted.  The
pruning rules follow the paper's description plus the obvious
generalizations needed to make them work on arbitrary tables:

* columns holding pure numeric measures are dropped, unless their values
  share a strong syntactic shape (zip codes and phone numbers are
  numeric but are exactly the kind of column PFDs thrive on);
* columns where essentially every value is distinct *and* no dominant
  pattern exists are dropped (free-text, UUIDs without structure);
* completely empty columns are dropped;
* the RHS additionally must not be (near-)unique per row, because then no
  two tuples could ever agree on it and no dependency is learnable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dataset.profiling import ColumnProfile, TableProfile, profile_table
from repro.dataset.table import Table
from repro.discovery.config import DiscoveryConfig
from repro.pfd.fd import EmbeddedFD


@dataclass(frozen=True)
class CandidateDependency:
    """A candidate ``A → B`` plus the token mode chosen for ``A``."""

    fd: EmbeddedFD
    lhs_mode: str

    @property
    def lhs(self) -> str:
        return self.fd.lhs_attribute

    @property
    def rhs(self) -> str:
        return self.fd.rhs_attribute

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.lhs} -> {self.rhs} [{self.lhs_mode}]"


def _lhs_mode_for(profile: ColumnProfile, config: DiscoveryConfig) -> str:
    """Pick the extraction mode for an LHS column.

    The paper: "n-grams are mainly used to extract patterns from
    attributes that contain [a] single token which could be a code or
    [an] id"; multi-token text attributes use whitespace tokens.
    """
    if config.token_mode != "auto":
        return config.token_mode
    if profile.is_single_token:
        return "prefix"
    return "token"


def _rhs_is_learnable(profile: ColumnProfile, n_rows: int) -> bool:
    """Whether a column can appear on the RHS of a discovered PFD."""
    if profile.n_values == profile.n_empty:
        return False
    non_empty = profile.n_values - profile.n_empty
    if non_empty < 2:
        return False
    # A (near-)unique RHS can never be agreed upon by two tuples.
    return profile.distinct_ratio < 0.9


def candidate_dependencies(
    table: Table,
    config: Optional[DiscoveryConfig] = None,
    profile: Optional[TableProfile] = None,
) -> List[CandidateDependency]:
    """All candidate dependencies of a table, most promising first."""
    config = config or DiscoveryConfig()
    profile = profile or profile_table(table)
    lhs_columns = profile.pfd_candidate_columns(
        max_distinct_ratio=config.max_lhs_distinct_ratio
    )
    lhs_columns = lhs_columns[: config.max_candidate_columns]
    candidates: List[CandidateDependency] = []
    for lhs in lhs_columns:
        lhs_profile = profile[lhs]
        mode = _lhs_mode_for(lhs_profile, config)
        for rhs in table.column_names():
            if rhs == lhs:
                continue
            if not _rhs_is_learnable(profile[rhs], table.n_rows):
                continue
            candidates.append(
                CandidateDependency(EmbeddedFD.between(lhs, rhs), lhs_mode=mode)
            )
    # Most promising first: low-cardinality RHS columns (few distinct
    # values, e.g. state or gender) yield dependencies with higher
    # support, so try them before high-cardinality ones.
    candidates.sort(key=lambda c: profile[c.rhs].n_distinct)
    return candidates
