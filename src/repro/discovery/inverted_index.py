"""The hash-based inverted list of the discovery algorithm.

Figure 2, line 8: for every tuple ``t`` and every token (or n-gram) ``s``
of ``t[A]``, the algorithm inserts a key-value pair into an inverted list
``H`` where the key is ``s`` and the value records the tuple id, the
position of ``s`` in ``t[A]``, and the RHS information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.patterns.tokenizer import Token, iter_token_modes


@dataclass(frozen=True)
class Posting:
    """One inverted-list entry value (the triple of Figure 2, line 8,
    extended with the full RHS value which the decision function needs)."""

    tuple_id: int
    lhs_position: int
    lhs_token: str
    rhs_value: str
    rhs_token: str = ""
    rhs_position: int = 0


@dataclass
class InvertedEntry:
    """All postings sharing one key."""

    key: Tuple[str, int]
    postings: List[Posting]

    @property
    def token(self) -> str:
        return self.key[0]

    @property
    def position(self) -> int:
        return self.key[1]

    @property
    def support(self) -> int:
        """Number of distinct tuples behind this entry."""
        return len({p.tuple_id for p in self.postings})

    def tuple_ids(self) -> List[int]:
        return sorted({p.tuple_id for p in self.postings})

    def rhs_distribution(self) -> Dict[str, int]:
        """RHS value → number of distinct tuples carrying it."""
        seen: Dict[str, set] = {}
        for posting in self.postings:
            seen.setdefault(posting.rhs_value, set()).add(posting.tuple_id)
        return {value: len(ids) for value, ids in seen.items()}

    def top_rhs(self) -> Tuple[str, int]:
        """The most frequent RHS value and its tuple count."""
        distribution = self.rhs_distribution()
        value = max(distribution, key=lambda v: (distribution[v], v))
        return value, distribution[value]


class InvertedList:
    """Token/n-gram → postings map, keyed by (token text, position).

    Keying by position as well as text mirrors the GUI display
    ("pattern::position, frequency") and keeps tokens that happen to
    occur at different positions (e.g. a first name also used as a last
    name) in separate groups.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, int], List[Posting]] = {}

    def insert(self, key_token: str, posting: Posting, position: Optional[int] = None) -> None:
        """Insert one posting under (token, position)."""
        position = posting.lhs_position if position is None else position
        self._entries.setdefault((key_token, position), []).append(posting)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return key in self._entries

    def entry(self, token: str, position: int) -> InvertedEntry:
        return InvertedEntry((token, position), list(self._entries[(token, position)]))

    def entries(self, min_support: int = 1) -> Iterator[InvertedEntry]:
        """Iterate over entries with at least ``min_support`` tuples."""
        for key, postings in self._entries.items():
            entry = InvertedEntry(key, postings)
            if entry.support >= min_support:
                yield entry

    @classmethod
    def build(
        cls,
        lhs_values: Sequence[str],
        rhs_values: Sequence[str],
        mode: str,
        ngram_size: int = 3,
        tokenize_rhs: bool = False,
    ) -> "InvertedList":
        """Populate the inverted list for one candidate dependency.

        ``tokenize_rhs`` mirrors the nested loop of Figure 2 line 7;
        the default records the full RHS value once per LHS token, which
        is what the decision function consumes.
        """
        index = cls()
        for tuple_id, (lhs_value, rhs_value) in enumerate(zip(lhs_values, rhs_values)):
            if lhs_value == "":
                continue
            for token in iter_token_modes(lhs_value, mode, ngram_size):
                key = token.normalized or token.text
                if not key:
                    continue
                if tokenize_rhs:
                    for rhs_token in iter_token_modes(rhs_value, "token"):
                        index.insert(
                            key,
                            Posting(
                                tuple_id=tuple_id,
                                lhs_position=token.position,
                                lhs_token=token.text,
                                rhs_value=rhs_value,
                                rhs_token=rhs_token.text,
                                rhs_position=rhs_token.position,
                            ),
                        )
                else:
                    index.insert(
                        key,
                        Posting(
                            tuple_id=tuple_id,
                            lhs_position=token.position,
                            lhs_token=token.text,
                            rhs_value=rhs_value,
                        ),
                    )
        return index
