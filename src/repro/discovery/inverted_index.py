"""The hash-based inverted list of the discovery algorithm.

Figure 2, line 8: for every tuple ``t`` and every token (or n-gram) ``s``
of ``t[A]``, the algorithm inserts a key-value pair into an inverted list
``H`` where the key is ``s`` and the value records the tuple id, the
position of ``s`` in ``t[A]``, and the RHS information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.patterns.tokenizer import Token, iter_token_modes
from repro.perf.interning import InternPool


class Posting(NamedTuple):
    """One inverted-list entry value (the triple of Figure 2, line 8,
    extended with the full RHS value which the decision function needs).

    A named tuple rather than a dataclass: hundreds of thousands are
    created per discovery run, and tuple construction is several times
    cheaper than frozen-dataclass ``__init__``.
    """

    tuple_id: int
    lhs_position: int
    lhs_token: str
    rhs_value: str
    rhs_token: str = ""
    rhs_position: int = 0


@dataclass
class InvertedEntry:
    """All postings sharing one key.

    Derived statistics (``support``, ``tuple_ids``, ``rhs_distribution``,
    ``rhs_of``) are computed once and cached — the decision function
    consults them repeatedly per entry, and they previously rebuilt sets
    on every call.  The cached collections are shared: callers must not
    mutate them (and must not mutate ``postings`` after the first
    statistic is read).
    """

    key: Tuple[str, int]
    postings: List[Posting]

    def __post_init__(self) -> None:
        self._rhs_by_tuple: Optional[Dict[int, str]] = None
        self._tuple_ids: Optional[List[int]] = None
        self._distribution: Optional[Dict[str, int]] = None

    @property
    def token(self) -> str:
        return self.key[0]

    @property
    def position(self) -> int:
        return self.key[1]

    def rhs_map(self) -> Dict[int, str]:
        """tuple id → RHS value (cached; callers must not mutate)."""
        return self._rhs_map()

    def _rhs_map(self) -> Dict[int, str]:
        """tuple id → RHS value (first posting wins, as in the scan)."""
        rhs_by_tuple = self._rhs_by_tuple
        if rhs_by_tuple is None:
            rhs_by_tuple = {}
            for posting in self.postings:
                if posting.tuple_id not in rhs_by_tuple:
                    rhs_by_tuple[posting.tuple_id] = posting.rhs_value
            self._rhs_by_tuple = rhs_by_tuple
        return rhs_by_tuple

    @property
    def support(self) -> int:
        """Number of distinct tuples behind this entry."""
        return len(self._rhs_map())

    def tuple_ids(self) -> List[int]:
        ids = self._tuple_ids
        if ids is None:
            ids = self._tuple_ids = sorted(self._rhs_map())
        return ids

    def rhs_of(self, tuple_id: int) -> str:
        """The RHS value recorded for one supporting tuple ('' if absent)."""
        return self._rhs_map().get(tuple_id, "")

    def rhs_distribution(self) -> Dict[str, int]:
        """RHS value → number of distinct tuples carrying it."""
        distribution = self._distribution
        if distribution is None:
            distribution = {}
            for rhs_value in self._rhs_map().values():
                distribution[rhs_value] = distribution.get(rhs_value, 0) + 1
            self._distribution = distribution
        return distribution

    def top_rhs(self) -> Tuple[str, int]:
        """The most frequent RHS value and its tuple count."""
        distribution = self.rhs_distribution()
        value = max(distribution, key=lambda v: (distribution[v], v))
        return value, distribution[value]


class ColumnTokenization:
    """One column's tokens under one extraction mode, in a single pass.

    The Figure 2 loop tokenizes ``t[A]`` once per (LHS, RHS) candidate
    pair; a wide table re-tokenizes the same LHS column dozens of times.
    This class extracts every row's (key, position, text) triples exactly
    once so :meth:`InvertedList.from_tokenization` can assemble the
    postings of *every* candidate sharing the LHS from the same pass.
    Token strings are interned through a pool scoped to the extraction
    (pass one explicitly to widen the scope) so equal tokens across rows
    — and across every candidate reusing this tokenization — are one
    object, without pinning tokens for the process lifetime.
    """

    __slots__ = ("mode", "ngram_size", "row_tokens")

    def __init__(self, mode: str, ngram_size: int, row_tokens: List[Tuple[Tuple[str, int, str], ...]]):
        self.mode = mode
        self.ngram_size = ngram_size
        #: per row: ((key, position, raw token text), …); empty for empty values
        self.row_tokens = row_tokens

    @classmethod
    def extract(
        cls,
        values: Sequence[str],
        mode: str,
        ngram_size: int = 3,
        pool: Optional[InternPool] = None,
        value_cache: Optional[Dict[str, Tuple[Tuple[str, int, str], ...]]] = None,
    ) -> "ColumnTokenization":
        """Tokenize a whole column once (memoized per distinct value).

        ``value_cache`` optionally supplies (and accumulates) the
        per-distinct-value triples across *multiple* extractions — the
        sharded discovery path shares one cache per (column, mode) so a
        value appearing in many shards is tokenized once, matching the
        single-extraction cost of the monolithic path.
        """
        pool = InternPool() if pool is None else pool
        by_value = value_cache if value_cache is not None else {}
        row_tokens: List[Tuple[Tuple[str, int, str], ...]] = []
        for value in values:
            if value == "":
                row_tokens.append(())
                continue
            triples = by_value.get(value)
            if triples is None:
                triples = tuple(
                    (pool.intern(token.normalized or token.text), token.position, pool.intern(token.text))
                    for token in iter_token_modes(value, mode, ngram_size)
                    if (token.normalized or token.text)
                )
                by_value[value] = triples
            row_tokens.append(triples)
        return cls(mode, ngram_size, row_tokens)

    def __len__(self) -> int:
        return len(self.row_tokens)


class InvertedList:
    """Token/n-gram → postings map, keyed by (token text, position).

    Keying by position as well as text mirrors the GUI display
    ("pattern::position, frequency") and keeps tokens that happen to
    occur at different positions (e.g. a first name also used as a last
    name) in separate groups.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, int], List[Posting]] = {}

    def insert(self, key_token: str, posting: Posting, position: Optional[int] = None) -> None:
        """Insert one posting under (token, position)."""
        position = posting.lhs_position if position is None else position
        self._entries.setdefault((key_token, position), []).append(posting)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return key in self._entries

    def entry(self, token: str, position: int) -> InvertedEntry:
        # The postings list is handed over by reference; entries cache
        # derived statistics, so callers must not mutate it.
        return InvertedEntry((token, position), self._entries[(token, position)])

    def entries(self, min_support: int = 1) -> Iterator[InvertedEntry]:
        """Iterate over entries with at least ``min_support`` tuples."""
        for key, postings in self._entries.items():
            entry = InvertedEntry(key, postings)
            if entry.support >= min_support:
                yield entry

    @classmethod
    def build(
        cls,
        lhs_values: Sequence[str],
        rhs_values: Sequence[str],
        mode: str,
        ngram_size: int = 3,
        tokenize_rhs: bool = False,
    ) -> "InvertedList":
        """Populate the inverted list for one candidate dependency.

        ``tokenize_rhs`` mirrors the nested loop of Figure 2 line 7;
        the default records the full RHS value once per LHS token, which
        is what the decision function consumes.
        """
        if not tokenize_rhs:
            tokenization = ColumnTokenization.extract(lhs_values, mode, ngram_size)
            return cls.from_tokenization(tokenization, rhs_values)
        index = cls()
        for tuple_id, (lhs_value, rhs_value) in enumerate(zip(lhs_values, rhs_values)):
            if lhs_value == "":
                continue
            for token in iter_token_modes(lhs_value, mode, ngram_size):
                key = token.normalized or token.text
                if not key:
                    continue
                for rhs_token in iter_token_modes(rhs_value, "token"):
                    index.insert(
                        key,
                        Posting(
                            tuple_id=tuple_id,
                            lhs_position=token.position,
                            lhs_token=token.text,
                            rhs_value=rhs_value,
                            rhs_token=rhs_token.text,
                            rhs_position=rhs_token.position,
                        ),
                    )
        return index

    @classmethod
    def from_tokenization(
        cls, tokenization: ColumnTokenization, rhs_values: Sequence[str]
    ) -> "InvertedList":
        """Assemble postings for one RHS from a prebuilt LHS tokenization.

        This is the single-pass columnar build: the expensive token
        extraction ran once (in :meth:`ColumnTokenization.extract`) and
        every candidate dependency sharing the LHS column reuses it,
        attaching only its own RHS values here.
        """
        index = cls()
        entries = index._entries
        for tuple_id, (triples, rhs_value) in enumerate(
            zip(tokenization.row_tokens, rhs_values)
        ):
            for key, position, text in triples:
                postings = entries.get((key, position))
                if postings is None:
                    postings = entries[(key, position)] = []
                postings.append(
                    Posting(
                        tuple_id=tuple_id,
                        lhs_position=position,
                        lhs_token=text,
                        rhs_value=rhs_value,
                    )
                )
        return index
