"""PFD discovery (Section 3, Figure 2 of the paper).

The pipeline mirrors the published algorithm:

1. :func:`candidate_dependencies` profiles the table and prunes
   attributes that cannot host PFDs (line 1).
2. For every candidate ``A → B``, tokens or n-grams of ``t[A]`` are
   inserted into a hash-based :class:`InvertedList` together with the
   tuple id, the token position and the corresponding RHS value
   (lines 5–8).
3. A :class:`DecisionFunction` (the ``f`` of the pseudo-code) inspects
   every inverted-list entry and decides whether it yields a pattern
   tuple (lines 10–12).
4. Tableaux whose coverage reaches the minimum-coverage threshold γ are
   emitted as PFDs (lines 13–14).

Variable PFDs (λ4/λ5-style) are mined by :class:`VariablePfdMiner`,
which searches constrained prefixes for code-like attributes and
constrained tokens for multi-token attributes.
"""

from repro.discovery.config import DiscoveryConfig
from repro.discovery.candidates import CandidateDependency, candidate_dependencies
from repro.discovery.inverted_index import InvertedList, Posting
from repro.discovery.decision import DecisionFunction, MajorityDecision, PatternTupleCandidate
from repro.discovery.constant_miner import ConstantPfdMiner
from repro.discovery.variable_miner import VariablePfdMiner
from repro.discovery.discoverer import DiscoveryResult, PfdDiscoverer

# imported last: maintenance reaches into repro.sharding (stats, overlay,
# sharded_table), whose submodules import repro.discovery submodules —
# keeping this at the bottom keeps the package import acyclic
from repro.discovery.maintenance import RuleMaintainer

__all__ = [
    "DiscoveryConfig",
    "CandidateDependency",
    "candidate_dependencies",
    "InvertedList",
    "Posting",
    "DecisionFunction",
    "MajorityDecision",
    "PatternTupleCandidate",
    "ConstantPfdMiner",
    "VariablePfdMiner",
    "DiscoveryResult",
    "PfdDiscoverer",
    "RuleMaintainer",
]
