"""Configuration of the discovery pipeline.

ANMAT exposes two user-facing parameters (Section 4): the **minimum
coverage** — the ratio of records participating in a PFD to the total
number of records in the attribute — and the **ratio of allowed
violations** tolerated because the input data is assumed dirty.  The
remaining knobs control token extraction and tableau size and have
defaults chosen to reproduce the paper's demo scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import DiscoveryError


@dataclass
class DiscoveryConfig:
    """Tunable parameters of :class:`~repro.discovery.discoverer.PfdDiscoverer`.

    Parameters
    ----------
    min_coverage:
        γ — minimum fraction of an attribute's records that must be
        covered by a tableau for the PFD to be reported.
    allowed_violation_ratio:
        ρ — fraction of records allowed to disagree with a pattern tuple
        before it is rejected (the data is assumed dirty).
    min_support:
        Minimum absolute number of tuples behind a pattern tuple.
    token_mode:
        ``"auto"`` picks token mode for multi-token attributes and prefix
        n-grams for single-token (code/id) attributes; ``"token"``,
        ``"ngram"`` and ``"prefix"`` force a specific extractor.
    ngram_size:
        Size of character n-grams in ``"ngram"`` mode.
    prefix_lengths:
        Literal-prefix lengths tried for code-like attributes (both for
        constant pattern tuples and for constrained prefixes of variable
        PFDs).  ``None`` means "all lengths shorter than the value".
    max_tableau_rows:
        Upper bound on pattern tuples kept per PFD (most covering first).
    discover_constant / discover_variable:
        Toggle the two PFD families independently.
    max_lhs_distinct_ratio:
        Candidate pruning — LHS columns where nearly every value is
        distinct *and* unstructured are skipped.
    max_candidate_columns:
        Safety valve for very wide tables.
    n_workers:
        Opt-in parallelism, interpreted by the execution engine's
        planner (:mod:`repro.engine`).  ``0`` or ``1`` run serially;
        ``>1`` routes runs to the parallel backend (or fans out the
        sharded backend's per-shard extraction), which spreads the
        embarrassingly parallel stages over ``concurrent.futures``
        workers — candidate mining, per-rule detection, per-shard
        statistic extraction.  Results are byte-identical to the serial
        path.
    shard_rows:
        Opt-in sharded execution, interpreted by the engine's planner.
        ``0`` runs monolithically; ``>0`` routes discovery and detection
        to the sharded backend over shards of this many rows (identical
        rule sets, canonically equal violations).
    use_kernels:
        Whether the vectorized columnar kernels
        (:mod:`repro.kernels`) run the discovery/detection hot paths.
        ``"auto"`` (the default) uses them exactly when numpy is
        importable; ``"on"`` requests them (degrading to the scalar path
        when numpy is absent — results are identical either way);
        ``"off"`` forces the scalar path.  The execution plan records
        the resolved choice.
    store:
        Which :class:`~repro.sharding.store.ShardStore` backend sharded
        uploads stream into: ``"memory"`` (live tables), ``"spill"``
        (CSV spill files + small LRU) or ``"object"`` (checksummed
        objects behind a get/put/list client).  Recorded on the
        execution plan.  Ignored for monolithic runs.
    spill_dir:
        Root directory for the ``spill``/``object`` stores.  ``None``
        uses a private temporary directory removed when the session (or
        store) is closed.
    object_url:
        Base URL of a remote object store for the ``object`` backend.
        ``None`` (the default) keeps objects on the local filesystem
        through :class:`~repro.sharding.object_store.LocalObjectClient`;
        an ``http(s)://`` URL routes shard bytes through the remote
        :class:`~repro.sharding.remote.HttpObjectClient` instead
        (S3-compatible-style PUT/GET/DELETE with checksummed,
        retry-protected transfers).  The execution plan records which
        client kind serves the run.  Ignored unless ``store`` is
        ``"object"``.
    pool:
        Worker-pool lifecycle for the fan-out stages.  ``"persistent"``
        (the default) keeps one process-backed
        :class:`~repro.engine.worker_pool.WorkerPool` alive per session
        — lazily started, reused across discovery/detection/recheck,
        closed with the session — including a warm result cache keyed by
        shard version so repeated runs over unchanged shards skip the
        process round-trip.  ``"per-call"`` restores the old behavior of
        building and tearing down an ephemeral pool inside every run.
        Only meaningful when ``n_workers > 1``; recorded on the
        execution plan.
    prefetch_depth:
        How many shard objects ahead the ``object`` store's reader
        fetches on a background thread pool, overlapping GET + checksum
        verification of shards N+1..N+k with compute on shard N (retry
        backoff sleeps happen inside the fetch threads, off the critical
        path).  ``0`` disables prefetching (fully sequential reads).
        Ignored unless ``store`` is ``"object"``; recorded on the
        execution plan.
    rule_maintenance:
        How a session re-check after edits refreshes the rule set.
        ``"auto"`` (the default) maintains the rules incrementally
        through :class:`~repro.discovery.maintenance.RuleMaintainer`
        when a sharded baseline is seeded and the change is
        non-structural, falling back to full re-discovery otherwise;
        ``"incremental"`` requests maintenance (with a
        :class:`~repro.engine.plan.PlanWarning` when it cannot run);
        ``"full"`` always re-discovers from scratch.  The execution
        plan records the resolved choice.  Maintained and fully
        re-discovered rule sets are identical.
    """

    min_coverage: float = 0.6
    allowed_violation_ratio: float = 0.05
    min_support: int = 2
    token_mode: str = "auto"
    ngram_size: int = 3
    prefix_lengths: Optional[Tuple[int, ...]] = None
    max_tableau_rows: int = 64
    discover_constant: bool = True
    discover_variable: bool = True
    max_lhs_distinct_ratio: float = 0.98
    max_candidate_columns: int = 24
    max_constrained_token_position: int = 3
    n_workers: int = 0
    shard_rows: int = 0
    use_kernels: str = "auto"
    store: str = "memory"
    spill_dir: Optional[str] = None
    object_url: Optional[str] = None
    pool: str = "persistent"
    prefetch_depth: int = 2
    rule_maintenance: str = "auto"

    def __post_init__(self) -> None:
        if self.n_workers < 0:
            raise DiscoveryError(f"n_workers must be >= 0, got {self.n_workers}")
        if self.shard_rows < 0:
            raise DiscoveryError(f"shard_rows must be >= 0, got {self.shard_rows}")
        if not 0.0 <= self.min_coverage <= 1.0:
            raise DiscoveryError(f"min_coverage must be in [0, 1], got {self.min_coverage}")
        if not 0.0 <= self.allowed_violation_ratio < 1.0:
            raise DiscoveryError(
                "allowed_violation_ratio must be in [0, 1), got "
                f"{self.allowed_violation_ratio}"
            )
        if self.min_support < 1:
            raise DiscoveryError(f"min_support must be >= 1, got {self.min_support}")
        if self.token_mode not in ("auto", "token", "ngram", "prefix"):
            raise DiscoveryError(f"unknown token_mode {self.token_mode!r}")
        if self.ngram_size < 1:
            raise DiscoveryError(f"ngram_size must be >= 1, got {self.ngram_size}")
        if self.max_tableau_rows < 1:
            raise DiscoveryError(f"max_tableau_rows must be >= 1, got {self.max_tableau_rows}")
        if self.use_kernels not in ("auto", "on", "off"):
            raise DiscoveryError(
                f"use_kernels must be 'auto', 'on' or 'off', got {self.use_kernels!r}"
            )
        if self.store not in ("memory", "spill", "object"):
            raise DiscoveryError(
                f"store must be 'memory', 'spill' or 'object', got {self.store!r}"
            )
        if self.object_url is not None and not self.object_url.startswith(
            ("http://", "https://")
        ):
            raise DiscoveryError(
                f"object_url must be an http(s):// URL, got {self.object_url!r}"
            )
        if self.pool not in ("persistent", "per-call"):
            raise DiscoveryError(
                f"pool must be 'persistent' or 'per-call', got {self.pool!r}"
            )
        if self.prefetch_depth < 0:
            raise DiscoveryError(
                f"prefetch_depth must be >= 0, got {self.prefetch_depth}"
            )
        if self.rule_maintenance not in ("auto", "incremental", "full"):
            raise DiscoveryError(
                "rule_maintenance must be 'auto', 'incremental' or 'full', got "
                f"{self.rule_maintenance!r}"
            )

    @property
    def min_agreement(self) -> float:
        """Fraction of a group that must agree on the RHS value."""
        return 1.0 - self.allowed_violation_ratio

    def effective_prefix_lengths(self, value_length: int) -> Sequence[int]:
        """Prefix lengths to try for values of the given typical length."""
        if self.prefix_lengths is not None:
            return [k for k in self.prefix_lengths if 0 < k <= value_length]
        return list(range(1, max(1, value_length)))

    def with_overrides(self, **kwargs) -> "DiscoveryConfig":
        """A copy of this config with the given fields replaced."""
        data = self.__dict__.copy()
        data.update(kwargs)
        return DiscoveryConfig(**data)
