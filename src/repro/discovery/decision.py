"""The pattern-tuple decision function ``f`` (Figure 2, lines 10–12).

Given one inverted-list entry, the decision function answers "does this
entry form a meaningful pattern tuple?" and, if so, produces the pattern
tuple: an LHS pattern built around the entry's token plus the RHS
constant the covered tuples (mostly) agree on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.dataset.rowids import RowIds, row_ids
from repro.discovery.config import DiscoveryConfig
from repro.discovery.inverted_index import InvertedEntry
from repro.patterns.generalize import generalize_strings, generalize_with_literal_prefix
from repro.patterns.pattern import Pattern
from repro.patterns.tokenizer import cached_tokenize
from repro.perf.memo import MATCH_MEMO


@dataclass
class PatternTupleCandidate:
    """A candidate tableau row produced by the decision function."""

    lhs_pattern: Pattern
    rhs_constant: str
    support: int
    agreement: float
    covered_tuple_ids: RowIds
    violating_tuple_ids: RowIds
    source_token: str
    source_position: int

    @property
    def pattern_text(self) -> str:
        return self.lhs_pattern.to_text()

    def render(self) -> str:
        """``pattern::position, frequency`` — the GUI display format."""
        return f"{self.pattern_text}::{self.source_position}, {self.support}"


class DecisionFunction:
    """Interface of the pluggable decision function ``f``."""

    def decide(
        self,
        entry: InvertedEntry,
        lhs_values: Sequence[str],
        config: DiscoveryConfig,
    ) -> Optional[PatternTupleCandidate]:
        """Return a pattern tuple for the entry, or None to reject it."""
        raise NotImplementedError


class MajorityDecision(DecisionFunction):
    """The default decision function.

    An entry forms a pattern tuple when (1) it has enough supporting
    tuples, (2) the supporting tuples agree on a single RHS value up to
    the allowed-violation ratio, and (3) an LHS pattern can be built that
    actually matches the supporting values (a sanity re-check, since the
    pattern is synthesized from the token and its context).
    """

    def decide(
        self,
        entry: InvertedEntry,
        lhs_values: Sequence[str],
        config: DiscoveryConfig,
    ) -> Optional[PatternTupleCandidate]:
        support = entry.support
        if support < config.min_support:
            return None
        top_value, top_count = entry.top_rhs()
        if top_value == "":
            return None
        agreement = top_count / support
        if agreement < config.min_agreement:
            return None
        covered = entry.tuple_ids()
        covered_values = [lhs_values[i] for i in covered]
        pattern = self._build_pattern(entry, covered_values)
        if pattern is None:
            return None
        matches = MATCH_MEMO.matcher(pattern)
        matching = [i for i in covered if matches(lhs_values[i])]
        if len(matching) < config.min_support:
            return None
        rhs_of = entry.rhs_map().get
        agreeing = [i for i in matching if rhs_of(i, "") == top_value]
        if not matching or len(agreeing) / len(matching) < config.min_agreement:
            return None
        violating = [i for i in matching if rhs_of(i, "") != top_value]
        return PatternTupleCandidate(
            lhs_pattern=pattern,
            rhs_constant=top_value,
            support=len(matching),
            agreement=len(agreeing) / len(matching),
            covered_tuple_ids=row_ids(matching),
            violating_tuple_ids=row_ids(violating),
            source_token=entry.token,
            source_position=entry.position,
        )

    # -- pattern synthesis ------------------------------------------------------

    def _build_pattern(
        self, entry: InvertedEntry, covered_values: Sequence[str]
    ) -> Optional[Pattern]:
        """Build the LHS pattern for an entry.

        Prefix entries (position 0 n-grams / prefixes of code-like
        values) become ``literal-prefix + generalized-suffix`` patterns
        such as ``850\\D{7}``; token entries become
        ``\\A*<separator>token\\A*`` patterns such as
        ``\\A*,\\ Donald\\A*``.
        """
        if not covered_values:
            return None
        token = entry.token
        if entry.position == 0 and all(v.startswith(token) for v in covered_values):
            return generalize_with_literal_prefix(covered_values, len(token))
        return self._contains_token_pattern(token, entry.position, covered_values)

    @staticmethod
    def _contains_token_pattern(
        token: str, position: int, covered_values: Sequence[str]
    ) -> Optional[Pattern]:
        """A ``\\A*<sep>token\\A*`` pattern for word tokens.

        The separator context (the punctuation/space run immediately
        before the token, e.g. ``", "`` in ``"Holloway, Donald E."``) is
        included literally when all covered values share it, matching the
        tableau shapes shown in Table 3 of the paper.
        """
        separators = set()
        has_suffix = False
        for value in covered_values:
            found = None
            for tok in cached_tokenize(value):
                if tok.position == position and (tok.normalized == token or tok.text == token):
                    found = tok
                    break
            if found is None:
                return None
            start = found.start
            sep_start = start
            while sep_start > 0 and not value[sep_start - 1].isalnum():
                sep_start -= 1
            separators.add(value[sep_start:start])
            if found.start + len(found.text) < len(value) or found.text != token:
                has_suffix = True
        separator = separators.pop() if len(separators) == 1 else ""
        elements = Pattern([])
        if position > 0:
            elements = elements.concat(Pattern.any_string())
        if separator and position > 0:
            elements = elements.concat(Pattern.literal(separator))
        elements = elements.concat(Pattern.literal(token))
        if has_suffix or position == 0:
            elements = elements.concat(Pattern.any_string())
        return elements


