"""Mining constant PFDs for one candidate dependency.

This implements the body of the Figure 2 loop for a single ``A → B``:
build the inverted list over tokens/n-grams of ``A``, let the decision
function turn entries into pattern-tuple candidates, then greedily keep
the candidates that add coverage (so the tableau stays small and free of
redundant, more-specific patterns — ``900\\D{2}`` suppresses ``9000\\D``
when the latter covers no additional tuples).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.discovery.config import DiscoveryConfig
from repro.discovery.decision import DecisionFunction, MajorityDecision, PatternTupleCandidate
from repro.discovery.inverted_index import ColumnTokenization, InvertedList
from repro.kernels.runtime import HAVE_NUMPY, np
from repro.perf.timers import StageTimers, stage_or_null


def _rows_bitmask(rows) -> int:
    """Pack a sequence of row ids into an int bitmask (bit i = row i)."""
    if not len(rows):
        return 0
    if HAVE_NUMPY:
        ids = np.asarray(rows)
        bits = np.zeros(int(ids.max()) + 1, dtype=bool)
        bits[ids] = True
        return int.from_bytes(np.packbits(bits, bitorder="little").tobytes(), "little")
    mask = 0
    for row in rows:
        mask |= 1 << row
    return mask


class ConstantPfdMiner:
    """Produces the constant pattern tuples of one candidate dependency."""

    def __init__(
        self,
        config: Optional[DiscoveryConfig] = None,
        decision: Optional[DecisionFunction] = None,
    ):
        self.config = config or DiscoveryConfig()
        self.decision = decision or MajorityDecision()

    def mine(
        self,
        lhs_values: Sequence[str],
        rhs_values: Sequence[str],
        mode: str,
        tokenization: Optional[ColumnTokenization] = None,
        timers: Optional[StageTimers] = None,
    ) -> List[PatternTupleCandidate]:
        """Return the selected pattern tuples for ``A → B``.

        ``mode`` is the token extraction mode for the LHS column
        (``"token"``, ``"ngram"`` or ``"prefix"``).  ``tokenization``
        optionally supplies the LHS column's prebuilt single-pass
        tokenization (see :class:`ColumnTokenization`) so candidates
        sharing an LHS column do not re-tokenize it.  ``timers``
        optionally attributes the index-build and decision phases to
        pipeline stages.
        """
        with stage_or_null(timers, "index_build"):
            if tokenization is not None and tokenization.mode == mode:
                index = InvertedList.from_tokenization(tokenization, rhs_values)
            else:
                index = InvertedList.build(
                    lhs_values,
                    rhs_values,
                    mode=mode,
                    ngram_size=self.config.ngram_size,
                )
        with stage_or_null(timers, "mine_constant"):
            candidates: List[PatternTupleCandidate] = []
            for entry in index.entries(min_support=self.config.min_support):
                candidate = self.decision.decide(entry, lhs_values, self.config)
                if candidate is not None:
                    candidates.append(candidate)
            return self.select(candidates)

    def select(self, candidates: List[PatternTupleCandidate]) -> List[PatternTupleCandidate]:
        """Greedy redundancy elimination.

        Candidates are considered from most to least covering; a
        candidate is kept only if it covers tuples not already covered by
        a kept candidate with the same RHS constant.  Candidates with
        different RHS constants never suppress each other (they are
        different rules of the tableau).
        """
        ordered = sorted(
            candidates,
            key=lambda c: (-c.support, -c.agreement, len(c.pattern_text), c.pattern_text),
        )
        kept: List[PatternTupleCandidate] = []
        # Coverage is tracked as one int bitmask per RHS constant (bit i =
        # tuple i covered): a set of boxed row ids here peaks at tens of
        # megabytes on large columns, the bitmask at n_rows / 8 bytes.
        covered_by_rhs: dict = {}
        for candidate in ordered:
            if len(kept) >= self.config.max_tableau_rows:
                break
            already = covered_by_rhs.get(candidate.rhs_constant, 0)
            mask = _rows_bitmask(candidate.covered_tuple_ids)
            new_bits = mask & ~already
            if not new_bits:
                continue
            if new_bits.bit_count() < self.config.min_support and already:
                # The marginal contribution is below the support floor;
                # a more general kept pattern already explains the rest.
                continue
            kept.append(candidate)
            covered_by_rhs[candidate.rhs_constant] = already | mask
        return kept

    def coverage(
        self, candidates: Sequence[PatternTupleCandidate], lhs_values: Sequence[str]
    ) -> float:
        """Fraction of non-empty LHS values covered by the candidates
        (the quantity compared against γ in Figure 2, line 13)."""
        non_empty = [i for i, v in enumerate(lhs_values) if v != ""]
        if not non_empty:
            return 0.0
        covered = set()
        for candidate in candidates:
            covered.update(candidate.covered_tuple_ids)
        return len(covered & set(non_empty)) / len(non_empty)
