"""The Discover-PFDs driver (Figure 2 of the paper).

:class:`PfdDiscoverer` glues together candidate generation, the constant
miner, and the variable miner, applies the minimum-coverage threshold γ,
and packages everything into :class:`~repro.pfd.pfd.PFD` objects plus a
:class:`DiscoveryResult` carrying the per-dependency statistics the
ANMAT GUI displays.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataset.profiling import TableProfile, profile_table
from repro.dataset.table import Table
from repro.discovery.candidates import CandidateDependency, candidate_dependencies
from repro.discovery.config import DiscoveryConfig
from repro.discovery.constant_miner import ConstantPfdMiner
from repro.discovery.decision import DecisionFunction, PatternTupleCandidate
from repro.discovery.inverted_index import ColumnTokenization
from repro.discovery.variable_miner import VariableCandidate, VariablePfdMiner
from repro.perf.timers import StageTimers
from repro.pfd.pfd import PFD
from repro.pfd.tableau import WILDCARD


@dataclass
class DependencyReport:
    """Discovery statistics for one candidate dependency."""

    candidate: CandidateDependency
    constant_candidates: List[PatternTupleCandidate] = field(default_factory=list)
    variable_candidates: List[VariableCandidate] = field(default_factory=list)
    coverage: float = 0.0
    accepted: bool = False
    elapsed_seconds: float = 0.0

    @property
    def lhs(self) -> str:
        return self.candidate.lhs

    @property
    def rhs(self) -> str:
        return self.candidate.rhs


@dataclass
class DiscoveryResult:
    """Everything produced by one discovery run."""

    pfds: List[PFD]
    reports: List[DependencyReport]
    profile: TableProfile
    config: DiscoveryConfig
    elapsed_seconds: float

    def constant_pfds(self) -> List[PFD]:
        return [p for p in self.pfds if p.is_constant]

    def variable_pfds(self) -> List[PFD]:
        return [p for p in self.pfds if p.is_variable]

    def pfds_for(self, lhs: str, rhs: str) -> List[PFD]:
        """All discovered PFDs over a specific attribute pair."""
        return [
            p
            for p in self.pfds
            if p.lhs_attribute == lhs and p.rhs_attribute == rhs
        ]

    def report_for(self, lhs: str, rhs: str) -> Optional[DependencyReport]:
        for report in self.reports:
            if report.lhs == lhs and report.rhs == rhs:
                return report
        return None

    def summary(self) -> Dict[str, int]:
        return {
            "candidates_examined": len(self.reports),
            "dependencies_accepted": sum(1 for r in self.reports if r.accepted),
            "pfds": len(self.pfds),
            "constant_pfds": len(self.constant_pfds()),
            "variable_pfds": len(self.variable_pfds()),
        }


class PfdDiscoverer:
    """Discovers PFDs directly from (dirty) data."""

    def __init__(
        self,
        config: Optional[DiscoveryConfig] = None,
        decision: Optional[DecisionFunction] = None,
    ):
        self.config = config or DiscoveryConfig()
        self.constant_miner = ConstantPfdMiner(self.config, decision)
        self.variable_miner = VariablePfdMiner(self.config)
        #: wall-clock accumulated per pipeline stage across runs
        self.timers = StageTimers()

    def discover(self, table: Table, relation: Optional[str] = None) -> List[PFD]:
        """Discover PFDs and return just the PFD list."""
        return self.discover_with_report(table, relation=relation).pfds

    def discover_with_report(
        self,
        table: Table,
        relation: Optional[str] = None,
        candidates: Optional[Sequence[CandidateDependency]] = None,
    ) -> DiscoveryResult:
        """Run the full pipeline and return PFDs plus statistics."""
        started = time.perf_counter()
        with self.timers.stage("profile"):
            profile = profile_table(table)
        if candidates is None:
            with self.timers.stage("candidates"):
                candidates = candidate_dependencies(table, self.config, profile)
        candidates = list(candidates)
        with self.timers.stage("mine"):
            if self.config.n_workers > 1 and len(candidates) > 1:
                reports = self._mine_parallel(table, candidates)
            else:
                reports = self._mine_serial(table, candidates)
        with self.timers.stage("assemble"):
            pfds = self.assemble_pfds(candidates, reports, relation)
        elapsed = time.perf_counter() - started
        return DiscoveryResult(
            pfds=pfds,
            reports=reports,
            profile=profile,
            config=self.config,
            elapsed_seconds=elapsed,
        )

    def assemble_pfds(
        self,
        candidates: Sequence[CandidateDependency],
        reports: Sequence[DependencyReport],
        relation: Optional[str] = None,
    ) -> List[PFD]:
        """Package accepted per-candidate reports into named PFD objects.

        Shared by the monolithic pipeline above and the sharded
        discoverer (which mines the same reports from merged per-shard
        statistics) so both produce identically named, identically
        ordered rule sets.
        """
        pfds: List[PFD] = []
        counter = 0
        for candidate, report in zip(candidates, reports):
            if not report.accepted:
                continue
            if self.config.discover_constant and report.constant_candidates:
                counter += 1
                pfds.append(
                    self._build_constant_pfd(candidate, report, counter, relation)
                )
            if self.config.discover_variable:
                for variable in report.variable_candidates:
                    counter += 1
                    pfds.append(
                        self._build_variable_pfd(candidate, variable, counter, relation)
                    )
        return pfds

    # -- per-candidate mining ---------------------------------------------------

    def _mine_serial(
        self, table: Table, candidates: Sequence[CandidateDependency]
    ) -> List[DependencyReport]:
        """Mine candidates in order, tokenizing each LHS column exactly once.

        The single-pass columnar build: candidates are grouped by their
        (LHS column, token mode) pair and every group shares one
        :class:`ColumnTokenization`, so a table with many RHS columns no
        longer re-tokenizes the LHS per candidate.
        """
        tokenizations: Dict[Tuple[str, str], ColumnTokenization] = {}
        reports: List[DependencyReport] = []
        for candidate in candidates:
            tokenization = None
            if self.config.discover_constant:
                key = (candidate.lhs, candidate.lhs_mode)
                tokenization = tokenizations.get(key)
                if tokenization is None:
                    tokenization = tokenizations[key] = ColumnTokenization.extract(
                        table.column_ref(candidate.lhs),
                        candidate.lhs_mode,
                        self.config.ngram_size,
                    )
            reports.append(
                _mine_candidate_values(
                    candidate,
                    table.column_ref(candidate.lhs),
                    table.column_ref(candidate.rhs),
                    self.config,
                    self.constant_miner,
                    self.variable_miner,
                    tokenization=tokenization,
                )
            )
        return reports

    def _mine_parallel(
        self, table: Table, candidates: Sequence[CandidateDependency]
    ) -> List[DependencyReport]:
        """Fan candidate mining out over ``concurrent.futures`` workers.

        Work is sharded by (LHS column, token mode) so each LHS column
        crosses the process boundary once and each worker builds its
        single-pass tokenization once — the same sharing the serial path
        gets.  Groups are independent (embarrassingly parallel) and the
        reports are reassembled in candidate order, so output stays
        byte-identical to the serial path.

        Process workers are preferred; thread workers are used when the
        config or decision function cannot be pickled, and as a fallback
        if the pool dies (e.g. fork unavailable).  Genuine mining errors
        propagate either way.
        """
        decision = self.constant_miner.decision
        groups: Dict[Tuple[str, str], List[int]] = {}
        for position, candidate in enumerate(candidates):
            groups.setdefault((candidate.lhs, candidate.lhs_mode), []).append(position)
        # Workers only read the columns, so payloads carry references:
        # the process pool serializes them on submit, the thread pool
        # shares them in-process — neither needs an up-front copy.
        payloads = [
            (
                [candidates[i] for i in positions],
                table.column_ref(lhs),
                [table.column_ref(candidates[i].rhs) for i in positions],
                self.config,
                decision,
            )
            for (lhs, _mode), positions in groups.items()
        ]
        max_workers = min(self.config.n_workers, len(payloads))
        try:
            pickle.dumps((self.config, decision))
            executor_cls = ProcessPoolExecutor
        except Exception:
            executor_cls = ThreadPoolExecutor
        try:
            with executor_cls(max_workers=max_workers) as executor:
                group_reports = list(executor.map(_mine_candidate_group, payloads))
        except BrokenProcessPool:
            with ThreadPoolExecutor(max_workers=max_workers) as executor:
                group_reports = list(executor.map(_mine_candidate_group, payloads))
        reports: List[Optional[DependencyReport]] = [None] * len(candidates)
        for positions, group in zip(groups.values(), group_reports):
            for position, report in zip(positions, group):
                reports[position] = report
        return reports  # type: ignore[return-value]


    # -- PFD construction ----------------------------------------------------------

    @staticmethod
    def _build_constant_pfd(
        candidate: CandidateDependency,
        report: DependencyReport,
        counter: int,
        relation: Optional[str],
    ) -> PFD:
        pfd = PFD.constant(
            candidate.lhs,
            candidate.rhs,
            name=f"psi{counter}",
            relation=relation,
        )
        for row in report.constant_candidates:
            pfd.add_rule(
                {
                    candidate.lhs: row.lhs_pattern,
                    candidate.rhs: row.rhs_constant,
                }
            )
        return pfd

    @staticmethod
    def _build_variable_pfd(
        candidate: CandidateDependency,
        variable: VariableCandidate,
        counter: int,
        relation: Optional[str],
    ) -> PFD:
        pfd = PFD(
            fd=_embedded(candidate),
            name=f"psi{counter}",
            relation=relation,
        )
        pfd.add_rule(
            {
                candidate.lhs: variable.constrained_pattern,
                candidate.rhs: WILDCARD,
            }
        )
        return pfd


def _embedded(candidate: CandidateDependency):
    from repro.pfd.fd import EmbeddedFD

    return EmbeddedFD.between(candidate.lhs, candidate.rhs)


def _mine_candidate_values(
    candidate: CandidateDependency,
    lhs_values: Sequence[str],
    rhs_values: Sequence[str],
    config: DiscoveryConfig,
    constant_miner: ConstantPfdMiner,
    variable_miner: VariablePfdMiner,
    tokenization: Optional[ColumnTokenization] = None,
) -> DependencyReport:
    """The Figure 2 loop body for one ``A → B`` over materialized columns.

    Module-level so both the serial path and the worker processes of
    ``n_workers > 1`` share one implementation.
    """
    started = time.perf_counter()
    report = DependencyReport(candidate=candidate)
    if config.discover_constant:
        report.constant_candidates = constant_miner.mine(
            lhs_values, rhs_values, candidate.lhs_mode, tokenization=tokenization
        )
        report.coverage = constant_miner.coverage(
            report.constant_candidates, lhs_values
        )
    if config.discover_variable:
        report.variable_candidates = variable_miner.mine(
            lhs_values, rhs_values, candidate.lhs_mode
        )
    constant_ok = (
        bool(report.constant_candidates)
        and report.coverage >= config.min_coverage
    )
    variable_ok = bool(report.variable_candidates)
    if not constant_ok:
        # below-threshold constant tableaux are dropped (Figure 2 line 13)
        report.constant_candidates = []
    report.accepted = constant_ok or variable_ok
    report.elapsed_seconds = time.perf_counter() - started
    return report


def _mine_candidate_group(payload) -> List[DependencyReport]:
    """Worker entry point for :meth:`PfdDiscoverer._mine_parallel`.

    One payload = all candidates sharing one LHS column (and token
    mode); the worker tokenizes that column once and mines each
    candidate's RHS against it, mirroring the serial single-pass build.
    """
    group_candidates, lhs_values, rhs_columns, config, decision = payload
    constant_miner = ConstantPfdMiner(config, decision)
    variable_miner = VariablePfdMiner(config)
    tokenization = None
    if config.discover_constant:
        tokenization = ColumnTokenization.extract(
            lhs_values, group_candidates[0].lhs_mode, config.ngram_size
        )
    return [
        _mine_candidate_values(
            candidate,
            lhs_values,
            rhs_values,
            config,
            constant_miner,
            variable_miner,
            tokenization=tokenization,
        )
        for candidate, rhs_values in zip(group_candidates, rhs_columns)
    ]
