"""The Discover-PFDs driver (Figure 2 of the paper).

:class:`PfdDiscoverer` glues together candidate generation, the constant
miner, and the variable miner, applies the minimum-coverage threshold γ,
and packages everything into :class:`~repro.pfd.pfd.PFD` objects plus a
:class:`DiscoveryResult` carrying the per-dependency statistics the
ANMAT GUI displays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dataset.profiling import TableProfile, profile_table
from repro.dataset.table import Table
from repro.discovery.candidates import CandidateDependency, candidate_dependencies
from repro.discovery.config import DiscoveryConfig
from repro.discovery.constant_miner import ConstantPfdMiner
from repro.discovery.decision import (
    DecisionFunction,
    MajorityDecision,
    PatternTupleCandidate,
)
from repro.discovery.inverted_index import ColumnTokenization
from repro.discovery.variable_miner import VariableCandidate, VariablePfdMiner
from repro.kernels.encoder import ColumnEncoding, encode_column
from repro.kernels.runtime import kernels_enabled
from repro.kernels.tokenize import batch_tokenize, tokenization_from_encoding
from repro.perf import TABLE_ARTIFACTS
from repro.perf.timers import StageTimers, stage_or_null
from repro.pfd.pfd import PFD
from repro.pfd.tableau import WILDCARD


@dataclass
class DependencyReport:
    """Discovery statistics for one candidate dependency."""

    candidate: CandidateDependency
    constant_candidates: List[PatternTupleCandidate] = field(default_factory=list)
    variable_candidates: List[VariableCandidate] = field(default_factory=list)
    coverage: float = 0.0
    accepted: bool = False
    elapsed_seconds: float = 0.0

    @property
    def lhs(self) -> str:
        return self.candidate.lhs

    @property
    def rhs(self) -> str:
        return self.candidate.rhs


@dataclass
class DiscoveryResult:
    """Everything produced by one discovery run."""

    pfds: List[PFD]
    reports: List[DependencyReport]
    profile: TableProfile
    config: DiscoveryConfig
    elapsed_seconds: float

    def constant_pfds(self) -> List[PFD]:
        return [p for p in self.pfds if p.is_constant]

    def variable_pfds(self) -> List[PFD]:
        return [p for p in self.pfds if p.is_variable]

    def pfds_for(self, lhs: str, rhs: str) -> List[PFD]:
        """All discovered PFDs over a specific attribute pair."""
        return [
            p
            for p in self.pfds
            if p.lhs_attribute == lhs and p.rhs_attribute == rhs
        ]

    def report_for(self, lhs: str, rhs: str) -> Optional[DependencyReport]:
        for report in self.reports:
            if report.lhs == lhs and report.rhs == rhs:
                return report
        return None

    def summary(self) -> Dict[str, int]:
        return {
            "candidates_examined": len(self.reports),
            "dependencies_accepted": sum(1 for r in self.reports if r.accepted),
            "pfds": len(self.pfds),
            "constant_pfds": len(self.constant_pfds()),
            "variable_pfds": len(self.variable_pfds()),
        }


class PfdDiscoverer:
    """Discovers PFDs directly from (dirty) data.

    The discoverer itself always mines serially; ``config.n_workers`` is
    interpreted by the execution engine's planner, which routes runs to
    the parallel backend and injects its fan-out through the ``mine``
    hook of :meth:`discover_with_report`.  Callers who want parallelism
    should go through :mod:`repro.engine` (or the session/CLI, which
    already do).
    """

    def __init__(
        self,
        config: Optional[DiscoveryConfig] = None,
        decision: Optional[DecisionFunction] = None,
    ):
        self.config = config or DiscoveryConfig()
        self.constant_miner = ConstantPfdMiner(self.config, decision)
        self.variable_miner = VariablePfdMiner(self.config)
        #: wall-clock accumulated per pipeline stage across runs
        self.timers = StageTimers()

    def discover(self, table: Table, relation: Optional[str] = None) -> List[PFD]:
        """Discover PFDs and return just the PFD list."""
        return self.discover_with_report(table, relation=relation).pfds

    def discover_with_report(
        self,
        table: Table,
        relation: Optional[str] = None,
        candidates: Optional[Sequence[CandidateDependency]] = None,
        mine: Optional[Callable] = None,
    ) -> DiscoveryResult:
        """Run the full pipeline and return PFDs plus statistics.

        ``mine`` swaps the candidate-mining stage: it receives
        ``(table, candidates)`` and returns the per-candidate reports in
        candidate order.  The default is the serial single-pass miner;
        the execution engine's parallel backend injects its process
        fan-out here (see ``repro.engine.executors``).
        """
        started = time.perf_counter()
        with self.timers.stage("profile"):
            profile = profile_table(table)
        if candidates is None:
            with self.timers.stage("candidates"):
                candidates = candidate_dependencies(table, self.config, profile)
        candidates = list(candidates)
        with self.timers.stage("mine"):
            reports = (mine or self._mine_serial)(table, candidates)
        with self.timers.stage("assemble"):
            pfds = self.assemble_pfds(candidates, reports, relation)
        elapsed = time.perf_counter() - started
        return DiscoveryResult(
            pfds=pfds,
            reports=reports,
            profile=profile,
            config=self.config,
            elapsed_seconds=elapsed,
        )

    def assemble_pfds(
        self,
        candidates: Sequence[CandidateDependency],
        reports: Sequence[DependencyReport],
        relation: Optional[str] = None,
    ) -> List[PFD]:
        """Package accepted per-candidate reports into named PFD objects.

        Shared by the monolithic pipeline above and the sharded
        discoverer (which mines the same reports from merged per-shard
        statistics) so both produce identically named, identically
        ordered rule sets.
        """
        pfds: List[PFD] = []
        counter = 0
        for candidate, report in zip(candidates, reports):
            if not report.accepted:
                continue
            if self.config.discover_constant and report.constant_candidates:
                counter += 1
                pfds.append(
                    self._build_constant_pfd(candidate, report, counter, relation)
                )
            if self.config.discover_variable:
                for variable in report.variable_candidates:
                    counter += 1
                    pfds.append(
                        self._build_variable_pfd(candidate, variable, counter, relation)
                    )
        return pfds

    # -- per-candidate mining ---------------------------------------------------

    def _mine_serial(
        self, table: Table, candidates: Sequence[CandidateDependency]
    ) -> List[DependencyReport]:
        """Mine candidates in order, tokenizing each LHS column exactly once.

        The single-pass columnar build: candidates are grouped by their
        (LHS column, token mode) pair and every group shares one
        :class:`ColumnTokenization`, so a table with many RHS columns no
        longer re-tokenizes the LHS per candidate.
        """
        if kernels_enabled(self.config.use_kernels):
            return self._mine_serial_kernel(table, candidates)
        tokenizations: Dict[Tuple[str, str], ColumnTokenization] = {}
        reports: List[DependencyReport] = []
        for candidate in candidates:
            tokenization = None
            if self.config.discover_constant:
                key = (candidate.lhs, candidate.lhs_mode)
                tokenization = tokenizations.get(key)
                if tokenization is None:
                    with self.timers.stage("tokenize"):
                        tokenization = tokenizations[key] = ColumnTokenization.extract(
                            table.column_ref(candidate.lhs),
                            candidate.lhs_mode,
                            self.config.ngram_size,
                        )
            reports.append(
                _mine_candidate_values(
                    candidate,
                    table.column_ref(candidate.lhs),
                    table.column_ref(candidate.rhs),
                    self.config,
                    self.constant_miner,
                    self.variable_miner,
                    tokenization=tokenization,
                    timers=self.timers,
                )
            )
        return reports

    def _mine_serial_kernel(
        self, table: Table, candidates: Sequence[CandidateDependency]
    ) -> List[DependencyReport]:
        """The columnar mining loop: encode each column once, tokenize
        each (LHS, mode) pair once over *distinct* values, then run the
        :mod:`repro.kernels` loop body per candidate.

        Candidates whose miners were customized beyond what the kernels
        reproduce fall back to the scalar loop body — reusing the
        distinct-level tokenization — so results never depend on which
        path ran.
        """
        encodings: Dict[str, ColumnEncoding] = {}
        triples: Dict[Tuple[str, str], list] = {}
        reports: List[DependencyReport] = []

        def encoding_for(name: str) -> ColumnEncoding:
            encoding = encodings.get(name)
            if encoding is None:
                encoding = encodings[name] = TABLE_ARTIFACTS.get(
                    table,
                    ("column_encoding", name),
                    lambda: encode_column(table.column_ref(name)),
                )
            return encoding

        for candidate in candidates:
            with self.timers.stage("tokenize"):
                lhs_encoding = encoding_for(candidate.lhs)
                rhs_encoding = encoding_for(candidate.rhs)
                candidate_triples = None
                if self.config.discover_constant:
                    key = (candidate.lhs, candidate.lhs_mode)
                    candidate_triples = triples.get(key)
                    if candidate_triples is None:
                        candidate_triples = triples[key] = TABLE_ARTIFACTS.get(
                            table,
                            (
                                "kernel_triples",
                                candidate.lhs,
                                candidate.lhs_mode,
                                self.config.ngram_size,
                            ),
                            lambda: batch_tokenize(
                                lhs_encoding,
                                candidate.lhs_mode,
                                self.config.ngram_size,
                            ),
                        )
            report = _mine_candidate_encoded(
                candidate,
                lhs_encoding,
                rhs_encoding,
                candidate_triples,
                self.config,
                self.constant_miner,
                self.variable_miner,
                timers=self.timers,
            )
            if report is None:
                tokenization = None
                if self.config.discover_constant:
                    tokenization = tokenization_from_encoding(
                        lhs_encoding,
                        candidate.lhs_mode,
                        self.config.ngram_size,
                        candidate_triples,
                    )
                report = _mine_candidate_values(
                    candidate,
                    table.column_ref(candidate.lhs),
                    table.column_ref(candidate.rhs),
                    self.config,
                    self.constant_miner,
                    self.variable_miner,
                    tokenization=tokenization,
                    timers=self.timers,
                )
            reports.append(report)
        return reports

    # -- per-candidate re-mining ------------------------------------------------

    def remine_candidate(
        self,
        candidate: CandidateDependency,
        lhs_values: Sequence[str],
        rhs_values: Sequence[str],
        tokenization: Optional[ColumnTokenization] = None,
    ) -> DependencyReport:
        """Mine a single candidate over materialized columns.

        The per-candidate entry point of the rule maintainer
        (:mod:`repro.discovery.maintenance`): a candidate's report is a
        pure function of its two column value sequences, so re-running
        just the candidates whose columns changed — through the very
        loop body the batch paths use — reproduces a full re-discovery's
        reports exactly.
        """
        return _mine_candidate_values(
            candidate,
            lhs_values,
            rhs_values,
            self.config,
            self.constant_miner,
            self.variable_miner,
            tokenization=tokenization,
            timers=self.timers,
        )

    def remine_candidate_encoded(
        self,
        candidate: CandidateDependency,
        lhs_encoding: ColumnEncoding,
        rhs_encoding: ColumnEncoding,
        triples_by_code=None,
    ) -> Optional[DependencyReport]:
        """Mine a single candidate over encoded columns (kernel path).

        Returns ``None`` when the miners were customized beyond what the
        kernels reproduce — the caller then falls back to
        :meth:`remine_candidate`, the same fallback rule the batch kernel
        paths apply.
        """
        return _mine_candidate_encoded(
            candidate,
            lhs_encoding,
            rhs_encoding,
            triples_by_code,
            self.config,
            self.constant_miner,
            self.variable_miner,
            timers=self.timers,
        )

    # -- PFD construction ----------------------------------------------------------

    @staticmethod
    def _build_constant_pfd(
        candidate: CandidateDependency,
        report: DependencyReport,
        counter: int,
        relation: Optional[str],
    ) -> PFD:
        pfd = PFD.constant(
            candidate.lhs,
            candidate.rhs,
            name=f"psi{counter}",
            relation=relation,
        )
        for row in report.constant_candidates:
            pfd.add_rule(
                {
                    candidate.lhs: row.lhs_pattern,
                    candidate.rhs: row.rhs_constant,
                }
            )
        return pfd

    @staticmethod
    def _build_variable_pfd(
        candidate: CandidateDependency,
        variable: VariableCandidate,
        counter: int,
        relation: Optional[str],
    ) -> PFD:
        pfd = PFD(
            fd=_embedded(candidate),
            name=f"psi{counter}",
            relation=relation,
        )
        pfd.add_rule(
            {
                candidate.lhs: variable.constrained_pattern,
                candidate.rhs: WILDCARD,
            }
        )
        return pfd


def _embedded(candidate: CandidateDependency):
    from repro.pfd.fd import EmbeddedFD

    return EmbeddedFD.between(candidate.lhs, candidate.rhs)


def _mine_candidate_values(
    candidate: CandidateDependency,
    lhs_values: Sequence[str],
    rhs_values: Sequence[str],
    config: DiscoveryConfig,
    constant_miner: ConstantPfdMiner,
    variable_miner: VariablePfdMiner,
    tokenization: Optional[ColumnTokenization] = None,
    timers: Optional[StageTimers] = None,
) -> DependencyReport:
    """The Figure 2 loop body for one ``A → B`` over materialized columns.

    Module-level so both the serial path and the worker processes of
    ``n_workers > 1`` share one implementation.
    """
    started = time.perf_counter()
    report = DependencyReport(candidate=candidate)
    if config.discover_constant:
        report.constant_candidates = constant_miner.mine(
            lhs_values,
            rhs_values,
            candidate.lhs_mode,
            tokenization=tokenization,
            timers=timers,
        )
        report.coverage = constant_miner.coverage(
            report.constant_candidates, lhs_values
        )
    if config.discover_variable:
        with stage_or_null(timers, "mine_variable"):
            report.variable_candidates = variable_miner.mine(
                lhs_values, rhs_values, candidate.lhs_mode
            )
    constant_ok = (
        bool(report.constant_candidates)
        and report.coverage >= config.min_coverage
    )
    variable_ok = bool(report.variable_candidates)
    if not constant_ok:
        # below-threshold constant tableaux are dropped (Figure 2 line 13)
        report.constant_candidates = []
    report.accepted = constant_ok or variable_ok
    report.elapsed_seconds = time.perf_counter() - started
    return report


def _mine_candidate_encoded(
    candidate: CandidateDependency,
    lhs_encoding: ColumnEncoding,
    rhs_encoding: ColumnEncoding,
    triples_by_code,
    config: DiscoveryConfig,
    constant_miner: ConstantPfdMiner,
    variable_miner: VariablePfdMiner,
    timers: Optional[StageTimers] = None,
) -> Optional[DependencyReport]:
    """The Figure 2 loop body over *encoded* columns, or ``None`` when
    the miners were customized beyond what the kernels reproduce (the
    caller then runs :func:`_mine_candidate_values`)."""
    # local import: repro.kernels.mine imports the miner modules, which
    # this package's __init__ loads before the discoverer — importing it
    # at module top would be circular when kernels are imported first
    from repro.kernels.mine import (
        coverage_kernel,
        mine_constant_kernel,
        mine_variable_kernel,
    )

    if config.discover_constant and type(constant_miner.decision) is not MajorityDecision:
        return None
    if config.discover_variable and type(variable_miner) is not VariablePfdMiner:
        return None
    started = time.perf_counter()
    report = DependencyReport(candidate=candidate)
    if config.discover_constant:
        selected = mine_constant_kernel(
            lhs_encoding,
            rhs_encoding,
            triples_by_code,
            config,
            constant_miner,
            timers=timers,
        )
        if selected is None:
            return None
        report.constant_candidates = selected
        report.coverage = coverage_kernel(selected, lhs_encoding)
    if config.discover_variable:
        variable = mine_variable_kernel(
            lhs_encoding,
            rhs_encoding,
            candidate.lhs_mode,
            config,
            variable_miner,
            timers=timers,
        )
        if variable is None:
            return None
        report.variable_candidates = variable
    constant_ok = (
        bool(report.constant_candidates)
        and report.coverage >= config.min_coverage
    )
    variable_ok = bool(report.variable_candidates)
    if not constant_ok:
        report.constant_candidates = []
    report.accepted = constant_ok or variable_ok
    report.elapsed_seconds = time.perf_counter() - started
    return report


def _mine_candidate_group(payload) -> List[DependencyReport]:
    """Worker entry point for the engine's parallel mining fan-out
    (``repro.engine.executors.mine_candidates_parallel``).

    One payload = all candidates sharing one LHS column (and token
    mode); the worker tokenizes that column once and mines each
    candidate's RHS against it, mirroring the serial single-pass build.
    """
    group_candidates, lhs_values, rhs_columns, config, decision = payload
    constant_miner = ConstantPfdMiner(config, decision)
    variable_miner = VariablePfdMiner(config)
    tokenization = None
    if config.discover_constant:
        tokenization = ColumnTokenization.extract(
            lhs_values, group_candidates[0].lhs_mode, config.ngram_size
        )
    return [
        _mine_candidate_values(
            candidate,
            lhs_values,
            rhs_values,
            config,
            constant_miner,
            variable_miner,
            tokenization=tokenization,
        )
        for candidate, rhs_values in zip(group_candidates, rhs_columns)
    ]
