"""The Discover-PFDs driver (Figure 2 of the paper).

:class:`PfdDiscoverer` glues together candidate generation, the constant
miner, and the variable miner, applies the minimum-coverage threshold γ,
and packages everything into :class:`~repro.pfd.pfd.PFD` objects plus a
:class:`DiscoveryResult` carrying the per-dependency statistics the
ANMAT GUI displays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dataset.profiling import TableProfile, profile_table
from repro.dataset.table import Table
from repro.discovery.candidates import CandidateDependency, candidate_dependencies
from repro.discovery.config import DiscoveryConfig
from repro.discovery.constant_miner import ConstantPfdMiner
from repro.discovery.decision import DecisionFunction, PatternTupleCandidate
from repro.discovery.variable_miner import VariableCandidate, VariablePfdMiner
from repro.pfd.pfd import PFD
from repro.pfd.tableau import WILDCARD


@dataclass
class DependencyReport:
    """Discovery statistics for one candidate dependency."""

    candidate: CandidateDependency
    constant_candidates: List[PatternTupleCandidate] = field(default_factory=list)
    variable_candidates: List[VariableCandidate] = field(default_factory=list)
    coverage: float = 0.0
    accepted: bool = False
    elapsed_seconds: float = 0.0

    @property
    def lhs(self) -> str:
        return self.candidate.lhs

    @property
    def rhs(self) -> str:
        return self.candidate.rhs


@dataclass
class DiscoveryResult:
    """Everything produced by one discovery run."""

    pfds: List[PFD]
    reports: List[DependencyReport]
    profile: TableProfile
    config: DiscoveryConfig
    elapsed_seconds: float

    def constant_pfds(self) -> List[PFD]:
        return [p for p in self.pfds if p.is_constant]

    def variable_pfds(self) -> List[PFD]:
        return [p for p in self.pfds if p.is_variable]

    def pfds_for(self, lhs: str, rhs: str) -> List[PFD]:
        """All discovered PFDs over a specific attribute pair."""
        return [
            p
            for p in self.pfds
            if p.lhs_attribute == lhs and p.rhs_attribute == rhs
        ]

    def report_for(self, lhs: str, rhs: str) -> Optional[DependencyReport]:
        for report in self.reports:
            if report.lhs == lhs and report.rhs == rhs:
                return report
        return None

    def summary(self) -> Dict[str, int]:
        return {
            "candidates_examined": len(self.reports),
            "dependencies_accepted": sum(1 for r in self.reports if r.accepted),
            "pfds": len(self.pfds),
            "constant_pfds": len(self.constant_pfds()),
            "variable_pfds": len(self.variable_pfds()),
        }


class PfdDiscoverer:
    """Discovers PFDs directly from (dirty) data."""

    def __init__(
        self,
        config: Optional[DiscoveryConfig] = None,
        decision: Optional[DecisionFunction] = None,
    ):
        self.config = config or DiscoveryConfig()
        self.constant_miner = ConstantPfdMiner(self.config, decision)
        self.variable_miner = VariablePfdMiner(self.config)

    def discover(self, table: Table, relation: Optional[str] = None) -> List[PFD]:
        """Discover PFDs and return just the PFD list."""
        return self.discover_with_report(table, relation=relation).pfds

    def discover_with_report(
        self,
        table: Table,
        relation: Optional[str] = None,
        candidates: Optional[Sequence[CandidateDependency]] = None,
    ) -> DiscoveryResult:
        """Run the full pipeline and return PFDs plus statistics."""
        started = time.perf_counter()
        profile = profile_table(table)
        if candidates is None:
            candidates = candidate_dependencies(table, self.config, profile)
        pfds: List[PFD] = []
        reports: List[DependencyReport] = []
        counter = 0
        for candidate in candidates:
            report = self._mine_candidate(table, candidate)
            reports.append(report)
            if not report.accepted:
                continue
            if self.config.discover_constant and report.constant_candidates:
                counter += 1
                pfds.append(
                    self._build_constant_pfd(candidate, report, counter, relation)
                )
            if self.config.discover_variable:
                for variable in report.variable_candidates:
                    counter += 1
                    pfds.append(
                        self._build_variable_pfd(candidate, variable, counter, relation)
                    )
        elapsed = time.perf_counter() - started
        return DiscoveryResult(
            pfds=pfds,
            reports=reports,
            profile=profile,
            config=self.config,
            elapsed_seconds=elapsed,
        )

    # -- per-candidate mining ---------------------------------------------------

    def _mine_candidate(
        self, table: Table, candidate: CandidateDependency
    ) -> DependencyReport:
        started = time.perf_counter()
        lhs_values = table.column_ref(candidate.lhs)
        rhs_values = table.column_ref(candidate.rhs)
        report = DependencyReport(candidate=candidate)
        if self.config.discover_constant:
            report.constant_candidates = self.constant_miner.mine(
                lhs_values, rhs_values, candidate.lhs_mode
            )
            report.coverage = self.constant_miner.coverage(
                report.constant_candidates, lhs_values
            )
        if self.config.discover_variable:
            report.variable_candidates = self.variable_miner.mine(
                lhs_values, rhs_values, candidate.lhs_mode
            )
        constant_ok = (
            bool(report.constant_candidates)
            and report.coverage >= self.config.min_coverage
        )
        variable_ok = bool(report.variable_candidates)
        if not constant_ok:
            # below-threshold constant tableaux are dropped (Figure 2 line 13)
            report.constant_candidates = []
        report.accepted = constant_ok or variable_ok
        report.elapsed_seconds = time.perf_counter() - started
        return report

    # -- PFD construction ----------------------------------------------------------

    @staticmethod
    def _build_constant_pfd(
        candidate: CandidateDependency,
        report: DependencyReport,
        counter: int,
        relation: Optional[str],
    ) -> PFD:
        pfd = PFD.constant(
            candidate.lhs,
            candidate.rhs,
            name=f"psi{counter}",
            relation=relation,
        )
        for row in report.constant_candidates:
            pfd.add_rule(
                {
                    candidate.lhs: row.lhs_pattern,
                    candidate.rhs: row.rhs_constant,
                }
            )
        return pfd

    @staticmethod
    def _build_variable_pfd(
        candidate: CandidateDependency,
        variable: VariableCandidate,
        counter: int,
        relation: Optional[str],
    ) -> PFD:
        pfd = PFD(
            fd=_embedded(candidate),
            name=f"psi{counter}",
            relation=relation,
        )
        pfd.add_rule(
            {
                candidate.lhs: variable.constrained_pattern,
                candidate.rhs: WILDCARD,
            }
        )
        return pfd


def _embedded(candidate: CandidateDependency):
    from repro.pfd.fd import EmbeddedFD

    return EmbeddedFD.between(candidate.lhs, candidate.rhs)
