"""Process fan-out primitives shared by the executor backends.

All fan-out routes through :class:`~repro.engine.worker_pool.WorkerPool`.
Callers either pass a persistent pool (sessions keep one alive across
discovery/detection/recheck and close it with the session) or pass
``pool=None`` for a self-contained map that builds an ephemeral pool and
tears it down before returning.  Either way the degrade semantics live
in one place: a pool that cannot start or breaks mid-map re-runs only
the unfinished payloads serially and surfaces the event as a
``PlanWarning``-visible decision.

Backends hand a picklable worker function and a payload list to
:func:`process_map`, or obtain a bound *shard map* via
:func:`make_shard_map` to inject into the sharded engines.  (One fan-out
stays bespoke: ``executors.mine_candidates_parallel`` additionally
degrades to *thread* workers when the discovery config or decision
function cannot be pickled, which ``process_map`` deliberately does not
model.)

The ``n_workers`` knob is interpreted only inside ``repro.engine``:
``<= 1`` means fully serial, anything larger caps the worker count.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

from repro.engine.worker_pool import WorkerPool

Payload = TypeVar("Payload")
Result = TypeVar("Result")

#: signature of the map hook the sharded engines accept: ``fn`` applied
#: to every payload, results in payload order.  Maps built over a
#: persistent pool additionally carry ``supports_keys = True`` and accept
#: ``keys=``/``payload_for=`` for warm-cached mapping.
ShardMap = Callable[[Callable[[Payload], Result], Sequence[Payload]], List[Result]]


def serial_map(fn: Callable[[Payload], Result], payloads: Sequence[Payload]) -> List[Result]:
    """Apply ``fn`` in-process, in order (the degenerate shard map)."""
    return [fn(payload) for payload in payloads]


def process_map(
    fn: Callable[[Payload], Result],
    payloads: Sequence[Payload],
    n_workers: int,
    pool: Optional[WorkerPool] = None,
    decisions: Optional[List[str]] = None,
) -> List[Result]:
    """Apply ``fn`` to every payload on worker processes.

    Results come back in payload order.  A persistent ``pool`` is used
    as-is (and left running); with ``pool=None`` an ephemeral
    :class:`WorkerPool` is built and closed around the map.  Runs
    serially when the worker count or payload count makes a pool
    pointless.  A pool that breaks mid-map re-runs **only the payloads
    without results** serially; the degrade is appended to ``decisions``
    (when given) and warned as a ``PlanWarning``.  Genuine worker errors
    propagate.
    """
    payloads = list(payloads)
    if pool is not None:
        try:
            return pool.map(fn, payloads)
        finally:
            if decisions is not None:
                decisions.extend(pool.take_decisions())
    ephemeral = WorkerPool(min(n_workers, len(payloads)))
    try:
        return ephemeral.map(fn, payloads)
    finally:
        if decisions is not None:
            decisions.extend(ephemeral.take_decisions())
        ephemeral.close()


def make_shard_map(
    n_workers: int, pool: Optional[WorkerPool] = None
) -> Optional[ShardMap]:
    """A shard map bound to ``n_workers``, or ``None`` for serial.

    The sharded engines treat ``None`` as "stay in-process" (which also
    lets them share per-value caches across shards); a non-``None`` map
    is applied to their per-shard extraction payloads.  When a
    persistent ``pool`` backs the map it advertises ``supports_keys``:
    the engines may then pass ``keys=`` (shard-version cache keys) and
    ``payload_for=`` (lazy payload builder) so repeated runs over
    unchanged shards skip the shard load and the process round-trip.
    """
    if n_workers <= 1:
        return None

    def pooled(
        fn: Callable[[Payload], Result],
        payloads: Optional[Sequence[Payload]] = None,
        keys=None,
        payload_for=None,
    ) -> List[Result]:
        if pool is not None and keys is not None:
            return pool.map_cached(fn, keys, payload_for=payload_for, payloads=payloads)
        if payloads is None:
            payloads = [payload_for(index) for index in range(len(keys))]
        return process_map(fn, payloads, n_workers, pool=pool)

    pooled.supports_keys = pool is not None
    pooled.pool_backed = pool is not None
    return pooled
