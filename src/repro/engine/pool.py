"""Process fan-out primitives shared by the executor backends.

Before the engine existed, each subsystem carried its own copy of the
same ``ProcessPoolExecutor`` dance (spin up a pool, ``map`` payloads,
fall back to serial when fork is unavailable).  Backends hand a
picklable worker function and a payload list to :func:`process_map`, or
obtain a bound *shard map* via :func:`make_shard_map` to inject into the
sharded engines.  (One fan-out stays bespoke:
``executors.mine_candidates_parallel`` additionally degrades to *thread*
workers when the discovery config or decision function cannot be
pickled, which ``process_map`` deliberately does not model.)

The ``n_workers`` knob is interpreted only inside ``repro.engine``:
``<= 1`` means fully serial, anything larger caps the pool at the
payload count.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, TypeVar

Payload = TypeVar("Payload")
Result = TypeVar("Result")

#: signature of the map hook the sharded engines accept: ``fn`` applied
#: to every payload, results in payload order
ShardMap = Callable[[Callable[[Payload], Result], Sequence[Payload]], List[Result]]


def serial_map(fn: Callable[[Payload], Result], payloads: Sequence[Payload]) -> List[Result]:
    """Apply ``fn`` in-process, in order (the degenerate shard map)."""
    return [fn(payload) for payload in payloads]


def process_map(
    fn: Callable[[Payload], Result],
    payloads: Sequence[Payload],
    n_workers: int,
) -> List[Result]:
    """Apply ``fn`` to every payload on worker processes.

    Results come back in payload order.  Runs serially when the worker
    count or payload count makes a pool pointless, and degrades to the
    serial path when the pool breaks (fork unavailable in the sandbox);
    genuine worker errors propagate.
    """
    max_workers = min(n_workers, len(payloads))
    if max_workers < 2:
        return serial_map(fn, payloads)
    try:
        with ProcessPoolExecutor(max_workers=max_workers) as executor:
            return list(executor.map(fn, payloads))
    except BrokenProcessPool:
        return serial_map(fn, payloads)


def make_shard_map(n_workers: int) -> Optional[ShardMap]:
    """A shard map bound to ``n_workers``, or ``None`` for serial.

    The sharded engines treat ``None`` as "stay in-process" (which also
    lets them share per-value caches across shards); a non-``None`` map
    is applied to their per-shard extraction payloads.
    """
    if n_workers <= 1:
        return None

    def pooled(fn: Callable[[Payload], Result], payloads: Sequence[Payload]) -> List[Result]:
        return process_map(fn, payloads, n_workers)

    return pooled
