"""The pluggable execution engine: one planner, interchangeable backends.

Every discovery/detection run in the system — session, CLI, examples,
benchmarks — goes through the same two steps:

1. :func:`plan_run` (or the :func:`plan_discovery` / :func:`plan_detection`
   wrappers) resolves the observable inputs (table size, ``shard_rows``,
   ``n_workers``, requested strategy/executor, sharded-vs-monolithic
   upload) into an :class:`ExecutionPlan`, recording every routing
   decision it takes;
2. :func:`build_executor` hands back the matching backend —
   :class:`SerialExecutor`, :class:`ParallelExecutor`, or
   :class:`ShardedExecutor` — and ``executor.run_discovery(plan, ...)``
   / ``executor.run_detection(plan, ...)`` executes it.

The :class:`~repro.sharding.store.ShardStore` interface (re-exported
here) is the storage seam of the sharded backend: shards can live in
memory or spill to disk without the engines noticing.  See
``docs/ARCHITECTURE.md`` for how the layers compose.
"""

from repro.engine.executors import (
    DataSource,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    ShardedExecutor,
    build_executor,
    detect_all_parallel,
    mine_candidates_parallel,
)
from repro.engine.plan import (
    DEFAULT_PARALLEL_WORKERS,
    DEFAULT_SHARD_ROWS,
    REQUESTABLE_EXECUTORS,
    ExecutionBackend,
    ExecutionPlan,
    PlanWarning,
    plan_detection,
    plan_discovery,
    plan_run,
)
from repro.engine.pool import make_shard_map, process_map, serial_map
from repro.engine.worker_pool import WorkerPool
from repro.sharding.object_store import LocalObjectClient, ObjectShardStore
from repro.sharding.overlay import ShardOverlay
from repro.sharding.remote import (
    FaultInjectingClient,
    HttpObjectClient,
    RetryPolicy,
)
from repro.sharding.store import (
    STORE_KINDS,
    InMemoryShardStore,
    ShardStore,
    SpillToDiskShardStore,
    make_shard_store,
)

__all__ = [
    "DataSource",
    "DEFAULT_PARALLEL_WORKERS",
    "DEFAULT_SHARD_ROWS",
    "ExecutionBackend",
    "ExecutionPlan",
    "Executor",
    "FaultInjectingClient",
    "HttpObjectClient",
    "InMemoryShardStore",
    "LocalObjectClient",
    "ObjectShardStore",
    "RetryPolicy",
    "ParallelExecutor",
    "PlanWarning",
    "REQUESTABLE_EXECUTORS",
    "STORE_KINDS",
    "SerialExecutor",
    "ShardOverlay",
    "ShardStore",
    "ShardedExecutor",
    "SpillToDiskShardStore",
    "WorkerPool",
    "make_shard_store",
    "build_executor",
    "detect_all_parallel",
    "make_shard_map",
    "mine_candidates_parallel",
    "plan_detection",
    "plan_discovery",
    "plan_run",
    "process_map",
    "serial_map",
]
