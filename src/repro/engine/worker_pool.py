"""A persistent, process-backed worker pool with a warm result cache.

Before this module existed, every fan-out in the system paid the full
pool lifecycle per call: ``process_map`` built a fresh
``ProcessPoolExecutor``, forked workers, pickled every payload, and tore
the pool down again — once per discovery run, once per detection run,
once per re-check.  A :class:`WorkerPool` amortizes all of that across a
session:

* **lazy start** — no process is forked until the first map that
  actually needs one (``n_workers >= 2`` and at least two payloads);
* **reuse** — one pool serves every discovery/detection/recheck call of
  a session; :meth:`close` (tied to ``AnmatSession.close()``) is the
  single, idempotent teardown point;
* **warm cache** — :meth:`map_cached` memoizes results under
  caller-supplied keys (the sharded engines key by shard version), so a
  repeated run over unchanged shards returns the cached statistic
  without rebuilding the payload, re-pickling shard bytes, or crossing
  the process boundary at all.  Cached results are returned by
  reference and must be treated as immutable — the same contract the
  shard-level ``TABLE_ARTIFACTS`` cache already imposes;
* **degrade, never lose work** — when the pool cannot start (fork
  unavailable in a sandbox) or breaks mid-map, only the payloads that
  have no result yet are re-run serially in-process, the degrade is
  recorded on :attr:`decisions` (executors copy it onto the
  ``ExecutionPlan``) and surfaced as a
  :class:`~repro.engine.plan.PlanWarning`.  Genuine worker exceptions
  still propagate.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Hashable, List, Optional, Sequence, TypeVar

from repro.engine.plan import PlanWarning

Payload = TypeVar("Payload")
Result = TypeVar("Result")

#: sentinel distinguishing "no result yet" from a legitimate ``None``
_MISSING = object()


class WorkerPool:
    """A lazily started ``ProcessPoolExecutor`` reused across runs.

    Parameters
    ----------
    n_workers:
        Worker processes the pool may fork.  ``<= 1`` never starts a
        pool: every map runs serially in-process.
    warm_cache_entries:
        How many :meth:`map_cached` results stay memoized (LRU).  ``0``
        disables the warm cache.
    """

    def __init__(self, n_workers: int, warm_cache_entries: int = 128):
        self.n_workers = n_workers
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self._broken = False
        #: (fn module, fn qualname, key) → memoized result
        self._warm: "OrderedDict[Hashable, object]" = OrderedDict()
        self._warm_cache_entries = warm_cache_entries
        #: degrade events since the last :meth:`take_decisions` drain
        self.decisions: List[str] = []
        self.warm_hits = 0
        self.maps_run = 0

    # -- lifecycle ---------------------------------------------------------------

    @property
    def started(self) -> bool:
        """Whether worker processes have actually been forked."""
        return self._executor is not None

    @property
    def broken(self) -> bool:
        """Whether the pool degraded to serial for the rest of its life."""
        return self._broken

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the worker processes down and drop the warm cache.

        Idempotent, and safe to call on a pool that never started.  A
        closed pool stays usable — maps simply run serially — so a
        session method racing a ``close()`` degrades instead of
        crashing.
        """
        self._closed = True
        self._warm.clear()
        if self._executor is not None:
            executor, self._executor = self._executor, None
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def take_decisions(self) -> List[str]:
        """Drain the degrade events recorded since the last drain (the
        executors append them to the plan that was running)."""
        drained, self.decisions = self.decisions, []
        return drained

    def clear_warm_cache(self) -> None:
        """Forget every memoized result.  The session calls this when a
        new dataset is loaded: shard indexes and versions restart from
        scratch there, so keys from the previous dataset must not hit."""
        self._warm.clear()

    # -- mapping -----------------------------------------------------------------

    def map(
        self, fn: Callable[[Payload], Result], payloads: Sequence[Payload]
    ) -> List[Result]:
        """Apply ``fn`` to every payload, results in payload order.

        Runs serially when a pool would buy nothing (one worker, one
        payload, closed or broken pool).  A pool that breaks mid-map
        re-runs **only the payloads without results** serially and
        records the degrade; genuine worker errors propagate.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        self.maps_run += 1
        executor = self._ensure_started(len(payloads))
        if executor is None:
            return [fn(payload) for payload in payloads]
        results: List[object] = [_MISSING] * len(payloads)
        try:
            futures = [executor.submit(fn, payload) for payload in payloads]
        except (BrokenProcessPool, RuntimeError, OSError) as exc:
            self._degrade(f"worker pool could not accept work ({exc})")
            return self._finish_serial(fn, payloads, results)
        broke: Optional[BrokenProcessPool] = None
        for position, future in enumerate(futures):
            try:
                results[position] = future.result()
            except BrokenProcessPool as exc:
                broke = exc
                break
        if broke is not None:
            self._degrade(f"worker pool broke mid-map ({broke})")
            return self._finish_serial(fn, payloads, results)
        return list(results)

    def map_cached(
        self,
        fn: Callable[[Payload], Result],
        keys: Sequence[Hashable],
        payload_for: Optional[Callable[[int], Payload]] = None,
        payloads: Optional[Sequence[Payload]] = None,
    ) -> List[Result]:
        """:meth:`map` with a warm result cache keyed by ``keys``.

        ``keys[i]`` identifies payload ``i``'s result across calls — the
        sharded engines use ``(stat kind, shard index, shard version,
        …params)``, so an unchanged shard hits and a mutated one misses.
        Payloads are supplied either eagerly (``payloads``) or lazily
        (``payload_for(i)``, called **only for cache misses** — with an
        out-of-core store a warm hit then skips the shard load
        entirely).  A ``None`` key is never cached.
        """
        keys = list(keys)
        if payload_for is None:
            if payloads is None:
                raise ValueError("map_cached needs payloads or payload_for")
            eager = list(payloads)
            payload_for = lambda index: eager[index]  # noqa: E731
        results: List[object] = [_MISSING] * len(keys)
        miss_positions: List[int] = []
        for position, key in enumerate(keys):
            cache_key = self._cache_key(fn, key)
            if cache_key is not None and cache_key in self._warm:
                self._warm.move_to_end(cache_key)
                results[position] = self._warm[cache_key]
                self.warm_hits += 1
            else:
                miss_positions.append(position)
        if miss_positions:
            miss_results = self.map(
                fn, [payload_for(position) for position in miss_positions]
            )
            for position, result in zip(miss_positions, miss_results):
                results[position] = result
                cache_key = self._cache_key(fn, keys[position])
                if cache_key is not None and self._warm_cache_entries > 0:
                    self._warm[cache_key] = result
                    self._warm.move_to_end(cache_key)
                    while len(self._warm) > self._warm_cache_entries:
                        self._warm.popitem(last=False)
        return list(results)

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _cache_key(fn: Callable, key: Hashable) -> Optional[Hashable]:
        if key is None:
            return None
        return (
            getattr(fn, "__module__", ""),
            getattr(fn, "__qualname__", repr(fn)),
            key,
        )

    def _ensure_started(self, n_payloads: int) -> Optional[ProcessPoolExecutor]:
        """The live executor, or ``None`` when this map should run
        serially (too little work, closed, broken, or fork failed)."""
        if (
            self.n_workers < 2
            or n_payloads < 2
            or self._closed
            or self._broken
        ):
            return None
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(max_workers=self.n_workers)
            except (NotImplementedError, OSError, ValueError) as exc:
                self._degrade(f"worker pool could not start ({exc})")
                return None
        return self._executor

    def _degrade(self, reason: str) -> None:
        """Permanently fall back to serial maps, loudly: the event lands
        on :attr:`decisions` (plan-visible) and warns ``PlanWarning``."""
        self._broken = True
        if self._executor is not None:
            executor, self._executor = self._executor, None
            # the pool is already dead; don't block on its corpse
            executor.shutdown(wait=False)
        message = f"{reason}; unfinished payloads run serially in-process"
        self.decisions.append(message)
        warnings.warn(message, PlanWarning, stacklevel=4)

    @staticmethod
    def _finish_serial(
        fn: Callable[[Payload], Result],
        payloads: Sequence[Payload],
        results: List[object],
    ) -> List[Result]:
        """Fill in only the missing results in-process (payloads that
        completed before the pool broke keep their results)."""
        for position, result in enumerate(results):
            if result is _MISSING:
                results[position] = fn(payloads[position])
        return list(results)
