"""Execution planning: *what* to run is decided once, in one place.

Before this layer existed the repository had three hand-wired ways to
run the same PFD workload — the monolithic engines, the ``n_workers``
process fan-out, and the sharded path — with the routing decisions
duplicated as ad-hoc branches in the session and the CLI.  The planner
replaces all of them: every discovery/detection run first builds an
:class:`ExecutionPlan` from the observable inputs (table size, requested
executor, ``shard_rows``, ``n_workers``, detection strategy, whether the
upload arrived sharded), and the matching
:class:`~repro.engine.executors.Executor` backend then runs the plan.

The plan records every routing decision it takes as a human-readable
line (``plan.decisions``), so ``--explain-plan`` and post-mortems can
show *why* a backend was chosen.  Decisions that silently change what
the user asked for — notably an explicit detection strategy forcing a
sharded upload back onto the monolithic engine — additionally raise a
:class:`PlanWarning`.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import List, Optional

from repro.detection.detector import DetectionStrategy
from repro.discovery.config import DiscoveryConfig
from repro.errors import DetectionError
from repro.kernels.runtime import HAVE_NUMPY, kernels_enabled


class ExecutionBackend:
    """String constants naming the executor backends."""

    SERIAL = "serial"
    PARALLEL = "parallel"
    SHARDED = "sharded"

    ALL = (SERIAL, PARALLEL, SHARDED)


#: what callers may request: a concrete backend, or ``auto`` routing
REQUESTABLE_EXECUTORS = ("auto", *ExecutionBackend.ALL)

#: shard size used when the sharded backend is requested explicitly but
#: nothing (config, upload) suggests one
DEFAULT_SHARD_ROWS = 4096

#: workers used when the parallel backend is requested explicitly but
#: ``config.n_workers`` does not ask for any
DEFAULT_PARALLEL_WORKERS = 2


class PlanWarning(UserWarning):
    """A plan decision silently overrode something the user asked for."""


@dataclass
class ExecutionPlan:
    """One resolved discovery or detection run.

    The plan is pure data plus the :class:`DiscoveryConfig` it was
    planned from; executing it is the
    :class:`~repro.engine.executors.Executor`'s job.
    """

    kind: str  #: ``"discovery"`` or ``"detection"``
    backend: str  #: one of :class:`ExecutionBackend`
    config: DiscoveryConfig
    #: detection strategy handed to the monolithic engine (``"auto"``
    #: for discovery plans and for the sharded backend)
    strategy: str = DetectionStrategy.AUTO
    #: effective fan-out workers (``<= 1`` means fully serial stages)
    n_workers: int = 0
    #: effective shard size (``0`` for the monolithic backends)
    shard_rows: int = 0
    #: estimated shard count (``0`` for the monolithic backends)
    n_shards: int = 0
    n_rows: int = 0
    #: resolved kernel choice: ``"on"`` when the vectorized columnar
    #: kernels run the hot paths, ``"off"`` for the scalar paths
    use_kernels: str = "off"
    #: resolved materialization mode: ``"never"`` when a sharded upload
    #: runs end to end on its shard store, ``"eager"`` when a monolithic
    #: table is (or already was) built for the run
    materialization: str = "eager"
    #: the shard store backend the upload streams through (``"memory"``,
    #: ``"spill"`` or ``"object"``; meaningful for sharded uploads)
    store: str = "memory"
    #: which client serves the ``object`` store: ``"local"`` for the
    #: filesystem client, ``"http"`` for the remote client at
    #: ``config.object_url``, ``"none"`` for the other stores
    object_client: str = "none"
    #: worker-pool lifecycle for the fan-out stages: ``"persistent"``
    #: reuses the session's :class:`~repro.engine.worker_pool.WorkerPool`
    #: across runs, ``"per-call"`` builds an ephemeral pool per run
    pool: str = "persistent"
    #: how many shard objects ahead the ``object`` store's reader
    #: fetches on background threads (``0`` = sequential reads; only
    #: meaningful when ``store`` is ``"object"``)
    prefetch_depth: int = 0
    #: the executor the caller asked for (``"auto"`` or a backend name)
    requested_executor: str = "auto"
    #: how a re-check refreshes the rule set: ``"incremental"`` routes
    #: through the rule maintainer, ``"full"`` re-discovers from scratch,
    #: ``"none"`` for plans that are not re-checks
    rule_maintenance: str = "none"
    #: human-readable routing decisions, in the order they were taken
    decisions: List[str] = field(default_factory=list)

    def describe(self) -> str:
        """The ``--explain-plan`` rendering: one summary line plus one
        indented line per recorded decision."""
        if self.backend == ExecutionBackend.SHARDED:
            shape = f"shards={self.n_shards}x{self.shard_rows} store={self.store}"
            if self.object_client != "none":
                shape += f"[{self.object_client}]"
        else:
            shape = f"strategy={self.strategy}"
        maintenance = (
            f" rule_maintenance={self.rule_maintenance}"
            if self.rule_maintenance != "none"
            else ""
        )
        pool = f" pool={self.pool}" if self.n_workers > 1 else ""
        prefetch = (
            f" prefetch_depth={self.prefetch_depth}" if self.prefetch_depth > 0 else ""
        )
        lines = [
            f"execution plan ({self.kind}): backend={self.backend} "
            f"{shape} workers={self.n_workers} rows={self.n_rows} "
            f"kernels={self.use_kernels}{pool}{prefetch}{maintenance}"
        ]
        lines.extend(f"  - {decision}" for decision in self.decisions)
        return "\n".join(lines)


def plan_run(
    kind: str,
    n_rows: int,
    config: Optional[DiscoveryConfig] = None,
    *,
    strategy: str = DetectionStrategy.AUTO,
    executor: str = "auto",
    sharded_upload: bool = False,
    upload_shard_rows: int = 0,
    recheck: bool = False,
    maintainable: bool = False,
) -> ExecutionPlan:
    """Resolve one discovery/detection run into an :class:`ExecutionPlan`.

    Parameters
    ----------
    kind:
        ``"discovery"`` or ``"detection"``.
    n_rows:
        Size of the logical table.
    config:
        The session's :class:`DiscoveryConfig` (supplies ``shard_rows``
        and ``n_workers``).
    strategy:
        Detection only — the requested monolithic strategy; anything
        other than ``auto`` pins the run to a monolithic backend.
    executor:
        ``auto`` routes on the inputs; a backend name forces it.
    sharded_upload:
        Whether the dataset arrived as a :class:`ShardedTable` (e.g.
        streamed chunk-wise from CSV).
    upload_shard_rows:
        The upload's largest shard, used as the shard size when
        ``config.shard_rows`` does not name one.
    recheck:
        Discovery only — whether this run refreshes an existing rule set
        after edits (``AnmatSession.recheck()``) rather than discovering
        from scratch; enables the rule-maintenance resolution below.
    maintainable:
        Whether a seeded :class:`~repro.discovery.maintenance.RuleMaintainer`
        baseline exists for the dataset being re-checked.
    """
    if kind not in ("discovery", "detection"):
        raise ValueError(f"unknown plan kind {kind!r}")
    if executor not in REQUESTABLE_EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of {REQUESTABLE_EXECUTORS}"
        )
    if kind == "detection" and strategy not in DetectionStrategy.ALL:
        raise DetectionError(
            f"unknown strategy {strategy!r}; expected one of {DetectionStrategy.ALL}"
        )
    config = config or DiscoveryConfig()
    decisions: List[str] = []
    wants_sharded = config.shard_rows > 0 or sharded_upload

    # -- backend selection ---------------------------------------------------
    if executor == ExecutionBackend.SERIAL:
        backend = ExecutionBackend.SERIAL
        if wants_sharded:
            decisions.append(
                "serial executor requested explicitly: the sharded "
                "upload/shard_rows request is stitched and run monolithically"
            )
    elif executor == ExecutionBackend.PARALLEL:
        backend = ExecutionBackend.PARALLEL
        if wants_sharded:
            decisions.append(
                "parallel executor requested explicitly: running the "
                "monolithic engine with process fan-out instead of shards"
            )
    elif executor == ExecutionBackend.SHARDED:
        backend = ExecutionBackend.SHARDED
    elif wants_sharded:
        backend = ExecutionBackend.SHARDED
        decisions.append(
            "sharded upload detected"
            if sharded_upload and config.shard_rows <= 0
            else f"config.shard_rows={config.shard_rows} requests sharded execution"
        )
    elif config.n_workers > 1:
        backend = ExecutionBackend.PARALLEL
        decisions.append(
            f"config.n_workers={config.n_workers} requests process fan-out"
        )
    else:
        backend = ExecutionBackend.SERIAL

    # -- an explicit strategy pins detection to a monolithic engine ----------
    if (
        kind == "detection"
        and strategy != DetectionStrategy.AUTO
        and backend == ExecutionBackend.SHARDED
    ):
        backend = (
            ExecutionBackend.PARALLEL
            if config.n_workers > 1
            else ExecutionBackend.SERIAL
        )
        reason = (
            f"explicitly requested strategy {strategy!r} runs the monolithic "
            f"{backend} backend; shard parallelism is skipped (the sharded "
            "backend has its own distinct-value strategy)"
        )
        decisions.append(reason)
        warnings.warn(reason, PlanWarning, stacklevel=2)

    # -- effective workers ---------------------------------------------------
    n_workers = config.n_workers
    if executor == ExecutionBackend.PARALLEL and n_workers <= 1:
        n_workers = DEFAULT_PARALLEL_WORKERS
        decisions.append(
            "parallel executor requested without config.n_workers; "
            f"defaulting to {n_workers} workers"
        )
    if backend == ExecutionBackend.SERIAL and n_workers > 1:
        # only reachable via an explicit serial request — say so rather
        # than letting describe() print workers that will never run
        decisions.append(
            f"serial backend runs fully in-process; "
            f"config.n_workers={n_workers} is ignored"
        )
        n_workers = 0

    # -- kernel resolution ---------------------------------------------------
    use_kernels = "on" if kernels_enabled(config.use_kernels) else "off"
    if config.use_kernels == "auto":
        decisions.append(
            f"use_kernels=auto resolves to {use_kernels} "
            f"(numpy {'available' if HAVE_NUMPY else 'unavailable'})"
        )
    elif config.use_kernels == "on" and not HAVE_NUMPY:
        reason = (
            "use_kernels='on' requested but numpy is unavailable; "
            "running the equivalent scalar path"
        )
        decisions.append(reason)
        warnings.warn(reason, PlanWarning, stacklevel=2)

    # -- effective shard size ------------------------------------------------
    shard_rows = 0
    n_shards = 0
    if backend == ExecutionBackend.SHARDED:
        if config.shard_rows > 0:
            shard_rows = config.shard_rows
        elif upload_shard_rows > 0:
            shard_rows = upload_shard_rows
            decisions.append(
                f"keeping the upload's shard size of {shard_rows} rows"
            )
        else:
            shard_rows = DEFAULT_SHARD_ROWS
            decisions.append(
                "sharded executor requested without a shard size; "
                f"defaulting to shard_rows={shard_rows}"
            )
        shard_rows = max(1, shard_rows)
        n_shards = max(1, math.ceil(n_rows / shard_rows)) if n_rows else 1

    # -- materialization -----------------------------------------------------
    # A sharded upload that runs on the sharded backend never builds a
    # monolithic table: profiling, discovery, detection and the edit loop
    # all read through the shard store (and the edit overlay).  Any other
    # combination materializes.
    materialization = "eager"
    if sharded_upload:
        if backend == ExecutionBackend.SHARDED:
            materialization = "never"
            decisions.append(
                "materialization=never: the sharded upload runs end to end "
                f"on its {config.store} shard store"
            )
        else:
            decisions.append(
                f"materialization=eager: the {backend} backend materializes "
                "the sharded upload into one monolithic table"
            )

    # -- object store client -------------------------------------------------
    # Which client serves the shard objects is a real routing decision —
    # shard bytes either stay on the local filesystem or cross the
    # network to config.object_url — so the plan records it explicitly.
    object_client = "none"
    if config.store == "object" and backend == ExecutionBackend.SHARDED:
        object_client = "http" if config.object_url else "local"
        decisions.append(
            f"shard objects go through the remote HTTP client at {config.object_url}"
            if config.object_url
            else "shard objects stay on the local filesystem client"
        )

    # -- pipelined execution -------------------------------------------------
    # Pool lifecycle only matters when a fan-out will actually run;
    # prefetch only matters when shard bytes leave the process (the
    # object store), so both decisions are recorded exactly then.
    pool = config.pool
    if n_workers > 1:
        decisions.append(
            "worker pool is persistent: processes stay warm across "
            "discovery/detection/recheck and close with the session"
            if pool == "persistent"
            else "worker pool is per-call: a fresh process pool is built "
            "and torn down inside each run"
        )
    prefetch_depth = 0
    if config.store == "object" and backend == ExecutionBackend.SHARDED:
        prefetch_depth = config.prefetch_depth
        if prefetch_depth > 0:
            decisions.append(
                f"prefetch_depth={prefetch_depth}: shard objects are "
                "fetched and checksum-verified ahead on background threads"
            )
        else:
            decisions.append(
                "prefetch_depth=0: shard objects are read sequentially "
                "on the compute path"
            )

    # -- rule maintenance ----------------------------------------------------
    # Only a re-check maintains; a first discovery has nothing to maintain.
    # Incremental maintenance additionally needs the sharded backend (the
    # maintainer diffs shard versions) and a seeded baseline.
    rule_maintenance = "none"
    if kind == "discovery" and recheck:
        requested = config.rule_maintenance
        if requested == "full":
            rule_maintenance = "full"
            decisions.append(
                "rule_maintenance='full' requested: the re-check re-discovers "
                "from scratch"
            )
        elif backend != ExecutionBackend.SHARDED or not maintainable:
            rule_maintenance = "full"
            reason = (
                "no maintainable rule baseline for this re-check "
                "(incremental maintenance needs a prior sharded discovery "
                "run); re-discovering from scratch"
                if backend == ExecutionBackend.SHARDED
                else f"rule maintenance needs the sharded backend, not "
                f"{backend}; re-discovering from scratch"
            )
            decisions.append(reason)
            if requested == "incremental":
                warnings.warn(reason, PlanWarning, stacklevel=2)
        else:
            rule_maintenance = "incremental"
            decisions.append(
                "re-check maintains the rule set incrementally from the "
                "seeded baseline (falls back to full re-discovery on "
                "structural changes)"
            )

    return ExecutionPlan(
        kind=kind,
        backend=backend,
        config=config,
        strategy=strategy if kind == "detection" else DetectionStrategy.AUTO,
        n_workers=n_workers,
        shard_rows=shard_rows,
        n_shards=n_shards,
        n_rows=n_rows,
        use_kernels=use_kernels,
        materialization=materialization,
        store=config.store,
        object_client=object_client,
        pool=pool,
        prefetch_depth=prefetch_depth,
        requested_executor=executor,
        rule_maintenance=rule_maintenance,
        decisions=decisions,
    )


def plan_discovery(
    n_rows: int,
    config: Optional[DiscoveryConfig] = None,
    *,
    executor: str = "auto",
    sharded_upload: bool = False,
    upload_shard_rows: int = 0,
    recheck: bool = False,
    maintainable: bool = False,
) -> ExecutionPlan:
    """Plan one discovery run (see :func:`plan_run`)."""
    return plan_run(
        "discovery",
        n_rows,
        config,
        executor=executor,
        sharded_upload=sharded_upload,
        upload_shard_rows=upload_shard_rows,
        recheck=recheck,
        maintainable=maintainable,
    )


def plan_detection(
    n_rows: int,
    config: Optional[DiscoveryConfig] = None,
    *,
    strategy: str = DetectionStrategy.AUTO,
    executor: str = "auto",
    sharded_upload: bool = False,
    upload_shard_rows: int = 0,
) -> ExecutionPlan:
    """Plan one detection run (see :func:`plan_run`)."""
    return plan_run(
        "detection",
        n_rows,
        config,
        strategy=strategy,
        executor=executor,
        sharded_upload=sharded_upload,
        upload_shard_rows=upload_shard_rows,
    )
