"""Executor backends: *how* an :class:`ExecutionPlan` runs.

Every discovery/detection run in the system goes ``plan →
executor.run(plan)``.  The three concrete backends map one-to-one onto
:class:`~repro.engine.plan.ExecutionBackend`:

* :class:`SerialExecutor` — the monolithic engines
  (:class:`~repro.discovery.discoverer.PfdDiscoverer`,
  :class:`~repro.detection.detector.ErrorDetector`), fully in-process.
* :class:`ParallelExecutor` — the same monolithic semantics with the
  embarrassingly parallel stages fanned out over worker processes:
  candidate mining is grouped by LHS column (each column crosses the
  process boundary once), detection fans out per rule over projected
  two-column payloads.  Results are byte-identical to the serial path.
* :class:`ShardedExecutor` — the sharded engines over a
  :class:`~repro.sharding.sharded_table.ShardedTable` (whose shards may
  live in any :class:`~repro.sharding.store.ShardStore`), with the
  per-shard extraction fanned out when the plan carries workers.

Executors are stateless; :func:`build_executor` hands back the backend a
plan names.  The :class:`DataSource` wrapper owns the monolithic-table /
sharded-view duality (including the rebuild-on-edit caching the session
used to carry), so executors never branch on how the data arrived.
"""

from __future__ import annotations

import pickle
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dataset.table import Table
from repro.detection.detector import ErrorDetector
from repro.detection.violation import ViolationReport
from repro.discovery.discoverer import (
    DiscoveryResult,
    PfdDiscoverer,
    _mine_candidate_group,
)
from repro.engine.plan import ExecutionBackend, ExecutionPlan
from repro.engine.pool import make_shard_map, process_map
from repro.errors import DetectionError
from repro.pfd.pfd import PFD
from repro.sharding.detection import ShardedDetector
from repro.sharding.discovery import ShardedDiscoverer
from repro.sharding.sharded_table import ShardedTable


class DataSource:
    """One dataset as both a monolithic table and a sharded view.

    Wraps the logical :class:`Table` plus (optionally) the
    :class:`ShardedTable` it arrived as.  :meth:`sharded_view` rebuilds
    the shards when the monolithic table was edited since they were cut
    (the edit loop mutates the monolithic table, never the shards) and
    otherwise reuses them, preserving the merged-artifact caches.
    """

    def __init__(self, table: Table, sharded: Optional[ShardedTable] = None):
        self.table = table
        self._sharded = sharded
        self._sharded_version = table.version if sharded is not None else None
        #: whether the dataset *arrived* sharded — a plan input; building
        #: a view later (e.g. a forced sharded run) must not flip it
        self._is_upload = sharded is not None
        self._sharded_rows = (
            max(sharded.shard_row_counts()) if sharded is not None else 0
        )

    @property
    def is_sharded_upload(self) -> bool:
        """Whether the dataset arrived as shards (upload kind, not
        whether a sharded view happens to be cached)."""
        return self._is_upload

    @property
    def upload_shard_rows(self) -> int:
        """The upload partition's largest shard (``0`` for monolithic
        uploads)."""
        return self._sharded_rows if self._is_upload else 0

    def sharded_view(self, shard_rows: int) -> ShardedTable:
        """The sharded view of the current table at the requested shard
        size, rebuilt when the table was edited since the view was built
        or when the cached partition does not match ``shard_rows`` (so
        the executed partition always matches the plan's)."""
        if (
            self._sharded is not None
            and self._sharded_version == self.table.version
            and (shard_rows <= 0 or shard_rows == self._sharded_rows)
        ):
            return self._sharded
        if shard_rows <= 0 and self._sharded is not None:
            # sharded upload without an explicit knob: keep its shard size
            shard_rows = self._sharded_rows
        shard_rows = max(1, shard_rows)
        self._sharded = ShardedTable.from_table(self.table, shard_rows)
        self._sharded_version = self.table.version
        self._sharded_rows = shard_rows
        return self._sharded


class Executor(ABC):
    """A backend that can run discovery/detection plans."""

    name: str

    @abstractmethod
    def run_discovery(
        self, plan: ExecutionPlan, source: DataSource, relation: Optional[str] = None
    ) -> DiscoveryResult:
        """Run a discovery plan over the source."""

    @abstractmethod
    def run_detection(
        self, plan: ExecutionPlan, source: DataSource, rules: Sequence[PFD]
    ) -> ViolationReport:
        """Run a detection plan (the given rules) over the source."""


class SerialExecutor(Executor):
    """The monolithic engines, fully in-process."""

    name = ExecutionBackend.SERIAL

    def run_discovery(self, plan, source, relation=None):
        return PfdDiscoverer(plan.config).discover_with_report(
            source.table, relation=relation
        )

    def run_detection(self, plan, source, rules):
        return ErrorDetector(source.table).detect_all(rules, strategy=plan.strategy)


class ParallelExecutor(Executor):
    """Monolithic semantics with process fan-out of the parallel stages."""

    name = ExecutionBackend.PARALLEL

    def run_discovery(self, plan, source, relation=None):
        discoverer = PfdDiscoverer(plan.config)
        return discoverer.discover_with_report(
            source.table,
            relation=relation,
            mine=lambda table, candidates: mine_candidates_parallel(
                discoverer, table, candidates, plan.n_workers
            ),
        )

    def run_detection(self, plan, source, rules):
        return detect_all_parallel(
            source.table, list(rules), plan.strategy, plan.n_workers
        )


class ShardedExecutor(Executor):
    """The sharded engines over merged per-shard statistics."""

    name = ExecutionBackend.SHARDED

    def run_discovery(self, plan, source, relation=None):
        sharded = source.sharded_view(plan.shard_rows)
        return ShardedDiscoverer(
            plan.config, shard_map=make_shard_map(plan.n_workers)
        ).discover_with_report(sharded, relation=relation)

    def run_detection(self, plan, source, rules):
        sharded = source.sharded_view(plan.shard_rows)
        return ShardedDetector(
            sharded,
            shard_map=make_shard_map(plan.n_workers),
            use_kernels=plan.use_kernels,
        ).detect_all(rules)


_EXECUTORS: Dict[str, Executor] = {
    ExecutionBackend.SERIAL: SerialExecutor(),
    ExecutionBackend.PARALLEL: ParallelExecutor(),
    ExecutionBackend.SHARDED: ShardedExecutor(),
}


def build_executor(plan: ExecutionPlan) -> Executor:
    """The executor backend a plan names (executors are stateless, so
    one shared instance per backend)."""
    try:
        return _EXECUTORS[plan.backend]
    except KeyError:
        raise DetectionError(f"plan names unknown backend {plan.backend!r}") from None


# -- parallel discovery -----------------------------------------------------------


def mine_candidates_parallel(
    discoverer: PfdDiscoverer,
    table: Table,
    candidates: Sequence,
    n_workers: int,
) -> List:
    """Fan candidate mining out over ``concurrent.futures`` workers.

    Work is sharded by (LHS column, token mode) so each LHS column
    crosses the process boundary once and each worker builds its
    single-pass tokenization once — the same sharing the serial path
    gets.  Groups are independent (embarrassingly parallel) and the
    reports are reassembled in candidate order, so output stays
    byte-identical to the serial path.

    Process workers are preferred; thread workers are used when the
    config or decision function cannot be pickled, and as a fallback if
    the pool dies (e.g. fork unavailable).  Genuine mining errors
    propagate either way.
    """
    config = discoverer.config
    decision = discoverer.constant_miner.decision
    if n_workers <= 1 or len(candidates) < 2:
        return discoverer._mine_serial(table, candidates)
    groups: Dict[Tuple[str, str], List[int]] = {}
    for position, candidate in enumerate(candidates):
        groups.setdefault((candidate.lhs, candidate.lhs_mode), []).append(position)
    # Workers only read the columns, so payloads carry references: the
    # process pool serializes them on submit, the thread pool shares
    # them in-process — neither needs an up-front copy.
    payloads = [
        (
            [candidates[i] for i in positions],
            table.column_ref(lhs),
            [table.column_ref(candidates[i].rhs) for i in positions],
            config,
            decision,
        )
        for (lhs, _mode), positions in groups.items()
    ]
    if len(payloads) < 2:
        # one LHS column group: a pool of one buys nothing, skip it
        return discoverer._mine_serial(table, candidates)
    max_workers = min(n_workers, len(payloads))
    try:
        pickle.dumps((config, decision))
        executor_cls = ProcessPoolExecutor
    except Exception:
        executor_cls = ThreadPoolExecutor
    try:
        with executor_cls(max_workers=max_workers) as executor:
            group_reports = list(executor.map(_mine_candidate_group, payloads))
    except BrokenProcessPool:
        with ThreadPoolExecutor(max_workers=max_workers) as executor:
            group_reports = list(executor.map(_mine_candidate_group, payloads))
    reports: List = [None] * len(candidates)
    for positions, group in zip(groups.values(), group_reports):
        for position, report in zip(positions, group):
            reports[position] = report
    return reports


# -- parallel detection ------------------------------------------------------------


def detect_all_parallel(
    table: Table, rules: List[PFD], strategy: str, n_workers: int
) -> ViolationReport:
    """Detect every rule's violations with a per-rule process fan-out.

    Each payload carries only the two columns the rule touches (as a
    projected two-column table), so the table crosses the process
    boundary per rule pair, not per worker times full width.  Row ids
    are column positions, which the projection preserves, so the merged
    report is identical to a serial ``detect_all`` — only ``elapsed``
    differs.  Unpicklable rules or a broken pool degrade to the serial
    in-process path; genuine detection errors propagate.
    """
    merged = ViolationReport(n_rows=table.n_rows, strategy=strategy)
    if len(rules) < 2 or n_workers <= 1:
        return ErrorDetector(table).detect_all(rules, strategy=strategy)
    payloads = []
    for pfd in rules:
        attributes = [pfd.lhs_attribute]
        if pfd.rhs_attribute not in attributes:
            attributes.append(pfd.rhs_attribute)
        columns = {name: table.column_ref(name) for name in attributes}
        payloads.append((columns, table.n_rows, pfd, strategy))
    try:
        pickle.dumps(payloads)
    except Exception:
        return ErrorDetector(table).detect_all(rules, strategy=strategy)
    partials = process_map(_detect_rule_payload, payloads, n_workers)
    for partial in partials:
        merged = merged.merged_with(partial)
    merged.strategy = strategy
    return merged


def _detect_rule_payload(payload) -> ViolationReport:
    """Worker entry point for the per-rule detection fan-out
    (module-level so it is picklable by ``ProcessPoolExecutor``)."""
    columns, n_rows, pfd, strategy = payload
    names = list(columns)
    projected = Table(names, [columns[name] for name in names])
    report = ErrorDetector(projected).detect(pfd, strategy=strategy)
    report.n_rows = n_rows
    return report
