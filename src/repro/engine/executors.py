"""Executor backends: *how* an :class:`ExecutionPlan` runs.

Every discovery/detection run in the system goes ``plan →
executor.run(plan)``.  The three concrete backends map one-to-one onto
:class:`~repro.engine.plan.ExecutionBackend`:

* :class:`SerialExecutor` — the monolithic engines
  (:class:`~repro.discovery.discoverer.PfdDiscoverer`,
  :class:`~repro.detection.detector.ErrorDetector`), fully in-process.
* :class:`ParallelExecutor` — the same monolithic semantics with the
  embarrassingly parallel stages fanned out over worker processes:
  candidate mining is grouped by LHS column (each column crosses the
  process boundary once), detection fans out per rule over projected
  two-column payloads.  Results are byte-identical to the serial path.
* :class:`ShardedExecutor` — the sharded engines over a
  :class:`~repro.sharding.sharded_table.ShardedTable` (whose shards may
  live in any :class:`~repro.sharding.store.ShardStore`), with the
  per-shard extraction fanned out when the plan carries workers.

Executors are stateless; :func:`build_executor` hands back the backend a
plan names.  The :class:`DataSource` wrapper owns the monolithic-table /
sharded-view duality (including the rebuild-on-edit caching the session
used to carry), so executors never branch on how the data arrived.
"""

from __future__ import annotations

import pickle
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dataset.profiling import TableProfile, profile_sharded, profile_table
from repro.dataset.table import Table
from repro.detection.detector import ErrorDetector
from repro.detection.violation import ViolationReport
from repro.discovery.discoverer import (
    DiscoveryResult,
    PfdDiscoverer,
    _mine_candidate_group,
)
from repro.engine.plan import ExecutionBackend, ExecutionPlan
from repro.engine.pool import make_shard_map, process_map
from repro.engine.worker_pool import WorkerPool
from repro.errors import DetectionError
from repro.pfd.pfd import PFD
from repro.sharding.detection import ShardedDetector
from repro.sharding.discovery import ShardedDiscoverer
from repro.sharding.overlay import ShardOverlay
from repro.sharding.sharded_table import ShardedTable
from repro.sharding.store import InMemoryShardStore


class DataSource:
    """One dataset behind the executors, monolithic or never-materialized.

    Two construction modes:

    * ``DataSource(table, sharded=None)`` — **eager**: the logical
      :class:`Table` exists (plus optionally the :class:`ShardedTable`
      it arrived as).  :meth:`sharded_view` rebuilds the shards when the
      monolithic table was edited since they were cut and otherwise
      reuses them, preserving the merged-artifact caches.
    * ``DataSource.from_sharded(sharded)`` — **never-materialized**: the
      dataset exists only as its :class:`ShardedTable`; no monolithic
      table is ever built on this path.  :attr:`view` is a mutable
      :class:`~repro.sharding.overlay.ShardOverlay` over the immutable
      store — the session's row-addressable table and edit-loop target —
      and :meth:`sharded_view` seals the overlay back into shards for
      the re-check path.  :attr:`table` still works (a forced
      serial/parallel run *is* an eager materialization, recorded as
      such on the plan) but nothing on the sharded path touches it.
    """

    def __init__(self, table: Table, sharded: Optional[ShardedTable] = None):
        self._lazy = False
        self._table = table
        self._overlay: Optional[ShardOverlay] = None
        self._sharded = sharded
        #: the upload's ShardedTable as it arrived (kept so close() can
        #: release its store even after a recut replaced the cached view)
        self._upload_sharded = sharded
        self._sharded_version = table.version if sharded is not None else None
        #: whether the dataset *arrived* sharded — a plan input; building
        #: a view later (e.g. a forced sharded run) must not flip it
        self._is_upload = sharded is not None
        self._sharded_rows = (
            max(sharded.shard_row_counts()) if sharded is not None else 0
        )

    @classmethod
    def from_sharded(cls, sharded: ShardedTable) -> "DataSource":
        """A never-materialized source: the dataset lives on its shard
        store, reads and edits go through a :class:`ShardOverlay`."""
        self = cls.__new__(cls)
        self._lazy = True
        self._table = None
        self._overlay = ShardOverlay(sharded)
        self._sharded = sharded
        self._upload_sharded = sharded
        self._sharded_version = None
        self._is_upload = True
        self._sharded_rows = max(sharded.shard_row_counts())
        #: (overlay version, shard_rows) → sealed sharded view
        self._view_cache: Optional[Tuple[Tuple[int, int], ShardedTable]] = None
        #: overlay version → materialized table (eager runs only)
        self._materialized: Optional[Tuple[int, Table]] = None
        return self

    @property
    def materialization(self) -> str:
        """``"never"`` for a lazily-materializing source, ``"eager"``
        otherwise (matches the plan decision vocabulary)."""
        return "never" if self._lazy else "eager"

    @property
    def view(self):
        """The row-addressable logical dataset: the monolithic
        :class:`Table` for eager sources, the mutable
        :class:`ShardOverlay` for never-materialized ones.  This — not
        :attr:`table` — is what sessions hold and edit."""
        return self._overlay if self._lazy else self._table

    @property
    def editable(self):
        """The mutation target for the edit loop (same object as
        :attr:`view`; both speak the ``Table`` mutation protocol)."""
        return self.view

    @property
    def table(self) -> Table:
        """The monolithic table.  For a never-materialized source this
        *builds* one from the overlay (cached per overlay version) — only
        explicitly eager runs (forced serial/parallel backends) should
        get here; the sharded path never does."""
        if not self._lazy:
            return self._table
        version = self._overlay.version
        if self._materialized is None or self._materialized[0] != version:
            self._materialized = (version, self._overlay.materialize())
        return self._materialized[1]

    @property
    def is_sharded_upload(self) -> bool:
        """Whether the dataset arrived as shards (upload kind, not
        whether a sharded view happens to be cached)."""
        return self._is_upload

    @property
    def upload_shard_rows(self) -> int:
        """The upload partition's largest shard (``0`` for monolithic
        uploads)."""
        return self._sharded_rows if self._is_upload else 0

    def sharded_view(self, shard_rows: int) -> ShardedTable:
        """The sharded view of the current logical dataset at the
        requested shard size.

        Eager sources keep the PR-5 semantics: the cached view is reused
        until the monolithic table is edited or the partition size
        changes, then recut with ``from_table``.  Never-materialized
        sources go through the overlay instead: untouched overlays
        return the base shards directly (merged caches intact), touched
        overlays seal copy-on-read patched shards, and only an explicit
        partition-size mismatch streams a repartition — still never a
        monolithic table.
        """
        if self._lazy:
            return self._lazy_sharded_view(shard_rows)
        if (
            self._sharded is not None
            and self._sharded_version == self.table.version
            and (shard_rows <= 0 or shard_rows == self._sharded_rows)
        ):
            return self._sharded
        if shard_rows <= 0 and self._sharded is not None:
            # sharded upload without an explicit knob: keep its shard size
            shard_rows = self._sharded_rows
        shard_rows = max(1, shard_rows)
        self._sharded = ShardedTable.from_table(self.table, shard_rows)
        self._sharded_version = self.table.version
        self._sharded_rows = shard_rows
        return self._sharded

    def _lazy_sharded_view(self, shard_rows: int) -> ShardedTable:
        overlay = self._overlay
        matches_upload = shard_rows <= 0 or shard_rows == self._sharded_rows
        if matches_upload and not overlay.is_touched:
            return self._sharded
        key = (overlay.version, shard_rows if not matches_upload else 0)
        if self._view_cache is not None and self._view_cache[0] == key:
            return self._view_cache[1]
        if matches_upload:
            view = overlay.as_sharded()
        else:
            view = _repartition_streaming(overlay, max(1, shard_rows))
        self._view_cache = (key, view)
        return view

    def profile(self) -> TableProfile:
        """Profile the logical dataset.  Never-materialized sources
        stream shard-major through the column builders (one resident
        shard at a time); eager sources profile the table directly.  The
        output is identical either way."""
        if self._lazy:
            return profile_sharded(self.sharded_view(0))
        return profile_table(self._table)

    def close(self) -> None:
        """Release the backing shard store (spill files, object roots).
        A no-op for purely in-memory sources."""
        if self._upload_sharded is not None:
            self._upload_sharded.store.close()
        if self._lazy:
            self._view_cache = None
            self._materialized = None


def _repartition_streaming(overlay: ShardOverlay, shard_rows: int) -> ShardedTable:
    """Recut an overlay into shards of ``shard_rows`` rows by streaming
    its logical rows — one output shard buffered at a time, never the
    whole table."""
    schema = overlay.schema
    store = InMemoryShardStore()
    columns: List[List[str]] = [[] for _ in range(len(schema))]
    pending = 0
    for row in overlay.iter_rows():
        for column, value in zip(columns, row):
            column.append(value)
        pending += 1
        if pending == shard_rows:
            store.append(Table(schema, columns))
            columns = [[] for _ in range(len(schema))]
            pending = 0
    if pending or store.n_shards == 0:
        store.append(Table(schema, columns))
    return ShardedTable(store)


class Executor(ABC):
    """A backend that can run discovery/detection plans.

    The optional ``pool`` is a persistent
    :class:`~repro.engine.worker_pool.WorkerPool` the caller owns
    (sessions keep one alive across runs); ``None`` keeps the
    self-contained per-call fan-out.
    """

    name: str

    @abstractmethod
    def run_discovery(
        self,
        plan: ExecutionPlan,
        source: DataSource,
        relation: Optional[str] = None,
        pool: Optional[WorkerPool] = None,
    ) -> DiscoveryResult:
        """Run a discovery plan over the source."""

    @abstractmethod
    def run_detection(
        self,
        plan: ExecutionPlan,
        source: DataSource,
        rules: Sequence[PFD],
        pool: Optional[WorkerPool] = None,
    ) -> ViolationReport:
        """Run a detection plan (the given rules) over the source."""


class SerialExecutor(Executor):
    """The monolithic engines, fully in-process."""

    name = ExecutionBackend.SERIAL

    def run_discovery(self, plan, source, relation=None, pool=None):
        return PfdDiscoverer(plan.config).discover_with_report(
            source.table, relation=relation
        )

    def run_detection(self, plan, source, rules, pool=None):
        return ErrorDetector(source.table).detect_all(rules, strategy=plan.strategy)


class ParallelExecutor(Executor):
    """Monolithic semantics with process fan-out of the parallel stages."""

    name = ExecutionBackend.PARALLEL

    def run_discovery(self, plan, source, relation=None, pool=None):
        discoverer = PfdDiscoverer(plan.config)
        return discoverer.discover_with_report(
            source.table,
            relation=relation,
            mine=lambda table, candidates: mine_candidates_parallel(
                discoverer,
                table,
                candidates,
                plan.n_workers,
                pool=pool,
                decisions=plan.decisions,
            ),
        )

    def run_detection(self, plan, source, rules, pool=None):
        return detect_all_parallel(
            source.table,
            list(rules),
            plan.strategy,
            plan.n_workers,
            pool=pool,
            decisions=plan.decisions,
        )


class ShardedExecutor(Executor):
    """The sharded engines over merged per-shard statistics."""

    name = ExecutionBackend.SHARDED

    def run_discovery(self, plan, source, relation=None, pool=None):
        sharded = source.sharded_view(plan.shard_rows)
        try:
            return ShardedDiscoverer(
                plan.config, shard_map=make_shard_map(plan.n_workers, pool=pool)
            ).discover_with_report(sharded, relation=relation)
        finally:
            if pool is not None:
                plan.decisions.extend(pool.take_decisions())

    def run_detection(self, plan, source, rules, pool=None):
        sharded = source.sharded_view(plan.shard_rows)
        try:
            return ShardedDetector(
                sharded,
                shard_map=make_shard_map(plan.n_workers, pool=pool),
                use_kernels=plan.use_kernels,
            ).detect_all(rules)
        finally:
            if pool is not None:
                plan.decisions.extend(pool.take_decisions())


_EXECUTORS: Dict[str, Executor] = {
    ExecutionBackend.SERIAL: SerialExecutor(),
    ExecutionBackend.PARALLEL: ParallelExecutor(),
    ExecutionBackend.SHARDED: ShardedExecutor(),
}


def build_executor(plan: ExecutionPlan) -> Executor:
    """The executor backend a plan names (executors are stateless, so
    one shared instance per backend)."""
    try:
        return _EXECUTORS[plan.backend]
    except KeyError:
        raise DetectionError(f"plan names unknown backend {plan.backend!r}") from None


# -- parallel discovery -----------------------------------------------------------


def mine_candidates_parallel(
    discoverer: PfdDiscoverer,
    table: Table,
    candidates: Sequence,
    n_workers: int,
    pool: Optional[WorkerPool] = None,
    decisions: Optional[List[str]] = None,
) -> List:
    """Fan candidate mining out over ``concurrent.futures`` workers.

    Work is sharded by (LHS column, token mode) so each LHS column
    crosses the process boundary once and each worker builds its
    single-pass tokenization once — the same sharing the serial path
    gets.  Groups are independent (embarrassingly parallel) and the
    reports are reassembled in candidate order, so output stays
    byte-identical to the serial path.

    Process workers are preferred — the caller's persistent ``pool``
    when given, an ephemeral one otherwise (``process_map`` owns the
    degrade semantics either way).  Thread workers are used when the
    config or decision function cannot be pickled, which a process pool
    cannot serve at all.  Genuine mining errors propagate either way.
    """
    config = discoverer.config
    decision = discoverer.constant_miner.decision
    if n_workers <= 1 or len(candidates) < 2:
        return discoverer._mine_serial(table, candidates)
    groups: Dict[Tuple[str, str], List[int]] = {}
    for position, candidate in enumerate(candidates):
        groups.setdefault((candidate.lhs, candidate.lhs_mode), []).append(position)
    # Workers only read the columns, so payloads carry references: the
    # process pool serializes them on submit, the thread pool shares
    # them in-process — neither needs an up-front copy.
    payloads = [
        (
            [candidates[i] for i in positions],
            table.column_ref(lhs),
            [table.column_ref(candidates[i].rhs) for i in positions],
            config,
            decision,
        )
        for (lhs, _mode), positions in groups.items()
    ]
    if len(payloads) < 2:
        # one LHS column group: a pool of one buys nothing, skip it
        return discoverer._mine_serial(table, candidates)
    try:
        pickle.dumps((config, decision))
        picklable = True
    except Exception:
        picklable = False
    if picklable:
        group_reports = process_map(
            _mine_candidate_group, payloads, n_workers, pool=pool, decisions=decisions
        )
    else:
        max_workers = min(n_workers, len(payloads))
        with ThreadPoolExecutor(max_workers=max_workers) as executor:
            group_reports = list(executor.map(_mine_candidate_group, payloads))
    reports: List = [None] * len(candidates)
    for positions, group in zip(groups.values(), group_reports):
        for position, report in zip(positions, group):
            reports[position] = report
    return reports


# -- parallel detection ------------------------------------------------------------


def detect_all_parallel(
    table: Table,
    rules: List[PFD],
    strategy: str,
    n_workers: int,
    pool: Optional[WorkerPool] = None,
    decisions: Optional[List[str]] = None,
) -> ViolationReport:
    """Detect every rule's violations with a per-rule process fan-out.

    Each payload carries only the two columns the rule touches (as a
    projected two-column table), so the table crosses the process
    boundary per rule pair, not per worker times full width.  Row ids
    are column positions, which the projection preserves, so the merged
    report is identical to a serial ``detect_all`` — only ``elapsed``
    differs.  Unpicklable rules or a broken pool degrade to the serial
    in-process path; genuine detection errors propagate.
    """
    merged = ViolationReport(n_rows=table.n_rows, strategy=strategy)
    if len(rules) < 2 or n_workers <= 1:
        return ErrorDetector(table).detect_all(rules, strategy=strategy)
    payloads = []
    for pfd in rules:
        attributes = [pfd.lhs_attribute]
        if pfd.rhs_attribute not in attributes:
            attributes.append(pfd.rhs_attribute)
        columns = {name: table.column_ref(name) for name in attributes}
        payloads.append((columns, table.n_rows, pfd, strategy))
    try:
        pickle.dumps(payloads)
    except Exception:
        return ErrorDetector(table).detect_all(rules, strategy=strategy)
    partials = process_map(
        _detect_rule_payload, payloads, n_workers, pool=pool, decisions=decisions
    )
    for partial in partials:
        merged = merged.merged_with(partial)
    merged.strategy = strategy
    return merged


def _detect_rule_payload(payload) -> ViolationReport:
    """Worker entry point for the per-rule detection fan-out
    (module-level so it is picklable by ``ProcessPoolExecutor``)."""
    columns, n_rows, pfd, strategy = payload
    names = list(columns)
    projected = Table(names, [columns[name] for name in names])
    report = ErrorDetector(projected).detect(pfd, strategy=strategy)
    report.n_rows = n_rows
    return report
