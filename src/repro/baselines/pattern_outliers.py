"""Auto-Detect-style per-column pattern outlier detection.

The paper cites Auto-Detect (Huang & He, SIGMOD 2018) as prior art that
uses single-column syntactic patterns to find errors.  This baseline
flags a cell when the generalized pattern of its value is rare within
its column — it catches formatting anomalies ("Chicag" still looks like a
word, but "lL" does not look like a state code) yet, having no notion of
cross-column dependency, it misses wrong-but-well-formed values such as a
valid state paired with the wrong area code.  That asymmetry is exactly
what the comparison experiment demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dataset.table import Table
from repro.detection.violation import Violation, ViolationKind, ViolationReport
from repro.patterns.generalize import generalize_string


@dataclass
class PatternOutlierConfig:
    """Parameters of the outlier detector."""

    #: a value is an outlier when its pattern's share of the column is
    #: strictly below this ratio
    max_pattern_ratio: float = 0.02
    #: generalization level used to bucket values (1 = exact class runs)
    level: int = 1
    #: columns with fewer than this many non-empty values are skipped
    min_column_size: int = 20


class PatternOutlierDetector:
    """Flags cells whose syntactic pattern is rare for their column."""

    def __init__(self, config: Optional[PatternOutlierConfig] = None):
        self.config = config or PatternOutlierConfig()

    def detect(self, table: Table, columns: Optional[Sequence[str]] = None) -> ViolationReport:
        report = ViolationReport(n_rows=table.n_rows, strategy="pattern-outlier")
        for name in columns if columns is not None else table.column_names():
            self._detect_column(table, name, report)
        return report

    def _detect_column(self, table: Table, name: str, report: ViolationReport) -> None:
        values = table.column_ref(name)
        non_empty_rows = [row for row, value in enumerate(values) if value != ""]
        if len(non_empty_rows) < self.config.min_column_size:
            return
        pattern_counts: Dict[str, int] = {}
        row_patterns: Dict[int, str] = {}
        for row in non_empty_rows:
            pattern = generalize_string(values[row], level=self.config.level).to_text()
            row_patterns[row] = pattern
            pattern_counts[pattern] = pattern_counts.get(pattern, 0) + 1
        total = len(non_empty_rows)
        dominant = max(pattern_counts, key=lambda p: (pattern_counts[p], p))
        for row in non_empty_rows:
            pattern = row_patterns[row]
            report.comparisons += 1
            if pattern_counts[pattern] / total >= self.config.max_pattern_ratio:
                continue
            report.add(
                Violation(
                    pfd_name=f"pattern-outlier[{name}]",
                    lhs_attribute=name,
                    rhs_attribute=name,
                    kind=ViolationKind.CONSTANT,
                    rule_index=0,
                    rule_text=f"{name} ~ {dominant}",
                    rows=(row,),
                    observed_value=values[row],
                    expected_value=None,
                )
            )
