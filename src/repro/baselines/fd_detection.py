"""Violation detection for the FD and CFD baselines.

Both detectors report suspect cells in the same shape as the PFD engine
(:class:`~repro.detection.violation.ViolationReport`) so the comparison
benchmark can evaluate all approaches with the same metric code.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.baselines.cfd_discovery import CFD
from repro.dataset.table import Table
from repro.detection.violation import Violation, ViolationKind, ViolationReport
from repro.pfd.fd import FunctionalDependency


def detect_fd_violations(table: Table, fds: Iterable[FunctionalDependency]) -> ViolationReport:
    """Cells violating classical FDs.

    For each FD, rows are grouped by their full LHS value; inside a group
    with disagreeing RHS values the minority rows' RHS cells are flagged
    (the same majority convention the PFD engine uses, so the comparison
    is apples-to-apples).
    """
    report = ViolationReport(n_rows=table.n_rows, strategy="fd")
    for fd in fds:
        lhs_columns = [table.column_ref(a) for a in fd.lhs]
        groups: Dict[tuple, List[int]] = {}
        for row in range(table.n_rows):
            key = tuple(column[row] for column in lhs_columns)
            if any(part == "" for part in key):
                continue
            groups.setdefault(key, []).append(row)
        for rhs_attribute in fd.rhs:
            rhs_values = table.column_ref(rhs_attribute)
            for key, rows in groups.items():
                if len(rows) < 2:
                    continue
                report.comparisons += len(rows)
                counts: Dict[str, List[int]] = {}
                for row in rows:
                    counts.setdefault(rhs_values[row], []).append(row)
                if len(counts) < 2:
                    continue
                majority = max(counts, key=lambda v: (len(counts[v]), v))
                witness = counts[majority][0]
                for value, value_rows in counts.items():
                    if value == majority:
                        continue
                    for row in value_rows:
                        report.add(
                            Violation(
                                pfd_name=f"FD {fd}",
                                lhs_attribute=",".join(fd.lhs),
                                rhs_attribute=rhs_attribute,
                                kind=ViolationKind.VARIABLE,
                                rule_index=0,
                                rule_text=str(fd),
                                rows=(witness, row),
                                observed_value=value,
                                expected_value=majority,
                            )
                        )
    return report


def detect_cfd_violations(table: Table, cfds: Iterable[CFD]) -> ViolationReport:
    """Cells violating constant CFD rules."""
    report = ViolationReport(n_rows=table.n_rows, strategy="cfd")
    for cfd in cfds:
        lhs_values = table.column_ref(cfd.lhs_attribute)
        rhs_values = table.column_ref(cfd.rhs_attribute)
        rules_by_lhs = {rule.lhs_value: rule for rule in cfd.rules}
        for row, (lhs_value, rhs_value) in enumerate(zip(lhs_values, rhs_values)):
            rule = rules_by_lhs.get(lhs_value)
            if rule is None:
                continue
            report.comparisons += 1
            if rhs_value == rule.rhs_value:
                continue
            report.add(
                Violation(
                    pfd_name=f"CFD {cfd.lhs_attribute}->{cfd.rhs_attribute}",
                    lhs_attribute=cfd.lhs_attribute,
                    rhs_attribute=cfd.rhs_attribute,
                    kind=ViolationKind.CONSTANT,
                    rule_index=0,
                    rule_text=f"[{cfd.lhs_attribute}={rule.lhs_value}] → [{cfd.rhs_attribute}={rule.rhs_value}]",
                    rows=(row,),
                    observed_value=rhs_value,
                    expected_value=rule.rhs_value,
                )
            )
    return report
