"""Baseline discovery and detection approaches.

The paper's central claim is that PFDs capture errors "that cannot be
captured by existing approaches" — classical functional dependencies
(FDs), conditional functional dependencies (CFDs), and per-column
syntactic outlier detection.  This package implements those existing
approaches so the comparison experiment (E10 in DESIGN.md) can be run:

* :mod:`repro.baselines.fd_discovery` — a TANE-style exact/approximate FD
  miner based on stripped partitions.
* :mod:`repro.baselines.cfd_discovery` — a CFDMiner-style constant CFD
  miner based on frequent LHS values.
* :mod:`repro.baselines.fd_detection` — violation detection for FDs and
  CFDs.
* :mod:`repro.baselines.pattern_outliers` — an Auto-Detect-style detector
  flagging values whose syntactic pattern is rare for their column.
"""

from repro.baselines.fd_discovery import FdDiscoveryConfig, TaneDiscoverer, discover_fds
from repro.baselines.cfd_discovery import CFD, CfdDiscoveryConfig, discover_constant_cfds
from repro.baselines.fd_detection import detect_cfd_violations, detect_fd_violations
from repro.baselines.pattern_outliers import PatternOutlierDetector

__all__ = [
    "FdDiscoveryConfig",
    "TaneDiscoverer",
    "discover_fds",
    "CFD",
    "CfdDiscoveryConfig",
    "discover_constant_cfds",
    "detect_fd_violations",
    "detect_cfd_violations",
    "PatternOutlierDetector",
]
