"""TANE-style functional dependency discovery.

This is the classical baseline the paper contrasts PFDs with: FDs relate
*entire* attribute values, so they cannot express "the first three digits
of the zip code determine the city".  The miner implements the core of
TANE — level-wise search over the attribute-set lattice with stripped
partitions and partition products — restricted to small LHS sizes, plus a
g3-based approximate mode so dependencies that almost hold on dirty data
can still be found.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.dataset.table import Table
from repro.pfd.fd import FunctionalDependency

#: A stripped partition: equivalence classes of size >= 2, as row-index tuples.
StrippedPartition = Tuple[Tuple[int, ...], ...]


def stripped_partition(table: Table, attributes: Sequence[str]) -> StrippedPartition:
    """The stripped partition of a set of attributes.

    Rows are grouped by their combined value on ``attributes``; singleton
    groups are dropped ("stripped") because they can never witness a
    violation.
    """
    groups: Dict[Tuple[str, ...], List[int]] = {}
    columns = [table.column_ref(a) for a in attributes]
    for row in range(table.n_rows):
        key = tuple(column[row] for column in columns)
        groups.setdefault(key, []).append(row)
    return tuple(
        tuple(rows) for rows in groups.values() if len(rows) >= 2
    )


def partition_error(partition: StrippedPartition, n_rows: int) -> float:
    """g3-style error of the partition: rows outside the largest
    representative of each class, normalized by table size.  (Used only
    for diagnostics; FD validity uses :func:`refines`.)"""
    if n_rows == 0:
        return 0.0
    stripped_size = sum(len(cls) for cls in partition)
    return (stripped_size - len(partition)) / max(1, n_rows)


def refines(lhs_partition: StrippedPartition, rhs_column: Sequence[str]) -> bool:
    """Whether every LHS equivalence class agrees on the RHS value."""
    for cls in lhs_partition:
        first = rhs_column[cls[0]]
        for row in cls[1:]:
            if rhs_column[row] != first:
                return False
    return True


def g3_error_of_partition(lhs_partition: StrippedPartition, rhs_column: Sequence[str], n_rows: int) -> float:
    """Minimum fraction of rows to remove so the FD holds."""
    if n_rows == 0:
        return 0.0
    violating = 0
    for cls in lhs_partition:
        counts: Dict[str, int] = {}
        for row in cls:
            value = rhs_column[row]
            counts[value] = counts.get(value, 0) + 1
        violating += len(cls) - max(counts.values())
    return violating / n_rows


@dataclass
class FdDiscoveryConfig:
    """Parameters of the FD miner."""

    max_lhs_size: int = 2
    #: maximum g3 error for an (approximate) FD to be reported; 0 = exact
    max_error: float = 0.0
    #: skip columns that are keys (every value distinct) as RHS
    skip_unique_rhs: bool = True

    def __post_init__(self) -> None:
        if self.max_lhs_size < 1:
            raise ValueError("max_lhs_size must be >= 1")
        if not 0.0 <= self.max_error < 1.0:
            raise ValueError("max_error must be in [0, 1)")


@dataclass
class DiscoveredFd:
    """An FD with its measured g3 error."""

    fd: FunctionalDependency
    error: float

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.fd} (g3={self.error:.4f})"


class TaneDiscoverer:
    """Level-wise FD discovery over the attribute lattice."""

    def __init__(self, config: Optional[FdDiscoveryConfig] = None):
        self.config = config or FdDiscoveryConfig()

    def discover(self, table: Table) -> List[DiscoveredFd]:
        """All minimal (approximate) FDs with LHS size up to the limit."""
        config = self.config
        attributes = table.column_names()
        results: List[DiscoveredFd] = []
        #: RHS attributes already determined by some subset of a given LHS —
        #: used to keep only minimal dependencies.
        determined_by: Dict[FrozenSet[str], set] = {}

        unique_columns = {
            name
            for name in attributes
            if len(set(table.column_ref(name))) == table.n_rows and table.n_rows > 1
        }

        partition_cache: Dict[FrozenSet[str], StrippedPartition] = {}

        def partition_of(attrs: FrozenSet[str]) -> StrippedPartition:
            if attrs not in partition_cache:
                partition_cache[attrs] = stripped_partition(table, sorted(attrs))
            return partition_cache[attrs]

        for size in range(1, config.max_lhs_size + 1):
            for lhs in combinations(attributes, size):
                lhs_set = frozenset(lhs)
                inherited = set()
                for attr in lhs:
                    smaller = lhs_set - {attr}
                    if smaller:
                        inherited |= determined_by.get(smaller, set())
                determined_by.setdefault(lhs_set, set()).update(inherited)
                lhs_partition = partition_of(lhs_set)
                for rhs in attributes:
                    if rhs in lhs_set or rhs in determined_by[lhs_set]:
                        continue
                    if config.skip_unique_rhs and rhs in unique_columns:
                        continue
                    rhs_column = table.column_ref(rhs)
                    if config.max_error == 0.0:
                        holds = refines(lhs_partition, rhs_column)
                        error = 0.0 if holds else 1.0
                    else:
                        error = g3_error_of_partition(
                            lhs_partition, rhs_column, table.n_rows
                        )
                        holds = error <= config.max_error
                    if holds:
                        determined_by[lhs_set].add(rhs)
                        results.append(
                            DiscoveredFd(
                                FunctionalDependency.of(lhs, rhs),
                                error=error if config.max_error > 0 else 0.0,
                            )
                        )
        return results


def discover_fds(table: Table, config: Optional[FdDiscoveryConfig] = None) -> List[DiscoveredFd]:
    """Convenience wrapper around :class:`TaneDiscoverer`."""
    return TaneDiscoverer(config).discover(table)
