"""Constant conditional functional dependency (CFD) discovery.

CFDs (Fan et al., TODS 2008) extend FDs with a tableau of *constant*
conditions — e.g. ``([zip = 90001] → [city = Los Angeles])``.  They are
the closest prior art to constant PFDs, but their tableau cells are whole
attribute values, not patterns, so a CFD needs one rule per zip code
where a PFD needs one rule per zip-code *prefix*.  The miner below
follows the CFDMiner idea restricted to single-attribute LHSs: a constant
rule is emitted for every frequent LHS value whose rows (mostly) agree on
the RHS value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataset.table import Table


@dataclass(frozen=True)
class CfdRule:
    """One constant rule ``lhs_value → rhs_value``."""

    lhs_value: str
    rhs_value: str
    support: int
    confidence: float


@dataclass
class CFD:
    """A constant CFD over one attribute pair with its rule tableau."""

    lhs_attribute: str
    rhs_attribute: str
    rules: List[CfdRule] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rules)

    def describe(self) -> str:
        body = "; ".join(
            f"[{self.lhs_attribute}={rule.lhs_value}] → [{self.rhs_attribute}={rule.rhs_value}]"
            for rule in self.rules[:3]
        )
        suffix = f" … ({len(self.rules)} rules)" if len(self.rules) > 3 else ""
        return body + suffix


@dataclass
class CfdDiscoveryConfig:
    """Parameters of the constant-CFD miner."""

    min_support: int = 2
    min_confidence: float = 0.95
    #: LHS columns with more distinct values than this are skipped (a CFD
    #: tableau with one rule per distinct key value is not a useful rule).
    max_lhs_distinct_ratio: float = 0.9

    def __post_init__(self) -> None:
        if self.min_support < 1:
            raise ValueError("min_support must be >= 1")
        if not 0.0 < self.min_confidence <= 1.0:
            raise ValueError("min_confidence must be in (0, 1]")


def discover_constant_cfds(
    table: Table, config: Optional[CfdDiscoveryConfig] = None
) -> List[CFD]:
    """Mine constant CFDs for every ordered attribute pair."""
    config = config or CfdDiscoveryConfig()
    cfds: List[CFD] = []
    names = table.column_names()
    for lhs in names:
        lhs_values = table.column_ref(lhs)
        non_empty = [v for v in lhs_values if v != ""]
        if not non_empty:
            continue
        if len(set(non_empty)) / len(non_empty) > config.max_lhs_distinct_ratio:
            continue
        for rhs in names:
            if rhs == lhs:
                continue
            cfd = _mine_pair(table, lhs, rhs, config)
            if cfd.rules:
                cfds.append(cfd)
    return cfds


def _mine_pair(table: Table, lhs: str, rhs: str, config: CfdDiscoveryConfig) -> CFD:
    lhs_values = table.column_ref(lhs)
    rhs_values = table.column_ref(rhs)
    by_lhs: Dict[str, Dict[str, int]] = {}
    for lhs_value, rhs_value in zip(lhs_values, rhs_values):
        if lhs_value == "" or rhs_value == "":
            continue
        by_lhs.setdefault(lhs_value, {})
        by_lhs[lhs_value][rhs_value] = by_lhs[lhs_value].get(rhs_value, 0) + 1
    cfd = CFD(lhs_attribute=lhs, rhs_attribute=rhs)
    for lhs_value, counts in sorted(by_lhs.items()):
        support = sum(counts.values())
        if support < config.min_support:
            continue
        top_value = max(counts, key=lambda v: (counts[v], v))
        confidence = counts[top_value] / support
        if confidence < config.min_confidence:
            continue
        cfd.rules.append(
            CfdRule(
                lhs_value=lhs_value,
                rhs_value=top_value,
                support=support,
                confidence=confidence,
            )
        )
    return cfd
