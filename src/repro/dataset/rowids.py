"""Compact row-id sequences.

Pair groups, ``≡_Q`` blocks, and pattern-tuple candidates all carry
collections of global row ids.  Stored as plain Python lists on a large
dataset those collections dominate the resident footprint (a boxed int
plus a pointer slot costs ~36 bytes per row); the out-of-core session
path therefore keeps them as ``array('i')`` — 4 bytes per row, iteration
still yields plain Python ints, and ``len``/``min``/``set``/numpy fancy
indexing all keep working.

Both the scalar and the vectorized builders produce the same type, so
the "kernel output equals scalar output" dict-equality contract is
unchanged.
"""

from __future__ import annotations

from array import array
from typing import Iterable, MutableSequence

#: 32-bit signed — row ids are global row indexes, far below 2**31.
ROW_ID_TYPECODE = "i"

#: The concrete sequence type (``array('i')``); iteration yields ints.
RowIds = MutableSequence[int]


def row_ids(values: Iterable[int] = ()) -> "array[int]":
    """A compact row-id sequence from any iterable of ints."""
    return array(ROW_ID_TYPECODE, values)


def row_ids_from_numpy(arr) -> "array[int]":
    """A compact row-id sequence from a numpy integer array (one copy)."""
    out = array(ROW_ID_TYPECODE)
    out.frombytes(arr.astype("i4", copy=False).tobytes())
    return out
