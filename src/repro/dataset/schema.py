"""Schema model: attributes, data types, and the relation schema.

A :class:`Schema` is an ordered collection of named :class:`Attribute`
objects.  Attribute order matters because the discovery algorithm reports
dependencies by attribute name and the CSV reader maps columns by
position.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.errors import SchemaError


class DataType(enum.Enum):
    """Coarse-grained data types used by profiling and candidate pruning.

    The discovery algorithm (Figure 2, line 1) prunes attributes for which
    PFDs cannot be found — e.g. pure numeric measures.  The profiler
    assigns one of these types to every column to support that pruning.
    """

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    EMPTY = "empty"

    @property
    def is_numeric(self) -> bool:
        """Whether the type is a numeric measure (candidates are pruned)."""
        return self in (DataType.INTEGER, DataType.FLOAT)


@dataclass(frozen=True)
class Attribute:
    """A named column of a relation.

    Parameters
    ----------
    name:
        Column name; must be non-empty and unique within a schema.
    dtype:
        Coarse type assigned by :mod:`repro.dataset.inference` (defaults
        to :attr:`DataType.STRING` because PFDs operate on string values).
    nullable:
        Whether empty strings are expected in this column.
    """

    name: str
    dtype: DataType = DataType.STRING
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be a non-empty string")
        if not isinstance(self.dtype, DataType):
            raise SchemaError(f"dtype must be a DataType, got {self.dtype!r}")

    def with_dtype(self, dtype: DataType) -> "Attribute":
        """Return a copy of this attribute with a different data type."""
        return Attribute(self.name, dtype, self.nullable)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}:{self.dtype.value}"


AttributeLike = Union[str, Attribute]


@dataclass
class Schema:
    """An ordered, name-unique collection of attributes."""

    attributes: List[Attribute] = field(default_factory=list)

    def __post_init__(self) -> None:
        normalized: List[Attribute] = []
        for attr in self.attributes:
            normalized.append(self._coerce(attr))
        names = [a.name for a in normalized]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"duplicate attribute names: {sorted(duplicates)}")
        self.attributes = normalized

    @staticmethod
    def _coerce(attr: AttributeLike) -> Attribute:
        if isinstance(attr, Attribute):
            return attr
        if isinstance(attr, str):
            return Attribute(attr)
        raise SchemaError(f"cannot interpret {attr!r} as an attribute")

    @classmethod
    def of(cls, names: Iterable[AttributeLike]) -> "Schema":
        """Build a schema from attribute names or :class:`Attribute` objects."""
        return cls(list(names))

    # -- collection protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: object) -> bool:
        if isinstance(name, Attribute):
            name = name.name
        return any(a.name == name for a in self.attributes)

    def __getitem__(self, key: Union[int, str]) -> Attribute:
        if isinstance(key, int):
            return self.attributes[key]
        for attr in self.attributes:
            if attr.name == key:
                return attr
        raise SchemaError(f"unknown attribute {key!r}; have {self.names()}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.attributes == other.attributes

    # -- lookups -------------------------------------------------------------

    def names(self) -> List[str]:
        """Return the attribute names in declaration order."""
        return [a.name for a in self.attributes]

    def index_of(self, name: AttributeLike) -> int:
        """Return the positional index of an attribute.

        Raises :class:`~repro.errors.SchemaError` if the attribute does not
        exist.
        """
        if isinstance(name, Attribute):
            name = name.name
        for i, attr in enumerate(self.attributes):
            if attr.name == name:
                return i
        raise SchemaError(f"unknown attribute {name!r}; have {self.names()}")

    def dtype_of(self, name: AttributeLike) -> DataType:
        """Return the data type recorded for ``name``."""
        return self[name if isinstance(name, str) else name.name].dtype

    def select(self, names: Sequence[AttributeLike]) -> "Schema":
        """Return a new schema containing only ``names``, in the given order."""
        return Schema([self[self._coerce(n).name] for n in names])

    def with_attribute(self, attr: AttributeLike) -> "Schema":
        """Return a new schema with ``attr`` appended."""
        return Schema(self.attributes + [self._coerce(attr)])

    def with_dtypes(self, dtypes: Sequence[DataType]) -> "Schema":
        """Return a copy of the schema with attribute types replaced."""
        if len(dtypes) != len(self.attributes):
            raise SchemaError(
                f"expected {len(self.attributes)} dtypes, got {len(dtypes)}"
            )
        return Schema(
            [a.with_dtype(dt) for a, dt in zip(self.attributes, dtypes)]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(str(a) for a in self.attributes)
        return f"Schema({inner})"
