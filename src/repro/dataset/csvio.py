"""CSV input/output for :class:`~repro.dataset.table.Table`.

The ANMAT demo lets users upload CSV datasets; this module is the
equivalent ingestion path.  It wraps the standard-library ``csv`` module
and adds rectangularity checks, optional type inference, and symmetric
writing so round-trips are lossless.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.dataset.inference import infer_schema
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import CsvFormatError


def read_csv_text(
    text: str,
    delimiter: str = ",",
    header: bool = True,
    column_names: Optional[Sequence[str]] = None,
    infer_types: bool = True,
) -> Table:
    """Parse CSV text into a table.

    Parameters
    ----------
    text:
        The CSV document.
    delimiter:
        Field separator.
    header:
        Whether the first row holds column names.  When false,
        ``column_names`` must be provided.
    column_names:
        Explicit column names (overrides the header row when both are
        given).
    infer_types:
        Whether to run type inference and attach dtypes to the schema.
    """
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = [row for row in reader]
    if not rows:
        raise CsvFormatError("CSV document contains no rows")
    if header:
        header_row, data_rows = rows[0], rows[1:]
    else:
        header_row, data_rows = None, rows
    if column_names is not None:
        names = list(column_names)
    elif header_row is not None:
        names = [name.strip() for name in header_row]
    else:
        raise CsvFormatError("header=False requires explicit column_names")
    if len(set(names)) != len(names):
        raise CsvFormatError(f"duplicate column names in CSV header: {names}")
    width = len(names)
    for line_number, row in enumerate(data_rows, start=2 if header else 1):
        if len(row) != width:
            raise CsvFormatError(
                f"line {line_number} has {len(row)} fields, expected {width}"
            )
    table = Table.from_rows(names, data_rows)
    if infer_types:
        table = table.with_schema(infer_schema(table))
    return table


def read_csv(
    path: Union[str, Path],
    delimiter: str = ",",
    header: bool = True,
    column_names: Optional[Sequence[str]] = None,
    infer_types: bool = True,
    encoding: str = "utf-8",
) -> Table:
    """Read a CSV file from disk into a table."""
    text = Path(path).read_text(encoding=encoding)
    return read_csv_text(
        text,
        delimiter=delimiter,
        header=header,
        column_names=column_names,
        infer_types=infer_types,
    )


def write_csv(
    table: Table,
    path: Union[str, Path],
    delimiter: str = ",",
    header: bool = True,
    encoding: str = "utf-8",
) -> Path:
    """Write a table to a CSV file and return the path written."""
    path = Path(path)
    with path.open("w", newline="", encoding=encoding) as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        if header:
            writer.writerow(table.column_names())
        for row in table.iter_rows():
            writer.writerow(row)
    return path


def to_csv_text(table: Table, delimiter: str = ",", header: bool = True) -> str:
    """Render a table as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter)
    if header:
        writer.writerow(table.column_names())
    for row in table.iter_rows():
        writer.writerow(row)
    return buffer.getvalue()
