"""CSV input/output for :class:`~repro.dataset.table.Table`.

The ANMAT demo lets users upload CSV datasets; this module is the
equivalent ingestion path.  It wraps the standard-library ``csv`` module
and adds rectangularity checks, optional type inference, and symmetric
writing so round-trips are lossless.

Two reading modes are provided: :func:`read_csv` materializes the whole
document at once, while :func:`iter_csv_chunks` streams the file in
bounded-memory chunks — at no point is more than one chunk's rows (plus
the ``csv`` module's single-record buffer) held — which is how the
sharding subsystem ingests datasets larger than memory.  Both modes
reject rows whose width differs from the header, reporting the
offending physical line number.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, TextIO, Union

from repro.dataset.inference import infer_schema
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import CsvFormatError


def read_csv_text(
    text: str,
    delimiter: str = ",",
    header: bool = True,
    column_names: Optional[Sequence[str]] = None,
    infer_types: bool = True,
) -> Table:
    """Parse CSV text into a table.

    Parameters
    ----------
    text:
        The CSV document.
    delimiter:
        Field separator.
    header:
        Whether the first row holds column names.  When false,
        ``column_names`` must be provided.
    column_names:
        Explicit column names (overrides the header row when both are
        given).
    infer_types:
        Whether to run type inference and attach dtypes to the schema.
    """
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    names = _resolve_column_names(reader, header, column_names)
    width = len(names)
    data_rows = []
    for row in reader:
        if len(row) != width:
            raise CsvFormatError(
                f"line {reader.line_num} has {len(row)} fields, expected {width}"
            )
        data_rows.append(row)
    if not header and not data_rows:
        raise CsvFormatError("CSV document contains no rows")
    table = Table.from_rows(names, data_rows)
    if infer_types:
        table = table.with_schema(infer_schema(table))
    return table


def read_csv(
    path: Union[str, Path],
    delimiter: str = ",",
    header: bool = True,
    column_names: Optional[Sequence[str]] = None,
    infer_types: bool = True,
    encoding: str = "utf-8",
) -> Table:
    """Read a CSV file from disk into a table."""
    text = Path(path).read_text(encoding=encoding)
    return read_csv_text(
        text,
        delimiter=delimiter,
        header=header,
        column_names=column_names,
        infer_types=infer_types,
    )


def _resolve_column_names(
    reader,
    header: bool,
    column_names: Optional[Sequence[str]],
) -> List[str]:
    """Consume the header row (when present) and return the column names.

    The one place name precedence (explicit ``column_names`` beats the
    header row) and the duplicate-name check live — shared by the
    monolithic and chunked readers so they cannot drift."""
    header_row: Optional[List[str]] = None
    if header:
        header_row = next(reader, None)
        if header_row is None:
            raise CsvFormatError("CSV document contains no rows")
    if column_names is not None:
        names = list(column_names)
    elif header_row is not None:
        names = [name.strip() for name in header_row]
    else:
        raise CsvFormatError("header=False requires explicit column_names")
    if len(set(names)) != len(names):
        raise CsvFormatError(f"duplicate column names in CSV header: {names}")
    return names


def iter_csv_chunks(
    source: Union[str, Path, TextIO],
    chunk_rows: int,
    delimiter: str = ",",
    header: bool = True,
    column_names: Optional[Sequence[str]] = None,
    encoding: str = "utf-8",
) -> Iterator[Table]:
    """Stream a CSV document as a sequence of ``chunk_rows``-row tables.

    The file is read incrementally: at most one chunk's rows are held in
    memory at a time, so arbitrarily large documents can be ingested
    with bounded memory.  Every yielded chunk shares the same schema;
    the last chunk may be shorter, and an empty document (header only,
    or nothing at all with explicit ``column_names``) yields one
    zero-row chunk so consumers always see the schema.

    Rows whose width differs from the header are rejected with a
    :class:`~repro.errors.CsvFormatError` naming the offending physical
    line (the ``csv`` module's line counter, so multi-line quoted
    records are attributed correctly) — a short row is an error, never
    silently padded or truncated.

    ``source`` may be a path or an open text stream (which is *not*
    closed).
    """
    if chunk_rows < 1:
        raise CsvFormatError(f"chunk_rows must be >= 1, got {chunk_rows}")
    if isinstance(source, (str, Path)):
        with Path(source).open("r", newline="", encoding=encoding) as handle:
            yield from _iter_chunks_from(handle, chunk_rows, delimiter, header, column_names)
    else:
        yield from _iter_chunks_from(source, chunk_rows, delimiter, header, column_names)


def _iter_chunks_from(
    handle: TextIO,
    chunk_rows: int,
    delimiter: str,
    header: bool,
    column_names: Optional[Sequence[str]],
) -> Iterator[Table]:
    reader = csv.reader(handle, delimiter=delimiter)
    names = _resolve_column_names(reader, header, column_names)
    width = len(names)
    yielded = False
    buffer: List[List[str]] = []
    for row in reader:
        if len(row) != width:
            raise CsvFormatError(
                f"line {reader.line_num} has {len(row)} fields, expected {width}"
            )
        buffer.append(row)
        if len(buffer) >= chunk_rows:
            yield Table.from_rows(names, buffer)
            yielded = True
            buffer = []
    if buffer or not yielded:
        yield Table.from_rows(names, buffer)


def read_csv_sharded(
    source: Union[str, Path, TextIO],
    shard_rows: int,
    delimiter: str = ",",
    header: bool = True,
    column_names: Optional[Sequence[str]] = None,
    encoding: str = "utf-8",
    store=None,
):
    """Stream a CSV document straight into a
    :class:`~repro.sharding.sharded_table.ShardedTable` — each chunk is
    parsed and sealed into its own shard, so peak memory during parsing
    is one shard, not the whole document.  ``store`` picks the
    :class:`~repro.sharding.store.ShardStore` the shards land in (e.g. a
    spill-to-disk store for datasets larger than memory)."""
    from repro.sharding.sharded_table import ShardedTable

    return ShardedTable.from_chunks(
        iter_csv_chunks(
            source,
            shard_rows,
            delimiter=delimiter,
            header=header,
            column_names=column_names,
            encoding=encoding,
        ),
        store=store,
    )


def write_csv(
    table: Table,
    path: Union[str, Path],
    delimiter: str = ",",
    header: bool = True,
    encoding: str = "utf-8",
) -> Path:
    """Write a table to a CSV file and return the path written."""
    path = Path(path)
    with path.open("w", newline="", encoding=encoding) as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        if header:
            writer.writerow(table.column_names())
        for row in table.iter_rows():
            writer.writerow(row)
    return path


def to_csv_text(table: Table, delimiter: str = ",", header: bool = True) -> str:
    """Render a table as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter)
    if header:
        writer.writerow(table.column_names())
    for row in table.iter_rows():
        writer.writerow(row)
    return buffer.getvalue()
