"""Column type inference.

The discovery algorithm prunes attributes that cannot host PFDs — in the
paper, "we drop all columns with pure numerical values".  To make that
decision the schema needs coarse data types, which this module infers from
the string values in each column.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.dataset.schema import DataType, Schema
from repro.dataset.table import Table

_BOOLEAN_TOKENS = {"true", "false", "yes", "no", "t", "f", "y", "n"}


def _is_integer(value: str) -> bool:
    text = value.strip()
    if not text:
        return False
    if text[0] in "+-":
        text = text[1:]
    return text.isdigit() and bool(text)


def _is_float(value: str) -> bool:
    text = value.strip()
    if not text:
        return False
    try:
        float(text)
    except ValueError:
        return False
    return True


def infer_column_type(values: Sequence[str], threshold: float = 1.0) -> DataType:
    """Infer the coarse type of a column from its non-empty values.

    ``threshold`` is the fraction of non-empty values that must conform to
    a type for the column to be assigned that type; the default of 1.0
    means a single non-conforming value demotes the column to STRING,
    which is the conservative choice for dependency discovery (a zip code
    column with one alphanumeric value should still be treated as text).
    """
    counts: Dict[str, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return infer_column_type_from_counts(counts, threshold=threshold)


def infer_column_type_from_counts(
    value_counts: Mapping[str, int], threshold: float = 1.0
) -> DataType:
    """Counts-based twin of :func:`infer_column_type`.

    Takes value → multiplicity over the distinct values of a column (the
    shape streaming profilers accumulate shard by shard); blank values
    may be present or absent — they are filtered either way.  The result
    is identical to inferring over the expanded value stream, because
    the per-value predicates are deterministic and the conformance ratio
    only weights them by multiplicity.
    """
    weighted = [(v, c) for v, c in value_counts.items() if v.strip() != ""]
    if not weighted:
        return DataType.EMPTY
    total = sum(c for _v, c in weighted)

    def conforms(predicate) -> bool:
        hits = sum(c for v, c in weighted if predicate(v))
        return hits / total >= threshold

    if conforms(lambda v: v.strip().lower() in _BOOLEAN_TOKENS):
        return DataType.BOOLEAN
    if conforms(_is_integer):
        return DataType.INTEGER
    if conforms(_is_float):
        return DataType.FLOAT
    return DataType.STRING


def infer_schema(table: Table, threshold: float = 1.0) -> Schema:
    """Return a copy of the table's schema with inferred dtypes attached."""
    dtypes = [
        infer_column_type(table.column_ref(name), threshold=threshold)
        for name in table.column_names()
    ]
    return table.schema.with_dtypes(dtypes)
