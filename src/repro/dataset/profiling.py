"""Column and table profiling (the backend of Figure 3).

Profiling serves two purposes in ANMAT: it shows the user the dominant
syntactic patterns in every column, and it feeds the candidate-dependency
pruning step of the discovery algorithm ("we drop all columns with pure
numerical values", low-cardinality checks, …).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.dataset.inference import infer_column_type_from_counts
from repro.dataset.schema import DataType
from repro.dataset.table import Table
from repro.patterns.generalize import PatternHistogram, generalize_string
from repro.patterns.tokenizer import cached_tokenize


@dataclass
class PatternStat:
    """One profiled pattern of a column, as shown in the Figure 3 list.

    The GUI renders these as ``pattern::position, frequency``; position
    is always 0 for whole-value patterns and is the token index for
    token-level patterns.
    """

    pattern_text: str
    position: int
    frequency: int
    ratio: float
    examples: List[str] = field(default_factory=list)

    def render(self) -> str:
        """The exact display format used by the demo GUI."""
        return f"{self.pattern_text}::{self.position}, {self.frequency}"


@dataclass
class ColumnProfile:
    """Summary statistics and pattern statistics for one column."""

    name: str
    dtype: DataType
    n_values: int
    n_distinct: int
    n_empty: int
    min_length: int
    max_length: int
    avg_length: float
    avg_tokens: float
    value_patterns: List[PatternStat]
    token_patterns: List[PatternStat]
    #: share of non-empty values covered by the most common level-2
    #: (class-run) generalization — high for structured codes, low for
    #: free text
    dominant_signature_ratio: float = 0.0

    @property
    def distinct_ratio(self) -> float:
        """Distinct non-empty values as a fraction of non-empty values."""
        non_empty = self.n_values - self.n_empty
        if non_empty == 0:
            return 0.0
        distinct_non_empty = self.n_distinct - (1 if self.n_empty > 0 else 0)
        return distinct_non_empty / non_empty

    @property
    def is_numeric(self) -> bool:
        """Whether the column holds pure numeric measures."""
        return self.dtype.is_numeric

    @property
    def is_single_token(self) -> bool:
        """Whether values are (almost always) a single token — the case
        where the paper switches from token mode to n-gram mode."""
        return self.avg_tokens <= 1.05

    def dominant_value_patterns(self, min_ratio: float = 0.05) -> List[PatternStat]:
        """Whole-value patterns covering at least ``min_ratio`` of rows."""
        return [p for p in self.value_patterns if p.ratio >= min_ratio]


@dataclass
class TableProfile:
    """Profiles for every column of a table."""

    n_rows: int
    columns: Dict[str, ColumnProfile]

    def __getitem__(self, name: str) -> ColumnProfile:
        return self.columns[name]

    def __iter__(self):
        return iter(self.columns.values())

    def column_names(self) -> List[str]:
        return list(self.columns.keys())

    def pfd_candidate_columns(
        self,
        max_distinct_ratio: float = 0.98,
        exclude_numeric: bool = True,
    ) -> List[str]:
        """Columns on which PFDs may be discovered (Figure 2, line 1).

        Numeric measure columns and columns where essentially every value
        is distinct *and* unstructured carry no usable dependency signal
        and are pruned.  Structured identifier columns (zip codes, phone
        numbers) survive because their pattern histogram is concentrated
        even though their values are distinct.
        """
        candidates = []
        for profile in self.columns.values():
            if exclude_numeric and profile.is_numeric and not _looks_like_code(profile):
                continue
            if profile.n_values == profile.n_empty:
                continue
            if profile.distinct_ratio >= max_distinct_ratio and not _looks_like_code(profile):
                continue
            candidates.append(profile.name)
        return candidates


def _looks_like_code(profile: ColumnProfile) -> bool:
    """Heuristic: the column is a structured code/identifier.

    Such columns are kept as candidate LHS attributes even when they are
    numeric (zip codes, phone numbers) or key-like (employee ids, ChEMBL
    ids).  Pure numeric *measures* are told apart from numeric codes by
    width: codes have a fixed width (every zip is five digits), measures
    do not.  Non-numeric columns count as codes when a single class-run
    shape dominates the column.
    """
    if not profile.value_patterns:
        return False
    if profile.is_numeric:
        top = profile.value_patterns[0]
        fixed_width = profile.min_length == profile.max_length
        return top.ratio >= 0.6 and fixed_width and profile.max_length <= 40
    return profile.dominant_signature_ratio >= 0.7 and profile.max_length <= 40


class ColumnProfileBuilder:
    """Streaming accumulator behind :func:`profile_column`.

    Feed value batches through :meth:`add` — e.g. one shard's column at
    a time — then call :meth:`finish`.  Everything the profile reports
    is a function of the first-seen-ordered distinct-value counts plus
    the empty-value count, so the result is identical to profiling the
    concatenated values in one pass, while peak memory is the distinct
    value set instead of the whole column.
    """

    def __init__(self, name: str):
        self.name = name
        self.n_values = 0
        self.n_empty = 0
        #: distinct non-empty values → multiplicity, first-seen order
        self.value_counts: Dict[str, int] = {}

    def add(self, values: Iterable[str]) -> "ColumnProfileBuilder":
        counts = self.value_counts
        n = 0
        for value in values:
            n += 1
            if value == "":
                self.n_empty += 1
            else:
                counts[value] = counts.get(value, 0) + 1
        self.n_values += n
        return self

    def finish(self, max_patterns: int = 25) -> ColumnProfile:
        value_counts = self.value_counts
        n_non_empty = self.n_values - self.n_empty
        if n_non_empty:
            min_length = min(len(v) for v in value_counts)
            max_length = max(len(v) for v in value_counts)
            avg_length = (
                sum(len(v) * count for v, count in value_counts.items()) / n_non_empty
            )
        else:
            min_length = max_length = 0
            avg_length = 0.0

        # All per-value work (tokenization, generalization) runs once per
        # *distinct* value — duplicates contribute only their count,
        # keeping profiling linear in distinct values rather than rows.
        tokens_by_value = {value: cached_tokenize(value) for value in value_counts}
        avg_tokens = (
            sum(len(tokens_by_value[v]) * count for v, count in value_counts.items())
            / n_non_empty
            if n_non_empty
            else 0.0
        )

        histogram = PatternHistogram.from_counts(value_counts, level=1)
        signature_histogram = PatternHistogram.from_counts(value_counts, level=2)
        signature_entries = signature_histogram.entries()
        dominant_signature_ratio = (
            signature_entries[0].count / max(1, signature_histogram.total)
            if signature_entries
            else 0.0
        )
        value_patterns = [
            PatternStat(
                pattern_text=entry.text,
                position=0,
                frequency=entry.count,
                ratio=entry.count / max(1, histogram.total),
                examples=list(entry.examples),
            )
            for entry in histogram.entries()[:max_patterns]
        ]

        token_stats: Dict[tuple, int] = {}
        token_examples: Dict[tuple, List[str]] = {}
        for value, occurrences in value_counts.items():
            for token in tokens_by_value[value]:
                key = (generalize_string(token.normalized or token.text, level=1).to_text(), token.position)
                token_stats[key] = token_stats.get(key, 0) + occurrences
                examples = token_examples.setdefault(key, [])
                if len(examples) < 3 and token.text not in examples:
                    examples.append(token.text)
        token_patterns = [
            PatternStat(
                pattern_text=text,
                position=position,
                frequency=count,
                ratio=count / max(1, n_non_empty),
                examples=token_examples[(text, position)],
            )
            for (text, position), count in sorted(
                token_stats.items(), key=lambda kv: (-kv[1], kv[0])
            )[:max_patterns]
        ]

        return ColumnProfile(
            name=self.name,
            dtype=infer_column_type_from_counts(value_counts),
            n_values=self.n_values,
            n_distinct=len(value_counts) + (1 if self.n_empty else 0),
            n_empty=self.n_empty,
            min_length=min_length,
            max_length=max_length,
            avg_length=avg_length,
            avg_tokens=avg_tokens,
            value_patterns=value_patterns,
            token_patterns=token_patterns,
            dominant_signature_ratio=dominant_signature_ratio,
        )


def profile_column(name: str, values: Sequence[str], max_patterns: int = 25) -> ColumnProfile:
    """Profile a single column of string values (one-shot form of
    :class:`ColumnProfileBuilder`)."""
    return ColumnProfileBuilder(name).add(values).finish(max_patterns=max_patterns)


def profile_table(table: Table, max_patterns: int = 25) -> TableProfile:
    """Profile every column of a table."""
    columns = {
        name: profile_column(name, table.column_ref(name), max_patterns=max_patterns)
        for name in table.column_names()
    }
    return TableProfile(n_rows=table.n_rows, columns=columns)


def profile_sharded(sharded, max_patterns: int = 25) -> TableProfile:
    """Profile a sharded table shard-major, without concatenating columns.

    ``sharded`` is anything with ``column_names()``, ``n_rows`` and
    ``iter_shards()`` (a :class:`~repro.sharding.ShardedTable`; duck-typed
    to keep this layer free of a sharding import).  Each shard is loaded
    once and profiled into per-column builders, so on a spill/object
    store peak memory is one shard plus the distinct value sets — the
    output is identical to :func:`profile_table` over the materialized
    table.
    """
    builders = [ColumnProfileBuilder(name) for name in sharded.column_names()]
    for _offset, shard in sharded.iter_shards():
        for builder in builders:
            builder.add(shard.column_ref(builder.name))
    return TableProfile(
        n_rows=sharded.n_rows,
        columns={
            builder.name: builder.finish(max_patterns=max_patterns)
            for builder in builders
        },
    )
