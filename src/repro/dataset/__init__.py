"""Relational table substrate used by every other subsystem.

The ANMAT demo operates on relational tables (CSV uploads in the GUI).
pandas is not available in this environment, so this package provides the
small slice of dataframe behaviour the algorithms need: a columnar
in-memory :class:`Table` with a typed :class:`Schema`, CSV input/output,
type inference, and the column profiler that backs Figure 3 of the paper.
"""

from repro.dataset.schema import Attribute, DataType, Schema
from repro.dataset.table import Table
from repro.dataset.csvio import (
    iter_csv_chunks,
    read_csv,
    read_csv_sharded,
    read_csv_text,
    write_csv,
)
from repro.dataset.inference import infer_column_type, infer_schema
from repro.dataset.profiling import ColumnProfile, PatternStat, TableProfile, profile_table

__all__ = [
    "Attribute",
    "DataType",
    "Schema",
    "Table",
    "iter_csv_chunks",
    "read_csv",
    "read_csv_sharded",
    "read_csv_text",
    "write_csv",
    "infer_column_type",
    "infer_schema",
    "ColumnProfile",
    "PatternStat",
    "TableProfile",
    "profile_table",
]
