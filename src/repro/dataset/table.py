"""Columnar in-memory relational table.

All cell values are stored as strings because PFDs reason about the
*textual shape* of values; numeric typing only matters for candidate
pruning and is tracked in the schema, not in the storage layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.dataset.schema import Attribute, DataType, Schema
from repro.errors import TableError


CellValue = str
Row = Tuple[CellValue, ...]


# -- mutation deltas ----------------------------------------------------------
#
# Every in-place mutation bumps ``Table.version`` *and* appends a structured
# delta record, so consumers that maintain derived state (the incremental
# detection engine, the per-table artifact cache) can patch themselves
# forward instead of rebuilding from scratch.  ``delta.version`` is the
# table version *after* the mutation was applied.


@dataclass(frozen=True)
class CellEdit:
    """One cell overwritten in place (:meth:`Table.set_cell`)."""

    version: int
    row: int
    column: str
    old: str
    new: str


@dataclass(frozen=True)
class RowAppend:
    """One row appended in place (:meth:`Table.append_row`)."""

    version: int
    row: int
    values: Row


@dataclass(frozen=True)
class RowDelete:
    """One row removed in place (:meth:`Table.delete_row`).

    ``values`` holds the removed row so consumers can unindex it; rows
    after ``row`` shift down by one.
    """

    version: int
    row: int
    values: Row


TableDelta = Union[CellEdit, RowAppend, RowDelete]

#: How many deltas a table retains.  Consumers asking for history older
#: than the retained window get ``None`` and must rebuild.
MAX_DELTA_LOG = 4096


def _stringify(value: object) -> str:
    """Convert an arbitrary cell value to its canonical string form."""
    if value is None:
        return ""
    if isinstance(value, str):
        return value
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


class Table:
    """An immutable-by-convention columnar table.

    Columns are stored as lists of strings.  Mutation methods return new
    tables; the only in-place operation is :meth:`set_cell`, used by error
    injection and repair, which is explicit about being destructive.
    """

    def __init__(self, schema: Union[Schema, Sequence[str]], columns: Sequence[Sequence[object]]):
        if not isinstance(schema, Schema):
            schema = Schema.of(schema)
        if len(columns) != len(schema):
            raise TableError(
                f"schema has {len(schema)} attributes but {len(columns)} columns given"
            )
        normalized: List[List[str]] = [
            [_stringify(v) for v in col] for col in columns
        ]
        lengths = {len(col) for col in normalized}
        if len(lengths) > 1:
            raise TableError(f"columns have inconsistent lengths: {sorted(lengths)}")
        self._schema = schema
        self._columns = normalized
        self._n_rows = normalized[0].__len__() if normalized else 0
        # Mutation counter: bumped by every in-place mutation so per-table
        # derived artifacts (see repro.perf.table_cache) can detect
        # staleness.  The delta log records *what* changed between two
        # versions; ``_log_floor`` is the oldest version the log can
        # replay from (invariant: len(_delta_log) == _version - _log_floor).
        self._version = 0
        self._delta_log: List[TableDelta] = []
        self._log_floor = 0

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: Union[Schema, Sequence[str]],
        rows: Iterable[Sequence[object]],
    ) -> "Table":
        """Build a table from an iterable of row sequences."""
        if not isinstance(schema, Schema):
            schema = Schema.of(schema)
        columns: List[List[object]] = [[] for _ in range(len(schema))]
        for row_number, row in enumerate(rows):
            row = list(row)
            if len(row) != len(schema):
                raise TableError(
                    f"row {row_number} has {len(row)} values, expected {len(schema)}"
                )
            for i, value in enumerate(row):
                columns[i].append(value)
        return cls(schema, columns)

    @classmethod
    def from_dicts(
        cls,
        rows: Iterable[Mapping[str, object]],
        schema: Optional[Union[Schema, Sequence[str]]] = None,
    ) -> "Table":
        """Build a table from dict-shaped rows.

        When ``schema`` is omitted the attribute order is taken from the
        first row; later rows may omit keys (missing cells become empty
        strings) but may not introduce new ones.
        """
        rows = list(rows)
        if schema is None:
            if not rows:
                raise TableError("cannot infer a schema from zero dict rows")
            schema = Schema.of(list(rows[0].keys()))
        elif not isinstance(schema, Schema):
            schema = Schema.of(schema)
        names = schema.names()
        known = set(names)
        materialized = []
        for row_number, row in enumerate(rows):
            extra = set(row.keys()) - known
            if extra:
                raise TableError(
                    f"row {row_number} has unknown attributes {sorted(extra)}"
                )
            materialized.append([row.get(name, "") for name in names])
        return cls.from_rows(schema, materialized)

    @classmethod
    def empty(cls, schema: Union[Schema, Sequence[str]]) -> "Table":
        """Return a zero-row table over ``schema``."""
        if not isinstance(schema, Schema):
            schema = Schema.of(schema)
        return cls(schema, [[] for _ in range(len(schema))])

    # -- basic accessors -----------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return len(self._schema)

    @property
    def version(self) -> int:
        """Mutation counter — incremented by every in-place mutation
        (:meth:`set_cell`, :meth:`append_row`, :meth:`delete_row`)."""
        return self._version

    def deltas_since(self, version: int) -> Optional[Tuple[TableDelta, ...]]:
        """The deltas applied after ``version``, oldest first.

        Returns an empty tuple when the table is already at ``version``
        and ``None`` when the requested history is unavailable (a future
        version, or older than the retained :data:`MAX_DELTA_LOG` window)
        — callers must then rebuild their derived state from scratch.
        """
        if version > self._version or version < self._log_floor:
            return None
        n = self._version - version
        if n == 0:
            return ()
        return tuple(self._delta_log[-n:])

    def _record_delta(self, delta: TableDelta) -> None:
        self._version += 1
        self._delta_log.append(delta)
        if len(self._delta_log) > MAX_DELTA_LOG:
            # Amortized trim: drop the oldest half in one slice.
            drop = len(self._delta_log) - MAX_DELTA_LOG // 2
            del self._delta_log[:drop]
            self._log_floor += drop

    def __len__(self) -> int:
        return self._n_rows

    def column_names(self) -> List[str]:
        """Return the attribute names in order."""
        return self._schema.names()

    def column(self, name: Union[str, Attribute]) -> List[str]:
        """Return a copy of the named column's values."""
        index = self._schema.index_of(name)
        return list(self._columns[index])

    def column_ref(self, name: Union[str, Attribute]) -> Sequence[str]:
        """Return a read-only reference to the column storage (no copy).

        Used by hot loops (discovery, detection) to avoid copying whole
        columns; callers must not mutate the returned sequence.
        """
        index = self._schema.index_of(name)
        return self._columns[index]

    def cell(self, row: int, name: Union[str, Attribute]) -> str:
        """Return the value of one cell."""
        self._check_row(row)
        return self._columns[self._schema.index_of(name)][row]

    def row(self, row: int) -> Row:
        """Return one row as a tuple of values, in schema order."""
        self._check_row(row)
        return tuple(col[row] for col in self._columns)

    def row_dict(self, row: int) -> Dict[str, str]:
        """Return one row as an attribute-name → value mapping."""
        self._check_row(row)
        return {
            name: col[row]
            for name, col in zip(self._schema.names(), self._columns)
        }

    def iter_rows(self) -> Iterator[Row]:
        """Iterate over rows as tuples in schema order."""
        for i in range(self._n_rows):
            yield tuple(col[i] for col in self._columns)

    def iter_dicts(self) -> Iterator[Dict[str, str]]:
        """Iterate over rows as dictionaries."""
        names = self._schema.names()
        for i in range(self._n_rows):
            yield {name: col[i] for name, col in zip(names, self._columns)}

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self._n_rows:
            raise TableError(f"row index {row} out of range [0, {self._n_rows})")

    # -- transformations -----------------------------------------------------

    def select(self, names: Sequence[Union[str, Attribute]]) -> "Table":
        """Return a new table restricted to the given columns."""
        sub_schema = self._schema.select(names)
        columns = [list(self._columns[self._schema.index_of(n)]) for n in names]
        return Table(sub_schema, columns)

    def filter(self, predicate: Callable[[Dict[str, str]], bool]) -> "Table":
        """Return a new table with the rows for which ``predicate`` is true."""
        keep = [i for i, row in enumerate(self.iter_dicts()) if predicate(row)]
        return self.take(keep)

    def take(self, row_indexes: Sequence[int]) -> "Table":
        """Return a new table containing the given rows, in the given order."""
        for i in row_indexes:
            self._check_row(i)
        columns = [[col[i] for i in row_indexes] for col in self._columns]
        return Table(self._schema, columns)

    def head(self, n: int) -> "Table":
        """Return the first ``n`` rows as a new table."""
        return self.take(range(min(n, self._n_rows)))

    def concat(self, other: "Table") -> "Table":
        """Append ``other`` below this table (schemas must have equal names)."""
        if other.column_names() != self.column_names():
            raise TableError(
                "cannot concat tables with different columns: "
                f"{self.column_names()} vs {other.column_names()}"
            )
        columns = [
            list(col) + list(other._columns[i])
            for i, col in enumerate(self._columns)
        ]
        return Table(self._schema, columns)

    def with_column(self, name: str, values: Sequence[object]) -> "Table":
        """Return a new table with an extra column appended."""
        if len(values) != self._n_rows:
            raise TableError(
                f"new column has {len(values)} values, table has {self._n_rows} rows"
            )
        schema = self._schema.with_attribute(name)
        return Table(schema, [list(c) for c in self._columns] + [list(values)])

    def with_schema(self, schema: Schema) -> "Table":
        """Return a copy of the table with a replacement schema.

        The replacement must have the same number of attributes; this is
        how type inference attaches inferred dtypes.
        """
        if len(schema) != len(self._schema):
            raise TableError(
                f"replacement schema has {len(schema)} attributes, expected {len(self._schema)}"
            )
        return Table(schema, [list(c) for c in self._columns])

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Return a copy with columns renamed according to ``mapping``."""
        attrs = []
        for attr in self._schema:
            new_name = mapping.get(attr.name, attr.name)
            attrs.append(Attribute(new_name, attr.dtype, attr.nullable))
        return Table(Schema(attrs), [list(c) for c in self._columns])

    def copy(self) -> "Table":
        """Return a deep copy of the table."""
        return Table(self._schema, [list(c) for c in self._columns])

    # -- in-place mutation (explicit) -----------------------------------------

    def set_cell(self, row: int, name: Union[str, Attribute], value: object) -> None:
        """Destructively overwrite one cell (used by corruption and repair)."""
        self._check_row(row)
        index = self._schema.index_of(name)
        old = self._columns[index][row]
        new = _stringify(value)
        if new == old:
            # No-op write: don't bump the version (it would invalidate
            # every version-keyed cached artifact) or grow the delta log.
            return
        self._columns[index][row] = new
        self._record_delta(
            CellEdit(
                version=self._version + 1,
                row=row,
                column=self._schema[index].name,
                old=old,
                new=new,
            )
        )

    def append_row(
        self, values: Union[Sequence[object], Mapping[str, object]]
    ) -> int:
        """Destructively append one row; returns its row index.

        Accepts a sequence in schema order or a mapping by attribute name
        (missing attributes become empty strings, unknown ones raise).
        """
        if isinstance(values, str):
            # a bare string is a Sequence of characters — reject it before
            # it silently shreds into per-character cells
            raise TableError(
                f"append_row needs a sequence or mapping of cell values, got the string {values!r}"
            )
        if isinstance(values, Mapping):
            extra = set(values.keys()) - set(self.column_names())
            if extra:
                raise TableError(
                    f"appended row has unknown attributes {sorted(extra)}"
                )
            row_values = [
                _stringify(values.get(name, "")) for name in self.column_names()
            ]
        else:
            if len(values) != len(self._schema):
                raise TableError(
                    f"appended row has {len(values)} values, expected {len(self._schema)}"
                )
            row_values = [_stringify(v) for v in values]
        for column, value in zip(self._columns, row_values):
            column.append(value)
        row = self._n_rows
        self._n_rows += 1
        self._record_delta(
            RowAppend(version=self._version + 1, row=row, values=tuple(row_values))
        )
        return row

    def delete_row(self, row: int) -> Row:
        """Destructively remove one row; returns its values.

        Rows after ``row`` shift down by one (consumers holding row
        indexes must renumber — see :class:`RowDelete`).
        """
        self._check_row(row)
        removed = tuple(column[row] for column in self._columns)
        for column in self._columns:
            del column[row]
        self._n_rows -= 1
        self._record_delta(RowDelete(version=self._version + 1, row=row, values=removed))
        return removed

    # -- analytics helpers ----------------------------------------------------

    def distinct(self, name: Union[str, Attribute]) -> List[str]:
        """Return the distinct values of a column, in first-seen order."""
        seen = set()
        out = []
        for value in self.column_ref(name):
            if value not in seen:
                seen.add(value)
                out.append(value)
        return out

    def value_counts(self, name: Union[str, Attribute]) -> Dict[str, int]:
        """Return value → frequency for a column."""
        counts: Dict[str, int] = {}
        for value in self.column_ref(name):
            counts[value] = counts.get(value, 0) + 1
        return counts

    def group_rows(self, name: Union[str, Attribute]) -> Dict[str, List[int]]:
        """Return value → list of row indexes holding that value."""
        groups: Dict[str, List[int]] = {}
        for i, value in enumerate(self.column_ref(name)):
            groups.setdefault(value, []).append(i)
        return groups

    # -- dunder niceties -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (
            self.column_names() == other.column_names()
            and self._columns == other._columns
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.column_names()}, n_rows={self._n_rows})"

    def to_text(self, max_rows: int = 20) -> str:
        """Render the table as a fixed-width text grid (for reports)."""
        names = self.column_names()
        rows = [list(r) for r in self.head(max_rows).iter_rows()]
        widths = [len(n) for n in names]
        for row in rows:
            for i, value in enumerate(row):
                widths[i] = max(widths[i], len(value))
        def fmt(values: Sequence[str]) -> str:
            return " | ".join(v.ljust(widths[i]) for i, v in enumerate(values))
        lines = [fmt(names), "-+-".join("-" * w for w in widths)]
        lines.extend(fmt(row) for row in rows)
        if self._n_rows > max_rows:
            lines.append(f"... ({self._n_rows - max_rows} more rows)")
        return "\n".join(lines)
