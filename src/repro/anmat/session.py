"""The ANMAT workflow as a single session object.

The demo walks the user through: select/create a project → upload a
dataset → set minimum coverage and allowed violations → the system
profiles the data and extracts PFDs → the user inspects tableaux and
confirms the dependencies that are valid → the confirmed rules are run
over the data and violations are reported.  :class:`AnmatSession`
exposes each of those steps as a method and enforces their order.

After detection the session supports an interactive **edit loop**:
:meth:`edit_cell` / :meth:`apply_repair` mutate the table and update the
violation report *in place* through an
:class:`~repro.detection.incremental.IncrementalDetector` instead of
re-scanning the whole table — the session moves to ``EDITING`` and a
:meth:`run_detection` (full re-check) returns it to ``DETECTED``.

Discovery and detection are executed through the pluggable execution
engine (:mod:`repro.engine`): the session builds an
:class:`~repro.engine.plan.ExecutionPlan` from its config and upload
kind and hands it to the matching backend — serial, process-parallel,
or sharded — so the session itself carries no routing branches.
"""

from __future__ import annotations

import enum
import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.anmat.project import Project
from repro.dataset.csvio import iter_csv_chunks
from repro.dataset.profiling import TableProfile
from repro.dataset.table import Table
from repro.detection.detector import DetectionStrategy
from repro.detection.incremental import IncrementalDetector
from repro.detection.repair import RepairSuggestion, suggest_repairs
from repro.detection.violation import ViolationReport
from repro.discovery.config import DiscoveryConfig
from repro.discovery.discoverer import DiscoveryResult
from repro.discovery.maintenance import RuleMaintainer
from repro.engine import (
    DEFAULT_SHARD_ROWS,
    DataSource,
    ExecutionBackend,
    ExecutionPlan,
    PlanWarning,
    build_executor,
    plan_detection,
    plan_discovery,
)
from repro.engine.worker_pool import WorkerPool
from repro.errors import ProjectError
from repro.pfd.pfd import PFD
from repro.sharding.sharded_table import ShardedTable
from repro.sharding.store import ShardStore, make_shard_store


def _rule_key(pfd: "PFD") -> str:
    """A PFD's identity by *content* — attribute pair plus tableau,
    ignoring the assigned ``psiN`` name — so confirmations can survive a
    re-check that renumbers the rule set."""
    data = pfd.to_dict()
    data.pop("name", None)
    return json.dumps(data, sort_keys=True)


class SessionState(enum.Enum):
    """Where in the workflow a session currently is."""

    CREATED = "created"
    LOADED = "loaded"
    PROFILED = "profiled"
    DISCOVERED = "discovered"
    DETECTED = "detected"
    EDITING = "editing"


@dataclass
class AnmatSession:
    """One dataset's journey through the ANMAT pipeline."""

    dataset_name: str
    #: the row-addressable logical dataset: a :class:`Table` for
    #: monolithic loads, a :class:`~repro.sharding.overlay.ShardOverlay`
    #: for sharded uploads (same read/mutation interface; the shard
    #: bytes stay on their store)
    table: Optional[Table] = None
    project: Optional[Project] = None
    config: DiscoveryConfig = field(default_factory=DiscoveryConfig)
    state: SessionState = SessionState.CREATED
    profile: Optional[TableProfile] = None
    discovery: Optional[DiscoveryResult] = None
    confirmed_names: List[str] = field(default_factory=list)
    violations: Optional[ViolationReport] = None
    #: the plan of the most recent discovery/detection run (``--explain-plan``
    #: and tests introspect it)
    last_plan: Optional[ExecutionPlan] = field(default=None, repr=False)
    #: the rules and strategy of the last run_detection, driving the edit loop
    _detection_rules: List[PFD] = field(default_factory=list, repr=False)
    _detection_strategy: str = field(default=DetectionStrategy.AUTO, repr=False)
    _incremental: Optional[IncrementalDetector] = field(default=None, repr=False)
    #: maintains the rule set across :meth:`recheck` calls — seeded by
    #: every sharded discovery run, dropped with the dataset
    _maintainer: Optional[RuleMaintainer] = field(default=None, repr=False)
    #: the dataset as the engine sees it: eager monolithic table, or a
    #: never-materialized shard-store source
    _source: Optional[DataSource] = field(default=None, repr=False)
    #: the session's persistent worker pool (``config.pool ==
    #: "persistent"``): lazily created by the first plan that fans out,
    #: reused across discovery/detection/recheck, closed with the session
    _worker_pool: Optional[WorkerPool] = field(default=None, repr=False)

    # -- step 1: load ------------------------------------------------------------

    def load_table(self, table: Union["Table", "ShardedTable"]) -> "AnmatSession":
        """Attach ("upload") the dataset to the session.

        A :class:`ShardedTable` (e.g. from the chunked CSV reader, or
        built over a spill/object :class:`ShardStore`) is accepted too —
        and is **never materialized**: the session's ``table`` becomes a
        row-addressable :class:`~repro.sharding.overlay.ShardOverlay`
        over the shard store, which profiling views, repairs, and the
        edit loop all read and mutate through, while the shard bytes
        stay wherever the store keeps them.

        Any edit loop over a previously loaded table is dropped — its
        detector would otherwise keep mutating the *old* table — and the
        previous dataset's shard store is closed (spill files and object
        roots are released as soon as they are unreachable, not at
        interpreter exit).
        """
        if self._source is not None:
            self._source.close()
        if self._worker_pool is not None:
            # a new dataset restarts shard indexes and versions from
            # scratch; stale warm-cache entries must not hit for it
            self._worker_pool.clear_warm_cache()
        if isinstance(table, ShardedTable):
            self._source = DataSource.from_sharded(table)
        else:
            self._source = DataSource(table)
        self.table = self._source.view
        self.violations = None
        self._detection_rules = []
        self._incremental = None
        self._maintainer = None
        self.state = SessionState.LOADED
        if self.project is not None:
            self.project.add_dataset(self.dataset_name, self.table)
        return self

    def upload_csv(
        self,
        path: Union[str, Path],
        shard_rows: int = 0,
        store: Optional[ShardStore] = None,
        **csv_kwargs,
    ) -> "AnmatSession":
        """Stream a CSV upload chunk-wise into a shard store and load it.

        The streaming-ingest entry point: :func:`iter_csv_chunks` parses
        the document in bounded-memory chunks and each chunk is appended
        to ``store`` as it arrives — with a spill/object store the
        *parse* never holds more than one chunk (plus the store's small
        LRU) in memory.  The closing :meth:`load_table` keeps the
        dataset on that store: the session reads through a shard
        overlay, so with a disk-backed store the resident footprint is
        bounded by the store's LRU (plus its interned distinct values),
        not the dataset.  ``store`` defaults to the backend
        ``config.store`` names (``memory``/``spill``/``object``, rooted
        at ``config.spill_dir``); ``shard_rows`` falls back to
        ``config.shard_rows``, then to the engine default; extra keyword
        arguments reach the CSV reader (``delimiter``, ``header``,
        ``column_names``, ...).

        The upload adopts the store either way: on success the session's
        :meth:`close` releases it, and when the upload *fails* partway —
        a malformed CSV, an object put that exhausts its retries — the
        store is closed before the error surfaces, so spill directories
        and object roots never leak off the error path (with or without
        the session used as a context manager).
        """
        if shard_rows <= 0:
            shard_rows = self.config.shard_rows or DEFAULT_SHARD_ROWS
        if store is None:
            store = make_shard_store(
                self.config.store,
                self.config.spill_dir,
                object_url=self.config.object_url,
                prefetch_depth=self.config.prefetch_depth,
            )
        try:
            sharded = ShardedTable.from_chunks(
                iter_csv_chunks(path, shard_rows, **csv_kwargs), store=store
            )
        except BaseException:
            # the half-filled store is unusable; release it now rather
            # than leaking its root until interpreter exit
            store.close()
            raise
        return self.load_table(sharded)

    def set_parameters(
        self,
        min_coverage: Optional[float] = None,
        allowed_violation_ratio: Optional[float] = None,
    ) -> "AnmatSession":
        """Set the two user-facing parameters of Section 4."""
        overrides = {}
        if min_coverage is not None:
            overrides["min_coverage"] = min_coverage
        if allowed_violation_ratio is not None:
            overrides["allowed_violation_ratio"] = allowed_violation_ratio
        if overrides:
            self.config = self.config.with_overrides(**overrides)
        return self

    # -- step 2: profile ------------------------------------------------------------

    def run_profiling(self) -> TableProfile:
        """Profile every column (the Figure 3 view).

        Sharded uploads are profiled shard-major through the streaming
        column builders — one resident shard at a time, identical output
        to profiling the materialized table."""
        self._require_table()
        self.profile = self._source.profile()
        self.state = SessionState.PROFILED
        return self.profile

    # -- step 3: discover -------------------------------------------------------------

    def plan_discovery(self, executor: str = "auto") -> ExecutionPlan:
        """The :class:`ExecutionPlan` a :meth:`run_discovery` would run."""
        self._require_table()
        return plan_discovery(
            self.table.n_rows,
            self.config,
            executor=executor,
            sharded_upload=self._source.is_sharded_upload,
            upload_shard_rows=self._source.upload_shard_rows,
        )

    def run_discovery(self, executor: str = "auto") -> DiscoveryResult:
        """Extract PFDs from the dataset (the Figure 4 view).

        The run is resolved by the execution engine's planner —
        ``config.shard_rows`` or a sharded upload route it through the
        sharded backend, ``config.n_workers`` through the process
        fan-out, and ``executor`` forces a specific backend — and
        executed by the matching backend; results are identical across
        backends.
        """
        plan = self.plan_discovery(executor)
        if self.profile is None:
            self.run_profiling()
        self.discovery = build_executor(plan).run_discovery(
            plan, self._source, relation=self.dataset_name, pool=self._pool_for(plan)
        )
        self.last_plan = plan
        self._seed_maintainer(plan, self.discovery)
        # By default every discovered dependency is pending confirmation,
        # and any report/edit loop over the previous rule set is dropped.
        self.confirmed_names = []
        self.violations = None
        self._detection_rules = []
        self._incremental = None
        self.state = SessionState.DISCOVERED
        if self.project is not None:
            self.project.save_pfds(self.dataset_name, self.discovery.pfds)
        return self.discovery

    def plan_recheck(self, executor: str = "auto") -> ExecutionPlan:
        """The :class:`ExecutionPlan` a :meth:`recheck` would run.

        A re-check plan resolves ``config.rule_maintenance`` into
        ``plan.rule_maintenance`` — ``incremental`` when a sharded
        discovery baseline is seeded, ``full`` otherwise (with a
        :class:`~repro.engine.plan.PlanWarning` when ``incremental`` was
        requested explicitly but cannot run).
        """
        self._require_table()
        return plan_discovery(
            self.table.n_rows,
            self.config,
            executor=executor,
            sharded_upload=self._source.is_sharded_upload,
            upload_shard_rows=self._source.upload_shard_rows,
            recheck=True,
            maintainable=self._maintainer is not None and self._maintainer.seeded,
        )

    def recheck(self, executor: str = "auto") -> DiscoveryResult:
        """Bring the rule set up to date after an edit batch.

        The edit loop keeps the *violations* current per edit
        (:meth:`edit_cell`); this is its counterpart for the *rules*.
        The planner resolves how (``plan.rule_maintenance``): with a
        seeded sharded baseline the
        :class:`~repro.discovery.maintenance.RuleMaintainer` re-mines
        only the candidates whose columns the edit batch changed; a
        structural change (appended/deleted rows) or a monolithic run
        falls back to full re-discovery.  Either way the resulting rule
        set is identical to discovering from scratch.

        The plan inherits the upload's shard size exactly like the
        discovery plan does, so a re-check never silently re-shards a
        custom-sharded upload at the default size.

        Confirmations survive by rule content: dependencies whose
        tableau is unchanged stay confirmed (whatever their new number),
        and when a detection run existed the surviving confirmations are
        re-detected (session back to ``DETECTED``).  If no confirmation
        survives, violations are cleared and the session returns to
        ``DISCOVERED`` awaiting fresh confirmations.
        """
        self._require_table()
        if self.discovery is None:
            raise ProjectError(
                "no discovery run to re-check; call run_discovery() first"
            )
        plan = self.plan_recheck(executor)
        confirmed_keys = [_rule_key(pfd) for pfd in self.confirmed_pfds()]
        had_detection = bool(self._detection_rules)
        result: Optional[DiscoveryResult] = None
        if plan.rule_maintenance == "incremental":
            result = self._maintainer.maintain(
                self._source.sharded_view(plan.shard_rows),
                relation=self.dataset_name,
            )
            if result is None:
                reason = (
                    "the edit batch changed the dataset structurally (or the "
                    "rule baseline no longer aligns); falling back to full "
                    "re-discovery"
                )
                plan.rule_maintenance = "full"
                plan.decisions.append(reason)
                warnings.warn(reason, PlanWarning, stacklevel=2)
        if result is None:
            result = build_executor(plan).run_discovery(
                plan,
                self._source,
                relation=self.dataset_name,
                pool=self._pool_for(plan),
            )
            self._seed_maintainer(plan, result)
        self.discovery = result
        self._incremental = None
        self._detection_rules = []
        # re-confirm by content: a rule that survived the re-check stays
        # confirmed under its new name
        survivors = {_rule_key(pfd): pfd.name for pfd in result.pfds}
        self.confirmed_names = [
            survivors[key] for key in confirmed_keys if key in survivors
        ]
        if self.project is not None:
            self.project.save_pfds(
                self.dataset_name, result.pfds, self.confirmed_names
            )
        if had_detection and self.confirmed_names:
            self.run_detection(strategy=self._detection_strategy)
        else:
            self.violations = None
            self.state = SessionState.DISCOVERED
        # the re-check plan (not the inner detection plan) is what
        # --explain-plan and tests should see as the run that just happened
        self.last_plan = plan
        return result

    def _seed_maintainer(self, plan: ExecutionPlan, result: DiscoveryResult) -> None:
        """Adopt a sharded discovery run as the rule-maintenance baseline
        (monolithic runs have no shard versions to diff — drop any stale
        baseline instead)."""
        if plan.backend == ExecutionBackend.SHARDED:
            self._maintainer = RuleMaintainer(self.config)
            self._maintainer.seed(
                self._source.sharded_view(plan.shard_rows), result
            )
        else:
            self._maintainer = None

    def discovered_pfds(self) -> List[PFD]:
        if self.discovery is None:
            return []
        return list(self.discovery.pfds)

    # -- step 4: confirm ---------------------------------------------------------------

    def confirm(self, names: Iterable[str]) -> List[str]:
        """Mark dependencies (by PFD name) as confirmed by the user.

        Atomic: the full name list is validated before any state is
        touched, so an unknown name leaves ``confirmed_names`` (and the
        saved project) exactly as they were.
        """
        names = list(names)
        available = {pfd.name for pfd in self.discovered_pfds()}
        unknown = [name for name in names if name not in available]
        if unknown:
            raise ProjectError(
                f"cannot confirm unknown PFD{'s' if len(unknown) > 1 else ''} "
                f"{', '.join(repr(n) for n in unknown)}"
            )
        for name in names:
            if name not in self.confirmed_names:
                self.confirmed_names.append(name)
        if self.project is not None and self.discovery is not None:
            self.project.save_pfds(
                self.dataset_name, self.discovery.pfds, self.confirmed_names
            )
        return names

    def confirm_all(self) -> List[str]:
        """Confirm every discovered dependency."""
        return self.confirm([pfd.name for pfd in self.discovered_pfds() if pfd.name])

    def confirmed_pfds(self) -> List[PFD]:
        return [
            pfd
            for pfd in self.discovered_pfds()
            if pfd.name in self.confirmed_names
        ]

    # -- step 5: detect -----------------------------------------------------------------

    def plan_detection(
        self, strategy: str = DetectionStrategy.AUTO, executor: str = "auto"
    ) -> ExecutionPlan:
        """The :class:`ExecutionPlan` a :meth:`run_detection` would run.

        When an explicitly requested strategy forces a sharded dataset
        back onto a monolithic backend, the planner records that
        decision on the plan and emits a
        :class:`~repro.engine.plan.PlanWarning`.
        """
        self._require_table()
        return plan_detection(
            self.table.n_rows,
            self.config,
            strategy=strategy,
            executor=executor,
            sharded_upload=self._source.is_sharded_upload,
            upload_shard_rows=self._source.upload_shard_rows,
        )

    def run_detection(
        self,
        strategy: str = DetectionStrategy.AUTO,
        pfds: Optional[Sequence[PFD]] = None,
        executor: str = "auto",
    ) -> ViolationReport:
        """Run the confirmed PFDs over the data (the Figure 5 view).

        The engine's planner resolves the run: a sharded dataset with
        the default ``auto`` strategy goes shard-parallel (canonically
        equal violations); an explicitly requested strategy always runs
        the monolithic engine it names (the planner records why and
        warns).  The edit loop maintains violations monolithically
        either way.
        """
        self._require_table()
        rules = list(pfds) if pfds is not None else self.confirmed_pfds()
        if not rules:
            raise ProjectError(
                "no confirmed PFDs to run; call run_discovery() and confirm() first"
            )
        plan = self.plan_detection(strategy=strategy, executor=executor)
        self.violations = build_executor(plan).run_detection(
            plan, self._source, rules, pool=self._pool_for(plan)
        )
        self.last_plan = plan
        self._detection_rules = rules
        # the edit loop's incremental detector understands the monolithic
        # strategies only; ``auto`` is the right re-check for a sharded run
        self._detection_strategy = strategy
        self._incremental = None  # a fresh full run supersedes any edit loop
        self.state = SessionState.DETECTED
        self._save_results()
        return self.violations

    def repair_suggestions(self) -> List[RepairSuggestion]:
        """Repair suggestions for the last detection run."""
        if self.violations is None:
            return []
        return suggest_repairs(self.violations)

    # -- step 6: edit loop ------------------------------------------------------------

    def edit_cell(self, row: int, attribute: str, value: object) -> ViolationReport:
        """Fix one cell and update the violation report *in place*.

        The first edit after a detection run attaches an
        :class:`IncrementalDetector` over the confirmed rules (reusing
        the cached per-table artifacts of that run); subsequent edits
        cost one delta application each instead of a full re-scan.  The
        session moves to ``EDITING``; :meth:`run_detection` performs a
        full re-check and returns it to ``DETECTED``.

        Project results are *not* rewritten per edit (that disk write
        would dwarf the incremental update); they are persisted by the
        closing :meth:`run_detection` re-check.
        """
        self._require_table()
        if self.violations is None or not self._detection_rules:
            raise ProjectError(
                "no detection run to maintain; call run_detection() before editing"
            )
        if self._incremental is None:
            self._incremental = IncrementalDetector(
                self.table, self._detection_rules, strategy=self._detection_strategy
            )
        self._incremental.set_cell(row, attribute, value)
        self.violations = self._incremental.report()
        self.state = SessionState.EDITING
        return self.violations

    def apply_repair(self, suggestion: RepairSuggestion) -> ViolationReport:
        """Apply one repair suggestion through the edit loop."""
        return self.edit_cell(suggestion.row, suggestion.attribute, suggestion.suggested_value)

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Release the dataset's backing shard store.

        Spill directories and object roots are freed here instead of at
        interpreter exit; in-memory datasets make this a no-op.  The
        session object stays usable — loading another table reopens it.
        Idempotent, and also invoked when the session is used as a
        context manager.
        """
        if self._worker_pool is not None:
            self._worker_pool.close()
            self._worker_pool = None
        if self._source is not None:
            self._source.close()
            self._source = None
        self.table = None
        self._incremental = None
        self._maintainer = None

    def __enter__(self) -> "AnmatSession":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- summary ----------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """A dictionary summarizing the session (used by the CLI)."""
        return {
            "dataset": self.dataset_name,
            "state": self.state.value,
            "n_rows": self.table.n_rows if self.table is not None else 0,
            "n_pfds": len(self.discovered_pfds()),
            "n_confirmed": len(self.confirmed_names),
            "n_violations": len(self.violations) if self.violations is not None else 0,
            "min_coverage": self.config.min_coverage,
            "allowed_violation_ratio": self.config.allowed_violation_ratio,
        }

    # -- helpers -----------------------------------------------------------------------

    def _require_table(self) -> None:
        if self.table is None:
            raise ProjectError(
                f"session {self.dataset_name!r} has no table; call load_table() first"
            )

    def _pool_for(self, plan: ExecutionPlan) -> Optional[WorkerPool]:
        """The persistent worker pool serving this plan, or ``None`` for
        serial plans and ``pool="per-call"`` (the executors then build
        ephemeral pools themselves).  Created lazily on the first
        fanning-out plan, reused until :meth:`close`; a changed
        ``n_workers`` rebuilds it at the new width."""
        if plan.n_workers <= 1 or plan.pool != "persistent":
            return None
        if (
            self._worker_pool is not None
            and self._worker_pool.n_workers != plan.n_workers
        ):
            self._worker_pool.close()
            self._worker_pool = None
        if self._worker_pool is None:
            self._worker_pool = WorkerPool(plan.n_workers)
        return self._worker_pool

    def _save_results(self) -> None:
        if self.project is None or self.violations is None:
            return
        self.project.save_results(
            self.dataset_name,
            {
                "dataset": self.dataset_name,
                "n_rows": self.table.n_rows,
                "n_violations": len(self.violations),
                "suspect_rows": self.violations.suspect_rows(),
                "strategy": self.violations.strategy,
            },
        )
