"""The ANMAT workflow as a single session object.

The demo walks the user through: select/create a project → upload a
dataset → set minimum coverage and allowed violations → the system
profiles the data and extracts PFDs → the user inspects tableaux and
confirms the dependencies that are valid → the confirmed rules are run
over the data and violations are reported.  :class:`AnmatSession`
exposes each of those steps as a method and enforces their order.

After detection the session supports an interactive **edit loop**:
:meth:`edit_cell` / :meth:`apply_repair` mutate the table and update the
violation report *in place* through an
:class:`~repro.detection.incremental.IncrementalDetector` instead of
re-scanning the whole table — the session moves to ``EDITING`` and a
:meth:`run_detection` (full re-check) returns it to ``DETECTED``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.anmat.project import Project
from repro.dataset.profiling import TableProfile, profile_table
from repro.dataset.table import Table
from repro.detection.detector import DetectionStrategy, ErrorDetector
from repro.detection.incremental import IncrementalDetector
from repro.detection.repair import RepairSuggestion, suggest_repairs
from repro.detection.violation import ViolationReport
from repro.discovery.config import DiscoveryConfig
from repro.discovery.discoverer import DiscoveryResult, PfdDiscoverer
from repro.errors import ProjectError
from repro.pfd.pfd import PFD
from repro.sharding.detection import ShardedDetector
from repro.sharding.discovery import ShardedDiscoverer
from repro.sharding.sharded_table import ShardedTable


class SessionState(enum.Enum):
    """Where in the workflow a session currently is."""

    CREATED = "created"
    LOADED = "loaded"
    PROFILED = "profiled"
    DISCOVERED = "discovered"
    DETECTED = "detected"
    EDITING = "editing"


@dataclass
class AnmatSession:
    """One dataset's journey through the ANMAT pipeline."""

    dataset_name: str
    table: Optional[Table] = None
    project: Optional[Project] = None
    config: DiscoveryConfig = field(default_factory=DiscoveryConfig)
    state: SessionState = SessionState.CREATED
    profile: Optional[TableProfile] = None
    discovery: Optional[DiscoveryResult] = None
    confirmed_names: List[str] = field(default_factory=list)
    violations: Optional[ViolationReport] = None
    #: the rules and strategy of the last run_detection, driving the edit loop
    _detection_rules: List[PFD] = field(default_factory=list, repr=False)
    _detection_strategy: str = field(default=DetectionStrategy.AUTO, repr=False)
    _incremental: Optional[IncrementalDetector] = field(default=None, repr=False)
    #: the sharded view driving sharded execution (see ``config.shard_rows``)
    _sharded: Optional[ShardedTable] = field(default=None, repr=False)
    _sharded_version: Optional[int] = field(default=None, repr=False)

    # -- step 1: load ------------------------------------------------------------

    def load_table(self, table: Union["Table", "ShardedTable"]) -> "AnmatSession":
        """Attach ("upload") the dataset to the session.

        A :class:`ShardedTable` (e.g. from the chunked CSV reader) is
        accepted too: the session keeps the sharded view for the sharded
        execution paths and materializes the logical table (cell refs
        shared with the shards) for everything else — profiling views,
        repairs, and the edit loop stay monolithic.

        Any edit loop over a previously loaded table is dropped — its
        detector would otherwise keep mutating the *old* table.
        """
        if isinstance(table, ShardedTable):
            self._sharded = table
            self.table = table.to_table()
            self._sharded_version = self.table.version
        else:
            self.table = table
            self._sharded = None
            self._sharded_version = None
        self.violations = None
        self._detection_rules = []
        self._incremental = None
        self.state = SessionState.LOADED
        if self.project is not None:
            self.project.add_dataset(self.dataset_name, self.table)
        return self

    def set_parameters(
        self,
        min_coverage: Optional[float] = None,
        allowed_violation_ratio: Optional[float] = None,
    ) -> "AnmatSession":
        """Set the two user-facing parameters of Section 4."""
        overrides = {}
        if min_coverage is not None:
            overrides["min_coverage"] = min_coverage
        if allowed_violation_ratio is not None:
            overrides["allowed_violation_ratio"] = allowed_violation_ratio
        if overrides:
            self.config = self.config.with_overrides(**overrides)
        return self

    # -- step 2: profile ------------------------------------------------------------

    def run_profiling(self) -> TableProfile:
        """Profile every column (the Figure 3 view)."""
        self._require_table()
        self.profile = profile_table(self.table)
        self.state = SessionState.PROFILED
        return self.profile

    # -- step 3: discover -------------------------------------------------------------

    def run_discovery(self) -> DiscoveryResult:
        """Extract PFDs from the dataset (the Figure 4 view).

        With ``config.shard_rows > 0`` (or a sharded upload) discovery
        runs through the sharding subsystem — per-shard statistics,
        merged rule set, identical results to the monolithic path.
        """
        self._require_table()
        if self.profile is None:
            self.run_profiling()
        if self._use_sharded():
            self.discovery = ShardedDiscoverer(self.config).discover_with_report(
                self._sharded_view(), relation=self.dataset_name
            )
        else:
            self.discovery = PfdDiscoverer(self.config).discover_with_report(
                self.table, relation=self.dataset_name
            )
        # By default every discovered dependency is pending confirmation,
        # and any report/edit loop over the previous rule set is dropped.
        self.confirmed_names = []
        self.violations = None
        self._detection_rules = []
        self._incremental = None
        self.state = SessionState.DISCOVERED
        if self.project is not None:
            self.project.save_pfds(self.dataset_name, self.discovery.pfds)
        return self.discovery

    def discovered_pfds(self) -> List[PFD]:
        if self.discovery is None:
            return []
        return list(self.discovery.pfds)

    # -- step 4: confirm ---------------------------------------------------------------

    def confirm(self, names: Iterable[str]) -> List[str]:
        """Mark dependencies (by PFD name) as confirmed by the user.

        Atomic: the full name list is validated before any state is
        touched, so an unknown name leaves ``confirmed_names`` (and the
        saved project) exactly as they were.
        """
        names = list(names)
        available = {pfd.name for pfd in self.discovered_pfds()}
        unknown = [name for name in names if name not in available]
        if unknown:
            raise ProjectError(
                f"cannot confirm unknown PFD{'s' if len(unknown) > 1 else ''} "
                f"{', '.join(repr(n) for n in unknown)}"
            )
        for name in names:
            if name not in self.confirmed_names:
                self.confirmed_names.append(name)
        if self.project is not None and self.discovery is not None:
            self.project.save_pfds(
                self.dataset_name, self.discovery.pfds, self.confirmed_names
            )
        return names

    def confirm_all(self) -> List[str]:
        """Confirm every discovered dependency."""
        return self.confirm([pfd.name for pfd in self.discovered_pfds() if pfd.name])

    def confirmed_pfds(self) -> List[PFD]:
        return [
            pfd
            for pfd in self.discovered_pfds()
            if pfd.name in self.confirmed_names
        ]

    # -- step 5: detect -----------------------------------------------------------------

    def run_detection(
        self,
        strategy: str = DetectionStrategy.AUTO,
        pfds: Optional[Sequence[PFD]] = None,
    ) -> ViolationReport:
        """Run the confirmed PFDs over the data (the Figure 5 view).

        With ``config.shard_rows > 0`` (or a sharded upload) and the
        default ``auto`` strategy, detection runs shard-parallel through
        :class:`ShardedDetector` (canonically equal violations); an
        explicitly requested strategy always runs the monolithic engine
        it names.  The edit loop maintains violations monolithically
        either way.
        """
        self._require_table()
        rules = list(pfds) if pfds is not None else self.confirmed_pfds()
        if not rules:
            raise ProjectError(
                "no confirmed PFDs to run; call run_discovery() and confirm() first"
            )
        if self._use_sharded() and strategy == DetectionStrategy.AUTO:
            detector = ShardedDetector(
                self._sharded_view(), n_workers=self.config.n_workers
            )
            self.violations = detector.detect_all(rules)
        else:
            self.violations = ErrorDetector(self.table).detect_all(
                rules, strategy=strategy
            )
        self._detection_rules = rules
        # the edit loop's incremental detector understands the monolithic
        # strategies only; ``auto`` is the right re-check for a sharded run
        self._detection_strategy = strategy
        self._incremental = None  # a fresh full run supersedes any edit loop
        self.state = SessionState.DETECTED
        self._save_results()
        return self.violations

    def repair_suggestions(self) -> List[RepairSuggestion]:
        """Repair suggestions for the last detection run."""
        if self.violations is None:
            return []
        return suggest_repairs(self.violations)

    # -- step 6: edit loop ------------------------------------------------------------

    def edit_cell(self, row: int, attribute: str, value: object) -> ViolationReport:
        """Fix one cell and update the violation report *in place*.

        The first edit after a detection run attaches an
        :class:`IncrementalDetector` over the confirmed rules (reusing
        the cached per-table artifacts of that run); subsequent edits
        cost one delta application each instead of a full re-scan.  The
        session moves to ``EDITING``; :meth:`run_detection` performs a
        full re-check and returns it to ``DETECTED``.

        Project results are *not* rewritten per edit (that disk write
        would dwarf the incremental update); they are persisted by the
        closing :meth:`run_detection` re-check.
        """
        self._require_table()
        if self.violations is None or not self._detection_rules:
            raise ProjectError(
                "no detection run to maintain; call run_detection() before editing"
            )
        if self._incremental is None:
            self._incremental = IncrementalDetector(
                self.table, self._detection_rules, strategy=self._detection_strategy
            )
        self._incremental.set_cell(row, attribute, value)
        self.violations = self._incremental.report()
        self.state = SessionState.EDITING
        return self.violations

    def apply_repair(self, suggestion: RepairSuggestion) -> ViolationReport:
        """Apply one repair suggestion through the edit loop."""
        return self.edit_cell(suggestion.row, suggestion.attribute, suggestion.suggested_value)

    # -- summary ----------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """A dictionary summarizing the session (used by the CLI)."""
        return {
            "dataset": self.dataset_name,
            "state": self.state.value,
            "n_rows": self.table.n_rows if self.table is not None else 0,
            "n_pfds": len(self.discovered_pfds()),
            "n_confirmed": len(self.confirmed_names),
            "n_violations": len(self.violations) if self.violations is not None else 0,
            "min_coverage": self.config.min_coverage,
            "allowed_violation_ratio": self.config.allowed_violation_ratio,
        }

    # -- helpers -----------------------------------------------------------------------

    def _require_table(self) -> None:
        if self.table is None:
            raise ProjectError(
                f"session {self.dataset_name!r} has no table; call load_table() first"
            )

    def _use_sharded(self) -> bool:
        """Whether discovery/detection should route through the sharding
        subsystem: opted in via ``config.shard_rows`` or by uploading a
        :class:`ShardedTable`."""
        return self.config.shard_rows > 0 or self._sharded is not None

    def _sharded_view(self) -> ShardedTable:
        """The sharded view of the current table, rebuilt when the table
        was edited since the view was built (the edit loop mutates the
        monolithic table, never the shards)."""
        if self._sharded is not None and self._sharded_version == self.table.version:
            return self._sharded
        shard_rows = self.config.shard_rows
        if shard_rows <= 0 and self._sharded is not None:
            # sharded upload without an explicit knob: keep its shard size
            shard_rows = max(shard.n_rows for shard in self._sharded.shards)
        self._sharded = ShardedTable.from_table(self.table, max(1, shard_rows))
        self._sharded_version = self.table.version
        return self._sharded

    def _save_results(self) -> None:
        if self.project is None or self.violations is None:
            return
        self.project.save_results(
            self.dataset_name,
            {
                "dataset": self.dataset_name,
                "n_rows": self.table.n_rows,
                "n_violations": len(self.violations),
                "suspect_rows": self.violations.suspect_rows(),
                "strategy": self.violations.strategy,
            },
        )
