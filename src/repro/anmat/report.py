"""Plain-text report rendering.

The demo's GUI screens (Figures 3, 4 and 5) and the summary table
(Table 3) are tabular; these functions produce the same rows as aligned
plain text so the benchmarks and the CLI can display — and snapshot —
the reproduction's output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dataset.profiling import TableProfile
from repro.detection.violation import Violation, ViolationReport
from repro.discovery.discoverer import DiscoveryResult
from repro.pfd.pfd import PFD
from repro.pfd.tableau import Wildcard, cell_to_text


def _grid(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned text grid."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    def fmt(values: Sequence[str]) -> str:
        return " | ".join(str(v).ljust(widths[i]) for i, v in enumerate(values))
    lines = [fmt(headers), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


# -- Figure 3: profiling & pattern listing ---------------------------------------------


def render_profile(profile: TableProfile, max_patterns: int = 5) -> str:
    """The Figure 3 view: per column, the dominant patterns with their
    ``pattern::position, frequency`` rendering."""
    sections: List[str] = [f"Profiled {profile.n_rows} rows, {len(profile.column_names())} columns"]
    for column in profile:
        sections.append("")
        sections.append(
            f"Column {column.name!r} — type={column.dtype.value}, "
            f"distinct={column.n_distinct}, empty={column.n_empty}"
        )
        rows = [
            [stat.render(), f"{stat.ratio:.1%}", ", ".join(stat.examples)]
            for stat in column.value_patterns[:max_patterns]
        ]
        if rows:
            sections.append(_grid(["pattern::position, frequency", "share", "examples"], rows))
    return "\n".join(sections)


# -- Figure 4: discovered PFDs ------------------------------------------------------------


def render_discovered_pfds(result: DiscoveryResult, confirmed: Optional[Sequence[str]] = None) -> str:
    """The Figure 4 view: each dependency with its tableau."""
    confirmed = set(confirmed or [])
    sections = [
        f"Discovered {len(result.pfds)} PFDs "
        f"({len(result.constant_pfds())} constant, {len(result.variable_pfds())} variable) "
        f"from {len(result.reports)} candidate dependencies "
        f"in {result.elapsed_seconds:.2f}s"
    ]
    for pfd in result.pfds:
        status = "confirmed" if pfd.name in confirmed else "pending"
        sections.append("")
        sections.append(f"{pfd.name} [{status}] {pfd.lhs_attribute} → {pfd.rhs_attribute} ({pfd.kind.value})")
        sections.append(pfd.tableau.render())
    return "\n".join(sections)


# -- Figure 5: detected violations ----------------------------------------------------------


def render_violations(report: ViolationReport, table=None, max_rows: int = 25) -> str:
    """The Figure 5 view: violating records with the violated rule."""
    header = (
        f"{len(report.violations)} violations over {report.n_rows} rows "
        f"({len(report.suspect_cells())} suspect cells, strategy={report.strategy})"
    )
    rows: List[List[str]] = []
    for violation in report.violations[:max_rows]:
        record = ""
        if table is not None:
            record = " | ".join(table.row(violation.rows[-1]))
        rows.append(
            [
                violation.pfd_name,
                violation.rule_text,
                str(list(violation.rows)),
                violation.observed_value,
                violation.expected_value or "",
                record,
            ]
        )
    grid = _grid(
        ["PFD", "violated rule", "rows", "observed", "expected", "record"],
        rows,
    ) if rows else "(no violations)"
    suffix = ""
    if len(report.violations) > max_rows:
        suffix = f"\n... ({len(report.violations) - max_rows} more violations)"
    return f"{header}\n{grid}{suffix}"


# -- Table 3: discovered PFDs and detected errors --------------------------------------------


def render_table3(
    entries: Iterable[Tuple[str, str, PFD, ViolationReport, object]],
    max_rules: int = 5,
    max_errors: int = 5,
) -> str:
    """Render the Table 3 summary.

    ``entries`` are (dataset label, dependency label, pfd, violation
    report, table) tuples; for each one the tableau rules are shown next
    to example detected errors in the paper's ``value | wrong-RHS``
    format.
    """
    rows: List[List[str]] = []
    for dataset, dependency, pfd, report, table in entries:
        rules = []
        for row in pfd.tableau.rows[:max_rules]:
            lhs_cell = cell_to_text(row.cell(pfd.lhs_attribute))
            rhs_cell = row.cell(pfd.rhs_attribute)
            rhs_text = "⊥" if isinstance(rhs_cell, Wildcard) else cell_to_text(rhs_cell)
            rules.append(f"{lhs_cell} → {rhs_text}")
        errors = []
        for violation in report.violations[:max_errors]:
            row_index = violation.suspect_cell[0]
            lhs_value = table.cell(row_index, pfd.lhs_attribute) if table is not None else ""
            errors.append(f"{lhs_value} | {violation.observed_value}")
        rows.append(
            [
                dataset,
                dependency,
                "; ".join(rules),
                "; ".join(errors) if errors else "(none)",
            ]
        )
    return _grid(["Data", "Dependency", "Pattern Tableau", "Errors"], rows)
