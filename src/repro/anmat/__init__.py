"""The ANMAT system layer.

The demo wraps discovery and detection in a small application: users
create a *project*, upload datasets, set the minimum coverage and allowed
violations, let the system profile the data and extract PFDs, confirm the
dependencies that look right, and finally run error detection over the
confirmed rules (Figures 3–5).  This package reproduces that workflow:

* :mod:`repro.anmat.project` — a JSON-backed project/dataset store (the
  demo used MongoDB).
* :mod:`repro.anmat.session` — the profile → discover → confirm → detect
  pipeline as a single object.
* :mod:`repro.anmat.report` — plain-text renderings of the Figure 3/4/5
  views and the Table 3 summary.
* :mod:`repro.anmat.cli` — an ``anmat`` command-line interface standing
  in for the web GUI.
"""

from repro.anmat.project import Project, ProjectStore
from repro.anmat.session import AnmatSession, SessionState
from repro.anmat.report import (
    render_discovered_pfds,
    render_profile,
    render_table3,
    render_violations,
)

__all__ = [
    "Project",
    "ProjectStore",
    "AnmatSession",
    "SessionState",
    "render_profile",
    "render_discovered_pfds",
    "render_violations",
    "render_table3",
]
