"""Project and dataset persistence.

The demo stores profiling results, extracted PFDs and confirmations in
MongoDB; this reproduction persists the same document-shaped payloads as
JSON files under a project directory, which exercises the identical
save / reload / confirm workflow without an external service.

Layout::

    <root>/<project>/project.json            project metadata
    <root>/<project>/datasets/<name>.csv     uploaded datasets
    <root>/<project>/results/<name>.json     discovery + detection results
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.dataset.csvio import read_csv, write_csv
from repro.dataset.table import Table
from repro.errors import ProjectError
from repro.pfd.pfd import PFD


@dataclass
class Project:
    """One ANMAT project: a named collection of datasets and results."""

    name: str
    root: Path
    description: str = ""
    datasets: List[str] = field(default_factory=list)

    @property
    def directory(self) -> Path:
        return self.root / self.name

    @property
    def dataset_directory(self) -> Path:
        return self.directory / "datasets"

    @property
    def result_directory(self) -> Path:
        return self.directory / "results"

    # -- dataset management ---------------------------------------------------

    def add_dataset(self, name: str, table: Table) -> Path:
        """Store ("upload") a dataset as CSV inside the project."""
        if not name or "/" in name:
            raise ProjectError(f"invalid dataset name {name!r}")
        self.dataset_directory.mkdir(parents=True, exist_ok=True)
        path = self.dataset_directory / f"{name}.csv"
        write_csv(table, path)
        if name not in self.datasets:
            self.datasets.append(name)
        self.save()
        return path

    def load_dataset(self, name: str) -> Table:
        """Load a previously uploaded dataset."""
        path = self.dataset_directory / f"{name}.csv"
        if not path.exists():
            raise ProjectError(f"project {self.name!r} has no dataset {name!r}")
        return read_csv(path)

    # -- result management -------------------------------------------------------

    def save_results(self, dataset: str, payload: Dict) -> Path:
        """Persist a JSON result document for a dataset."""
        self.result_directory.mkdir(parents=True, exist_ok=True)
        path = self.result_directory / f"{dataset}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
        return path

    def load_results(self, dataset: str) -> Dict:
        path = self.result_directory / f"{dataset}.json"
        if not path.exists():
            raise ProjectError(f"no stored results for dataset {dataset!r}")
        return json.loads(path.read_text(encoding="utf-8"))

    def save_pfds(self, dataset: str, pfds: List[PFD], confirmed: Optional[List[str]] = None) -> Path:
        """Persist discovered PFDs (and which ones the user confirmed)."""
        payload = {
            "dataset": dataset,
            "pfds": [pfd.to_dict() for pfd in pfds],
            "confirmed": confirmed or [],
        }
        self.result_directory.mkdir(parents=True, exist_ok=True)
        path = self.result_directory / f"{dataset}.pfds.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
        return path

    def load_pfds(self, dataset: str) -> List[PFD]:
        path = self.result_directory / f"{dataset}.pfds.json"
        if not path.exists():
            raise ProjectError(f"no stored PFDs for dataset {dataset!r}")
        payload = json.loads(path.read_text(encoding="utf-8"))
        return [PFD.from_dict(entry) for entry in payload.get("pfds", [])]

    # -- persistence of the project record itself ----------------------------------

    def save(self) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / "project.json"
        path.write_text(
            json.dumps(
                {
                    "name": self.name,
                    "description": self.description,
                    "datasets": self.datasets,
                },
                indent=2,
                sort_keys=True,
            ),
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, root: Path, name: str) -> "Project":
        path = root / name / "project.json"
        if not path.exists():
            raise ProjectError(f"no project named {name!r} under {root}")
        data = json.loads(path.read_text(encoding="utf-8"))
        return cls(
            name=data["name"],
            root=root,
            description=data.get("description", ""),
            datasets=list(data.get("datasets", [])),
        )


class ProjectStore:
    """A directory of projects (the stand-in for the MongoDB instance)."""

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def create_project(self, name: str, description: str = "") -> Project:
        if not name or "/" in name:
            raise ProjectError(f"invalid project name {name!r}")
        if (self.root / name / "project.json").exists():
            raise ProjectError(f"project {name!r} already exists")
        project = Project(name=name, root=self.root, description=description)
        project.save()
        return project

    def open_project(self, name: str) -> Project:
        return Project.load(self.root, name)

    def get_or_create(self, name: str, description: str = "") -> Project:
        try:
            return self.open_project(name)
        except ProjectError:
            return self.create_project(name, description)

    def list_projects(self) -> List[str]:
        return sorted(
            path.parent.name for path in self.root.glob("*/project.json")
        )

    def delete_project(self, name: str) -> None:
        """Remove a project and everything stored under it."""
        directory = self.root / name
        if not directory.exists():
            raise ProjectError(f"no project named {name!r} under {self.root}")
        for path in sorted(directory.rglob("*"), reverse=True):
            if path.is_file():
                path.unlink()
            else:
                path.rmdir()
        directory.rmdir()
