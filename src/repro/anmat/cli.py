"""The ``anmat`` command-line interface.

A text stand-in for the demo's web GUI.  Sub-commands mirror the GUI
workflow:

* ``anmat datasets`` — list the built-in synthetic datasets.
* ``anmat profile`` — profile a dataset (Figure 3).
* ``anmat discover`` — discover PFDs and print their tableaux (Figure 4).
* ``anmat detect`` — discover, confirm everything, detect and print
  violations (Figure 5), optionally scoring against the injected ground
  truth.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.anmat.report import render_discovered_pfds, render_profile, render_violations
from repro.anmat.session import AnmatSession
from repro.dataset.csvio import read_csv, read_csv_sharded
from repro.datagen.registry import build_dataset, dataset_names
from repro.discovery.config import DiscoveryConfig
from repro.engine import DEFAULT_SHARD_ROWS, REQUESTABLE_EXECUTORS
from repro.sharding import STORE_KINDS, ShardedTable, make_shard_store
from repro.metrics.evaluation import evaluate_report

#: ``detect`` exit codes, distinct so shell pipelines can gate on clean
#: data (argparse itself exits 2 on usage errors, and unexpected errors
#: surface as tracebacks with status 1).
EXIT_CLEAN = 0
EXIT_VIOLATIONS_FOUND = 3


def _load_table(args: argparse.Namespace):
    """Return (table, ground_truth_or_None, label) from CLI arguments.

    With ``--shard-rows`` a CSV upload is streamed through the chunked
    reader straight into shards — the whole document is never parsed in
    one piece — and discovery/detection run shard-wise.  ``--store``
    picks where those shards live (in memory, spilled to disk, or in a
    local object store); a non-memory store without ``--shard-rows``
    implies the default shard size, since out-of-core storage only
    helps when the upload is sharded.
    """
    shard_rows = getattr(args, "shard_rows", 0)
    store_kind = getattr(args, "store", "memory")
    spill_dir = getattr(args, "spill_dir", None)
    object_url = getattr(args, "object_url", None)
    if store_kind != "memory" and shard_rows <= 0:
        shard_rows = DEFAULT_SHARD_ROWS
    if args.csv:
        if shard_rows > 0:
            store = make_shard_store(
                store_kind,
                spill_dir,
                object_url=object_url,
                prefetch_depth=getattr(args, "prefetch_depth", 0),
            )
            try:
                sharded = read_csv_sharded(Path(args.csv), shard_rows, store=store)
            except BaseException:
                store.close()  # don't leak the store root on a bad CSV
                raise
            return sharded, None, Path(args.csv).stem
        return read_csv(Path(args.csv)), None, Path(args.csv).stem
    dataset = build_dataset(args.dataset)
    if store_kind != "memory":
        # built-in datasets are generated in memory; re-shard them into
        # the requested store so the session still runs out of core
        store = make_shard_store(
            store_kind,
            spill_dir,
            object_url=object_url,
            prefetch_depth=getattr(args, "prefetch_depth", 0),
        )
        try:
            sharded = ShardedTable.from_table(dataset.table, shard_rows, store=store)
        except BaseException:
            store.close()
            raise
        return sharded, dataset.error_cells, dataset.name
    return dataset.table, dataset.error_cells, dataset.name


def _make_session(table, label: str, args: argparse.Namespace) -> AnmatSession:
    config = DiscoveryConfig(
        min_coverage=args.min_coverage,
        allowed_violation_ratio=args.allowed_violations,
        shard_rows=getattr(args, "shard_rows", 0),
        n_workers=getattr(args, "n_workers", 0),
        use_kernels=getattr(args, "use_kernels", "auto"),
        store=getattr(args, "store", "memory"),
        spill_dir=getattr(args, "spill_dir", None),
        object_url=getattr(args, "object_url", None),
        pool=getattr(args, "pool", "persistent"),
        prefetch_depth=getattr(args, "prefetch_depth", 2),
        rule_maintenance=getattr(args, "rule_maintenance", "auto"),
    )
    session = AnmatSession(dataset_name=label, config=config)
    session.load_table(table)
    return session


def _explain_plans(args: argparse.Namespace, *build_plans) -> None:
    """Print the chosen execution plan(s) when ``--explain-plan`` is set.

    Takes plan *builders* so nothing is planned (and no ``PlanWarning``
    is emitted twice) when the flag is off.
    """
    if not getattr(args, "explain_plan", False):
        return
    for build in build_plans:
        print(build().describe())


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--dataset",
        default="zip_city_state",
        choices=dataset_names(),
        help="built-in synthetic dataset to use",
    )
    source.add_argument("--csv", help="path to a CSV file to analyse instead")
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=0.6,
        help="minimum coverage threshold (the paper's γ)",
    )
    parser.add_argument(
        "--allowed-violations",
        type=float,
        default=0.05,
        help="allowed violation ratio (the paper's dirty-data tolerance)",
    )
    parser.add_argument(
        "--shard-rows",
        type=_positive_int,
        default=0,
        metavar="N",
        help=(
            "run sharded: partition the dataset into shards of N rows "
            "(CSV uploads are streamed chunk-wise) and route discovery "
            "and detection through the sharding subsystem; results are "
            "identical to a monolithic run (0 = monolithic, the default)"
        ),
    )
    parser.add_argument(
        "--n-workers",
        type=_positive_int,
        default=0,
        metavar="N",
        help=(
            "fan embarrassingly parallel stages out over N worker "
            "processes (candidate mining, per-rule detection, per-shard "
            "extraction); results are identical to a serial run "
            "(0 = serial, the default)"
        ),
    )
    parser.add_argument(
        "--store",
        default="memory",
        choices=list(STORE_KINDS),
        help=(
            "shard store backend for the upload: 'memory' keeps shards "
            "in process (the default), 'spill' spills sealed shards to "
            "disk and reloads them on demand, 'object' puts them in a "
            "local object store with checksummed reads; a non-memory "
            "store implies --shard-rows "
            f"{DEFAULT_SHARD_ROWS} when none is given; results are "
            "identical across stores"
        ),
    )
    parser.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help=(
            "directory for the 'spill' and 'object' stores (default: a "
            "temporary directory cleaned up when the store closes)"
        ),
    )
    parser.add_argument(
        "--object-url",
        default=None,
        metavar="URL",
        help=(
            "base http(s):// URL of a remote object store for --store "
            "object: shard bytes move over S3-compatible-style "
            "PUT/GET/DELETE with sha256 checksums and bounded "
            "retry/backoff; the default (no URL) keeps objects on the "
            "local filesystem; the execution plan records which client "
            "serves the run"
        ),
    )
    parser.add_argument(
        "--use-kernels",
        default="auto",
        choices=("auto", "on", "off"),
        help=(
            "vectorized columnar kernels for the discovery/detection hot "
            "paths: 'auto' uses them exactly when numpy is importable, "
            "'on' requests them (degrading to the scalar path without "
            "numpy), 'off' forces the scalar path; results are identical "
            "either way"
        ),
    )
    parser.add_argument(
        "--pool",
        default="persistent",
        choices=("persistent", "per-call"),
        help=(
            "worker-pool lifecycle for --n-workers fan-out: 'persistent' "
            "keeps one process pool warm across the session's runs (with "
            "a shard-version-keyed result cache), 'per-call' builds and "
            "tears down a fresh pool inside each run"
        ),
    )
    parser.add_argument(
        "--prefetch-depth",
        type=int,
        default=2,
        metavar="K",
        help=(
            "how many shard objects ahead the --store object reader "
            "fetches on background threads (GET + checksum verification "
            "overlap compute; retry backoff stays off the critical "
            "path); 0 reads sequentially"
        ),
    )
    parser.add_argument(
        "--rule-maintenance",
        default="auto",
        choices=("auto", "incremental", "full"),
        help=(
            "how a re-check after edits refreshes the rule set: 'auto' "
            "maintains it incrementally when a sharded discovery baseline "
            "exists (falling back to full re-discovery otherwise), "
            "'incremental' requests maintenance (warning when it cannot "
            "run), 'full' always re-discovers; maintained and fully "
            "re-discovered rule sets are identical"
        ),
    )


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """Engine routing flags shared by ``discover`` and ``detect``."""
    parser.add_argument(
        "--executor",
        default="auto",
        choices=list(REQUESTABLE_EXECUTORS),
        help=(
            "execution backend: 'auto' routes on --shard-rows/--n-workers "
            "and the upload kind; 'serial', 'parallel' and 'sharded' force "
            "a backend (results are identical across backends)"
        ),
    )
    parser.add_argument(
        "--explain-plan",
        action="store_true",
        help="print the chosen execution plan (backend, shard count, workers) before running",
    )


def _positive_int(text: str) -> int:
    """argparse type for ``--shard-rows``/``--n-workers``: a non-negative
    integer."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _cmd_datasets(_args: argparse.Namespace) -> int:
    for name in dataset_names():
        dataset = build_dataset(name)
        print(f"{name:20s} {dataset.table.n_rows:6d} rows  {dataset.description}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    table, _truth, label = _load_table(args)
    with _make_session(table, label, args) as session:
        profile = session.run_profiling()
    print(render_profile(profile))
    return 0


def _cmd_discover(args: argparse.Namespace) -> int:
    table, _truth, label = _load_table(args)
    with _make_session(table, label, args) as session:
        _explain_plans(args, lambda: session.plan_discovery(args.executor))
        result = session.run_discovery(executor=args.executor)
    print(render_discovered_pfds(result))
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    table, truth, label = _load_table(args)
    with _make_session(table, label, args) as session:
        _explain_plans(
            args,
            lambda: session.plan_discovery(args.executor),
            lambda: session.plan_detection(strategy=args.strategy, executor=args.executor),
        )
        session.run_discovery(executor=args.executor)
        session.confirm_all()
        report = session.run_detection(strategy=args.strategy, executor=args.executor)
        print(render_violations(report, session.table))
    if args.score:
        if truth is None:
            print(
                "warning: --score ignored: the loaded dataset has no injected "
                "ground truth (scoring works on built-in synthetic datasets only)",
                file=sys.stderr,
            )
        else:
            evaluation = evaluate_report(report, truth)
            print(
                f"\nAgainst injected ground truth: precision={evaluation.precision:.3f} "
                f"recall={evaluation.recall:.3f} f1={evaluation.f1:.3f}"
            )
    return EXIT_CLEAN if report.is_empty() else EXIT_VIOLATIONS_FOUND


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="anmat",
        description="ANMAT reproduction: PFD discovery and error detection",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets = subparsers.add_parser("datasets", help="list built-in datasets")
    datasets.set_defaults(handler=_cmd_datasets)

    profile = subparsers.add_parser("profile", help="profile a dataset (Figure 3)")
    _add_common_arguments(profile)
    profile.set_defaults(handler=_cmd_profile)

    discover = subparsers.add_parser("discover", help="discover PFDs (Figure 4)")
    _add_common_arguments(discover)
    _add_execution_arguments(discover)
    discover.set_defaults(handler=_cmd_discover)

    detect = subparsers.add_parser(
        "detect",
        help="detect errors (Figure 5)",
        description=(
            "Discover PFDs, confirm them all, run detection, and print the "
            "violations (Figure 5)."
        ),
        epilog=(
            f"exit codes: {EXIT_CLEAN} = clean data (no violations found), "
            f"{EXIT_VIOLATIONS_FOUND} = violations were found, "
            "2 = usage error"
        ),
    )
    _add_common_arguments(detect)
    _add_execution_arguments(detect)
    detect.add_argument(
        "--strategy",
        default="auto",
        choices=["auto", "scan", "index", "bruteforce"],
        help="detection strategy",
    )
    detect.add_argument(
        "--score",
        action="store_true",
        help="score against injected ground truth (built-in datasets only)",
    )
    detect.set_defaults(handler=_cmd_detect)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
