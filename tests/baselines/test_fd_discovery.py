"""Tests for the TANE-style FD miner."""

import pytest

from repro.baselines.fd_discovery import (
    FdDiscoveryConfig,
    TaneDiscoverer,
    discover_fds,
    g3_error_of_partition,
    refines,
    stripped_partition,
)
from repro.dataset.table import Table


@pytest.fixture
def store_table():
    return Table.from_rows(
        ["store", "city", "state", "manager"],
        [
            ["s1", "Boston", "MA", "ann"],
            ["s2", "Boston", "MA", "bob"],
            ["s3", "Chicago", "IL", "cal"],
            ["s4", "Chicago", "IL", "dan"],
            ["s5", "Springfield", "IL", "eve"],
            ["s6", "Springfield", "MO", "fay"],
        ],
    )


class TestStrippedPartitions:
    def test_partition_drops_singletons(self, store_table):
        partition = stripped_partition(store_table, ["city"])
        sizes = sorted(len(cls) for cls in partition)
        assert sizes == [2, 2, 2]
        assert stripped_partition(store_table, ["store"]) == ()

    def test_refines(self, store_table):
        city_partition = stripped_partition(store_table, ["city"])
        assert refines(city_partition, store_table.column_ref("state")) is False
        boston_chicago = stripped_partition(store_table.head(4), ["city"])
        assert refines(boston_chicago, store_table.head(4).column_ref("state"))

    def test_g3_error_of_partition(self, store_table):
        city_partition = stripped_partition(store_table, ["city"])
        error = g3_error_of_partition(
            city_partition, store_table.column_ref("state"), store_table.n_rows
        )
        assert error == pytest.approx(1 / 6)


class TestExactDiscovery:
    def test_finds_city_to_nothing_but_composite_keys(self, store_table):
        fds = {str(d.fd) for d in discover_fds(store_table)}
        # city does not determine state (Springfield is ambiguous)
        assert "city -> state" not in fds

    def test_finds_exact_single_attribute_fds(self):
        table = Table.from_rows(
            ["zip", "city", "state"],
            [
                ["90001", "Los Angeles", "CA"],
                ["90002", "Los Angeles", "CA"],
                ["60601", "Chicago", "IL"],
                ["60601", "Chicago", "IL"],
            ],
        )
        fds = {str(d.fd) for d in discover_fds(table)}
        assert "zip -> city" in fds
        assert "city -> state" in fds

    def test_minimality_pruning(self):
        table = Table.from_rows(
            ["a", "b", "c"],
            [["1", "x", "p"], ["1", "x", "p"], ["2", "y", "q"], ["3", "y", "q"]],
        )
        fds = {str(d.fd) for d in discover_fds(table)}
        assert "a -> b" in fds
        assert "b -> c" in fds
        # a -> c is implied via a -> b -> c but also holds directly; the
        # important check is that the non-minimal "a, b -> c" is absent
        assert "a, b -> c" not in fds

    def test_unique_rhs_skipped_by_default(self, store_table):
        fds = {str(d.fd) for d in discover_fds(store_table)}
        assert all("-> store" not in fd for fd in fds)
        assert all("-> manager" not in fd for fd in fds)

    def test_max_lhs_size(self, store_table):
        config = FdDiscoveryConfig(max_lhs_size=1)
        fds = discover_fds(store_table, config)
        assert all(len(d.fd.lhs) == 1 for d in fds)


class TestApproximateDiscovery:
    def test_approximate_fd_found_with_error_budget(self, store_table):
        exact = {str(d.fd) for d in discover_fds(store_table)}
        approximate = {
            str(d.fd)
            for d in discover_fds(store_table, FdDiscoveryConfig(max_error=0.2))
        }
        assert "city -> state" not in exact
        assert "city -> state" in approximate

    def test_error_recorded(self, store_table):
        results = discover_fds(store_table, FdDiscoveryConfig(max_error=0.2))
        by_fd = {str(d.fd): d.error for d in results}
        assert by_fd["city -> state"] == pytest.approx(1 / 6)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FdDiscoveryConfig(max_lhs_size=0)
        with pytest.raises(ValueError):
            FdDiscoveryConfig(max_error=1.0)


class TestOnGeneratedData:
    def test_zip_to_city_holds_on_clean_data(self, small_zip_city_state):
        clean = small_zip_city_state.clean_table
        fds = {str(d.fd) for d in TaneDiscoverer().discover(clean)}
        assert "zip -> city" in fds
        assert "zip -> state" in fds
        assert "city -> state" in fds

    def test_dirty_data_breaks_exact_fds(self, small_zip_city_state):
        dirty = small_zip_city_state.table
        fds = {str(d.fd) for d in TaneDiscoverer().discover(dirty)}
        # the injected errors break at least one of the exact dependencies
        assert len(fds) < 3 or "zip -> city" not in fds
