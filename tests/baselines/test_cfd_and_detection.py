"""Tests for constant-CFD discovery and the FD/CFD violation detectors."""

import pytest

from repro.baselines.cfd_discovery import CfdDiscoveryConfig, discover_constant_cfds
from repro.baselines.fd_detection import detect_cfd_violations, detect_fd_violations
from repro.dataset.table import Table
from repro.pfd.fd import FunctionalDependency


@pytest.fixture
def zip_city_table():
    return Table.from_rows(
        ["zip", "city"],
        [
            ["90001", "Los Angeles"],
            ["90001", "Los Angeles"],
            ["90001", "Los Angeles"],
            ["90002", "Los Angeles"],
            ["90002", "Los Angeles"],
            ["90002", "New York"],  # error
            ["60601", "Chicago"],
            ["60601", "Chicago"],
        ],
    )


class TestCfdDiscovery:
    def test_discovers_frequent_value_rules(self, zip_city_table):
        cfds = discover_constant_cfds(zip_city_table, CfdDiscoveryConfig(min_support=2, min_confidence=0.9))
        by_pair = {(c.lhs_attribute, c.rhs_attribute): c for c in cfds}
        assert ("zip", "city") in by_pair
        rules = {r.lhs_value: r.rhs_value for r in by_pair[("zip", "city")].rules}
        assert rules["90001"] == "Los Angeles"
        assert rules["60601"] == "Chicago"
        # 90002 has confidence 0.5 and is rejected
        assert "90002" not in rules

    def test_min_support(self, zip_city_table):
        cfds = discover_constant_cfds(zip_city_table, CfdDiscoveryConfig(min_support=3))
        rules = {
            r.lhs_value
            for c in cfds
            if (c.lhs_attribute, c.rhs_attribute) == ("zip", "city")
            for r in c.rules
        }
        assert rules == {"90001"}

    def test_unique_lhs_columns_are_skipped(self):
        table = Table.from_rows(
            ["row_id", "label"],
            [[f"id{i}", "x"] for i in range(20)],
        )
        cfds = discover_constant_cfds(table)
        assert all(c.lhs_attribute != "row_id" for c in cfds)

    def test_describe(self, zip_city_table):
        cfds = discover_constant_cfds(zip_city_table)
        target = [c for c in cfds if (c.lhs_attribute, c.rhs_attribute) == ("zip", "city")][0]
        assert "zip=" in target.describe()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CfdDiscoveryConfig(min_support=0)
        with pytest.raises(ValueError):
            CfdDiscoveryConfig(min_confidence=0.0)


class TestFdDetection:
    def test_flags_minority_rows_of_violating_groups(self, zip_city_table):
        fd = FunctionalDependency.of("zip", "city")
        report = detect_fd_violations(zip_city_table, [fd])
        assert report.suspect_cells() == {(5, "city")}

    def test_no_violations_on_clean_groups(self):
        table = Table.from_rows(
            ["zip", "city"], [["1", "A"], ["1", "A"], ["2", "B"]]
        )
        report = detect_fd_violations(table, [FunctionalDependency.of("zip", "city")])
        assert report.is_empty()

    def test_unique_lhs_detects_nothing(self, small_phone_state):
        # The key limitation the paper stresses: an FD over unique phone
        # numbers can never flag anything.
        fd = FunctionalDependency.of("phone_number", "state")
        report = detect_fd_violations(small_phone_state.table, [fd])
        assert report.is_empty()

    def test_empty_lhs_values_are_ignored(self):
        table = Table.from_rows(["a", "b"], [["", "x"], ["", "y"], ["k", "z"]])
        report = detect_fd_violations(table, [FunctionalDependency.of("a", "b")])
        assert report.is_empty()


class TestCfdDetection:
    def test_flags_rows_disagreeing_with_rule(self, zip_city_table):
        cfds = discover_constant_cfds(zip_city_table)
        report = detect_cfd_violations(zip_city_table, cfds)
        suspects = report.suspect_cells()
        assert (5, "city") not in suspects  # 90002 never formed a rule
        # the three 90001 rows agree, so they are not flagged
        assert all(row not in (0, 1, 2) for row, _ in suspects)

    def test_detects_injected_error_with_rule_from_clean_value(self):
        table = Table.from_rows(
            ["zip", "city"],
            [["90001", "Los Angeles"]] * 5 + [["90001", "New York"]],
        )
        cfds = discover_constant_cfds(table, CfdDiscoveryConfig(min_confidence=0.8))
        report = detect_cfd_violations(table, cfds)
        assert report.suspect_cells() == {(5, "city")}
