"""Tests for the Auto-Detect-style pattern outlier baseline."""

import pytest

from repro.baselines.pattern_outliers import PatternOutlierConfig, PatternOutlierDetector
from repro.dataset.table import Table


@pytest.fixture
def state_table():
    rows = [["IL"]] * 60 + [["CA"]] * 40 + [["lL"]] + [["Chciago"]]
    return Table(["state"], [sum(rows, [])])


class TestPatternOutliers:
    def test_flags_syntactic_anomalies(self, state_table):
        detector = PatternOutlierDetector(PatternOutlierConfig(max_pattern_ratio=0.05))
        report = detector.detect(state_table)
        flagged_values = {state_table.cell(row, "state") for row, _ in report.suspect_cells()}
        assert flagged_values == {"lL", "Chciago"}

    def test_misses_wrong_but_well_formed_values(self, small_phone_state):
        # Swapped states are valid two-letter codes: the outlier detector
        # cannot see them.  This is the asymmetry E10 demonstrates.
        detector = PatternOutlierDetector()
        report = detector.detect(small_phone_state.table, columns=["state"])
        flagged = report.suspect_cells()
        truth = small_phone_state.error_cells
        assert not (flagged & truth)

    def test_small_columns_are_skipped(self):
        table = Table.from_rows(["x"], [["a"], ["b"], ["###"]])
        report = PatternOutlierDetector().detect(table)
        assert report.is_empty()

    def test_column_selection(self, state_table):
        detector = PatternOutlierDetector(PatternOutlierConfig(max_pattern_ratio=0.05))
        report = detector.detect(state_table, columns=[])
        assert report.is_empty()

    def test_violations_carry_column_as_both_sides(self, state_table):
        detector = PatternOutlierDetector(PatternOutlierConfig(max_pattern_ratio=0.05))
        report = detector.detect(state_table)
        for violation in report:
            assert violation.lhs_attribute == "state"
            assert violation.rhs_attribute == "state"
            assert violation.expected_value is None
