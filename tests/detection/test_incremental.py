"""Tests for incremental violation maintenance under table updates.

The correctness anchor is randomized equivalence: any sequence of
mutations (edits, appends, deletes) applied through or alongside an
:class:`IncrementalDetector` must yield a report whose canonical
violations are identical to a from-scratch ``detect_all`` on the final
table.
"""

import random

import pytest

from repro.datagen import (
    generate_fullname_gender,
    generate_phone_state,
    generate_zip_city_state,
)
from repro.dataset.table import CellEdit, RowAppend, RowDelete, Table
from repro.detection import ErrorDetector, IncrementalDetector
from repro.detection.detector import DetectionStrategy
from repro.discovery import PfdDiscoverer
from repro.errors import DetectionError
from repro.pfd.pfd import PFD


GENERATORS = {
    "zip_city_state": generate_zip_city_state,
    "phone_state": generate_phone_state,
    "fullname_gender": generate_fullname_gender,
}


@pytest.fixture(scope="module")
def rulesets():
    """dataset name → (pristine table, discovered PFDs) for 3 datasets."""
    out = {}
    for name, generate in GENERATORS.items():
        table = generate(n_rows=120, seed=5).table
        out[name] = (table, PfdDiscoverer().discover(table))
    return out


@pytest.fixture
def make_rng():
    """Seeded RNG factory so every randomized sequence is reproducible."""
    return lambda seed: random.Random(seed)


def random_mutation(rng, table: Table, step: int) -> None:
    """Apply one random append/edit/delete to the table in place."""
    columns = table.column_names()
    op = rng.choice(("edit", "edit", "append", "delete"))
    if op == "delete" and table.n_rows <= 2:
        op = "append"
    if op == "edit":
        column = rng.choice(columns)
        # usually merge into an existing value (exercises block merges),
        # sometimes introduce a never-seen one (block splits / new
        # blocks), occasionally an empty string (the adversarial value
        # for RHS grouping and describe())
        roll = rng.random()
        if roll < 0.65:
            value = rng.choice(table.column_ref(column))
        elif roll < 0.9:
            value = f"novel-{step}"
        else:
            value = ""
        table.set_cell(rng.randrange(table.n_rows), column, value)
    elif op == "append":
        table.append_row(
            [rng.choice(table.column_ref(column)) for column in columns]
        )
    else:
        table.delete_row(rng.randrange(table.n_rows))


def assert_equivalent(incremental: IncrementalDetector, pfds, context: str) -> None:
    fresh = incremental.table.copy()
    full = ErrorDetector(fresh).detect_all(pfds)
    got = incremental.report()
    assert got.n_rows == full.n_rows, context
    assert got.canonical_violations() == full.canonical_violations(), context


def assert_all_strategies_equivalent(
    incremental: IncrementalDetector, pfds, context: str
) -> None:
    """Stronger form: the maintained report equals a from-scratch run of
    *every* batch strategy — one emission engine, one answer."""
    fresh = incremental.table.copy()
    got = incremental.report().canonical_violations()
    detector = ErrorDetector(fresh)
    for strategy in (
        DetectionStrategy.SCAN,
        DetectionStrategy.INDEX,
        DetectionStrategy.BRUTEFORCE,
    ):
        full = detector.detect_all(pfds, strategy=strategy)
        assert got == full.canonical_violations(), f"{context} [{strategy}]"


class TestRandomizedEquivalence:
    """Property-style: 70 random mutation sequences × 3 datasets (210
    sequences), each checked against full re-detection at the end."""

    @pytest.mark.parametrize("dataset", sorted(GENERATORS))
    @pytest.mark.parametrize("seed", range(70))
    def test_mutation_sequence_matches_full_redetection(
        self, rulesets, make_rng, dataset, seed
    ):
        pristine, pfds = rulesets[dataset]
        table = pristine.copy()
        rng = make_rng(seed)
        incremental = IncrementalDetector(table, pfds)
        for step in range(8):
            random_mutation(rng, table, step)
        assert_equivalent(incremental, pfds, f"{dataset} seed={seed}")

    @pytest.mark.parametrize("dataset", sorted(GENERATORS))
    def test_equivalence_after_every_single_mutation(
        self, rulesets, make_rng, dataset
    ):
        pristine, pfds = rulesets[dataset]
        table = pristine.copy()
        rng = make_rng(99)
        incremental = IncrementalDetector(table, pfds)
        for step in range(25):
            random_mutation(rng, table, step)
            assert_equivalent(incremental, pfds, f"{dataset} step={step}")

    @pytest.mark.parametrize("dataset", sorted(GENERATORS))
    @pytest.mark.parametrize("seed", range(10))
    def test_mutation_sequence_matches_every_batch_strategy(
        self, rulesets, make_rng, dataset, seed
    ):
        # scan, index, AND bruteforce — all strategies share one emission
        # engine, so the maintained report must equal each of them
        pristine, pfds = rulesets[dataset]
        table = pristine.copy()
        rng = make_rng(1000 + seed)
        incremental = IncrementalDetector(table, pfds)
        for step in range(8):
            random_mutation(rng, table, step)
        assert_all_strategies_equivalent(
            incremental, pfds, f"{dataset} seed={seed}"
        )


class TestMutationAPI:
    @pytest.fixture
    def zip_setup(self, rulesets):
        pristine, pfds = rulesets["zip_city_state"]
        table = pristine.copy()
        return table, pfds, IncrementalDetector(table, pfds)

    def test_initial_report_matches_batch_detector(self, zip_setup):
        table, pfds, incremental = zip_setup
        full = ErrorDetector(table.copy()).detect_all(pfds)
        assert incremental.report().canonical_violations() == full.canonical_violations()

    def test_set_cell_through_detector(self, zip_setup):
        table, pfds, incremental = zip_setup
        incremental.set_cell(0, "city", "Nowhereville")
        assert table.cell(0, "city") == "Nowhereville"
        assert_equivalent(incremental, pfds, "set_cell")

    def test_append_and_delete_through_detector(self, zip_setup):
        table, pfds, incremental = zip_setup
        n = table.n_rows
        row = incremental.append_row(table.row(0))
        assert row == n
        removed = incremental.delete_row(1)
        assert len(removed) == table.n_columns
        assert_equivalent(incremental, pfds, "append+delete")

    def test_repairing_a_suspect_cell_shrinks_the_report(self, zip_setup):
        table, pfds, incremental = zip_setup
        from repro.detection.repair import suggest_repairs

        before = incremental.report()
        suggestion = suggest_repairs(before)[0]
        incremental.set_cell(
            suggestion.row, suggestion.attribute, suggestion.suggested_value
        )
        after = incremental.report()
        assert len(after) < len(before)
        assert_equivalent(incremental, pfds, "repair")

    def test_refresh_catches_up_on_direct_mutations(self, zip_setup):
        table, pfds, incremental = zip_setup
        table.set_cell(3, "city", "Elsewhere")
        table.append_row(table.row(0))
        table.delete_row(2)
        incremental.refresh()
        assert_equivalent(incremental, pfds, "direct mutations")

    def test_rebuild_fallback_when_delta_log_is_exhausted(self, zip_setup):
        from repro.dataset.table import MAX_DELTA_LOG

        table, pfds, incremental = zip_setup
        for step in range(MAX_DELTA_LOG + 10):
            table.set_cell(step % table.n_rows, "city", f"v{step}")
        assert table.deltas_since(0) is None
        assert_equivalent(incremental, pfds, "log exhausted")

    def test_unknown_strategy_rejected(self, zip_setup):
        table, pfds, _ = zip_setup
        with pytest.raises(DetectionError):
            IncrementalDetector(table, pfds, strategy="nope")

    def test_bruteforce_strategy_is_maintained_too(self, zip_setup):
        # bruteforce emission goes through the same shared evaluators as
        # blocking, so its reports can be incrementally maintained as well
        table, pfds, _ = zip_setup
        incremental = IncrementalDetector(
            table, pfds, strategy=DetectionStrategy.BRUTEFORCE
        )
        full = ErrorDetector(table.copy()).detect_all(
            pfds, strategy=DetectionStrategy.BRUTEFORCE
        )
        report = incremental.report()
        assert report.strategy == DetectionStrategy.BRUTEFORCE
        assert report.canonical_violations() == full.canonical_violations()
        incremental.set_cell(0, "city", "Bruteville")
        assert_equivalent(incremental, pfds, "bruteforce edit")

    def test_report_strategy_and_n_rows(self, zip_setup):
        table, pfds, incremental = zip_setup
        report = incremental.report()
        assert report.strategy == DetectionStrategy.AUTO
        assert report.n_rows == table.n_rows


class TestDeltaLog:
    def test_mutations_record_structured_deltas(self):
        table = Table.from_rows(["a", "b"], [["x", "1"], ["y", "2"]])
        table.set_cell(0, "a", "z")
        table.append_row(["w", "3"])
        table.delete_row(1)
        deltas = table.deltas_since(0)
        assert [type(d) for d in deltas] == [CellEdit, RowAppend, RowDelete]
        edit, append, delete = deltas
        assert (edit.row, edit.column, edit.old, edit.new) == (0, "a", "x", "z")
        assert (append.row, append.values) == (2, ("w", "3"))
        assert (delete.row, delete.values) == (1, ("y", "2"))
        assert [d.version for d in deltas] == [1, 2, 3]
        assert table.version == 3

    def test_noop_set_cell_neither_bumps_version_nor_logs(self):
        table = Table.from_rows(["a"], [["x"]])
        table.set_cell(0, "a", "x")
        assert table.version == 0
        assert table.deltas_since(0) == ()

    def test_deltas_since_partial_and_empty(self):
        table = Table.from_rows(["a"], [["x"]])
        table.set_cell(0, "a", "y")
        table.set_cell(0, "a", "z")
        assert table.deltas_since(table.version) == ()
        assert len(table.deltas_since(1)) == 1
        assert table.deltas_since(table.version + 1) is None

    def test_append_row_from_mapping(self):
        table = Table.from_rows(["a", "b"], [["x", "1"]])
        row = table.append_row({"b": "2"})
        assert table.row(row) == ("", "2")
        from repro.errors import TableError

        with pytest.raises(TableError):
            table.append_row({"nope": "v"})
        with pytest.raises(TableError):
            table.append_row(["only-one-value"])
        # a bare string is a sequence of characters — must not shred
        # into per-character cells just because the lengths line up
        with pytest.raises(TableError):
            table.append_row("xy")

    def test_variable_rule_block_merge_and_split(self):
        # Hand-built λ5-style check: editing the zip prefix moves a row
        # between blocks; the violations follow it.
        table = Table.from_rows(
            ["zip", "city"],
            [
                ["90001", "Los Angeles"],
                ["90002", "Los Angeles"],
                ["90003", "Chicago"],  # violates within the 900 block
                ["10001", "New York"],
                ["10002", "New York"],
            ],
        )
        from repro.constrained import constrained_prefix
        from repro.patterns import parse_pattern

        pfd = PFD.variable(
            "zip",
            "city",
            constrained_prefix(3, parse_pattern("\\D{2}"), head=parse_pattern("\\D{3}")),
            name="lambda5",
        )
        incremental = IncrementalDetector(table, [pfd])
        report = incremental.report()
        assert [v.suspect_cell for v in report] == [(2, "city")]
        # the edit moves the odd row into the 100 block, where it is the
        # minority again — the violation follows it with a new witness
        incremental.set_cell(2, "zip", "10003")
        report = incremental.report()
        assert [v.suspect_cell for v in report] == [(2, "city")]
        assert report.violations[0].expected_value == "New York"
        assert_equivalent(incremental, [pfd], "block move")
        # and repairing the city clears everything
        incremental.set_cell(2, "city", "New York")
        assert incremental.report().is_empty()
        assert_equivalent(incremental, [pfd], "repaired")
