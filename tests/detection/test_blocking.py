"""Tests for blocking helpers."""

import random

from repro.constrained.constrained_pattern import ConstrainedPattern
from repro.detection.blocking import (
    block_by_key,
    block_by_projection,
    majority_value,
    renumber_blocks_after_delete,
    split_block_by_rhs,
)


class TestBlockByKey:
    def test_groups_by_key(self):
        values = ["90001", "90002", "60601"]
        blocks = block_by_key(range(3), values, key=lambda v: v[:3])
        assert blocks == {"900": [0, 1], "606": [2]}

    def test_none_keys_are_dropped(self):
        values = ["90001", "bad", "90002"]
        blocks = block_by_key(range(3), values, key=lambda v: v[:3] if v.isdigit() else None)
        assert blocks == {"900": [0, 2]}

    def test_row_subset(self):
        values = ["90001", "90002", "60601"]
        blocks = block_by_key([2], values, key=lambda v: v[:3])
        assert blocks == {"606": [2]}


class TestBlockByProjection:
    def test_zip_prefix_projection(self):
        q = ConstrainedPattern.parse("⟨\\D{3}⟩\\D{2}")
        values = ["90001", "90002", "60601", "banana"]
        blocks = block_by_projection(range(4), values, q)
        assert blocks == {("900",): [0, 1], ("606",): [2]}

    def test_first_name_projection(self):
        from repro.constrained.constrained_pattern import constrained_first_token

        q = constrained_first_token()
        values = ["John Charles", "John Bosco", "Susan Boyle"]
        blocks = block_by_projection(range(3), values, q)
        assert blocks == {("John ",): [0, 1], ("Susan ",): [2]}


class TestBlockSplitting:
    def test_split_block_by_rhs(self):
        rhs = ["LA", "LA", "NY", "LA"]
        groups = split_block_by_rhs([0, 1, 2, 3], rhs)
        assert groups == {"LA": [0, 1, 3], "NY": [2]}

    def test_majority_value(self):
        assert majority_value({"LA": [0, 1, 3], "NY": [2]}) == "LA"

    def test_majority_tie_breaks_lexicographically(self):
        # deterministic: with equal counts the lexicographically larger wins
        assert majority_value({"AA": [0], "ZZ": [1]}) == "ZZ"
        assert majority_value({"B": [0], "A": [1]}) == "B"


def naive_renumber(blocks, deleted_row):
    """The pre-bisect reference implementation: rewrite every row."""
    for rows in blocks.values():
        for i, row in enumerate(rows):
            if row > deleted_row:
                rows[i] = row - 1


class TestRenumberAfterDelete:
    def test_only_the_suffix_is_decremented(self):
        blocks = {"a": [0, 1, 5], "b": [2, 3], "c": [6, 7]}
        renumber_blocks_after_delete(blocks, 3)
        assert blocks == {"a": [0, 1, 4], "b": [2, 3], "c": [5, 6]}

    def test_matches_the_naive_loop_on_random_blocks(self):
        rng = random.Random(17)
        for trial in range(50):
            rows = sorted(rng.sample(range(60), rng.randint(1, 25)))
            blocks = {}
            for row in rows:
                blocks.setdefault(rng.randrange(6), []).append(row)
            deleted = rng.randrange(60)
            expected = {key: list(value) for key, value in blocks.items()}
            naive_renumber(expected, deleted)
            renumber_blocks_after_delete(blocks, deleted)
            assert blocks == expected, f"trial={trial} deleted={deleted}"
