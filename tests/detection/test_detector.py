"""Tests for the error-detection engine."""

import pytest

from repro.constrained.constrained_pattern import constrained_first_token, constrained_prefix
from repro.detection.detector import DetectionStrategy, ErrorDetector
from repro.detection.violation import ViolationKind
from repro.errors import DetectionError
from repro.patterns import parse_pattern
from repro.pfd.pfd import PFD
from repro.pfd.satisfaction import find_tableau_violations


@pytest.fixture
def lambda2():
    return PFD.constant(
        "name", "gender", [{"name": "Susan\\ \\A*", "gender": "F"}], name="lambda2"
    )


@pytest.fixture
def lambda3():
    return PFD.constant(
        "zip", "city", [{"zip": "900\\D{2}", "city": "Los Angeles"}], name="lambda3"
    )


@pytest.fixture
def lambda4():
    return PFD.variable("name", "gender", constrained_first_token(), name="lambda4")


@pytest.fixture
def lambda5():
    return PFD.variable(
        "zip",
        "city",
        constrained_prefix(3, parse_pattern("\\D{2}"), head=parse_pattern("\\D{3}")),
        name="lambda5",
    )


class TestConstantDetection:
    def test_lambda2_flags_r4(self, name_table, lambda2):
        report = ErrorDetector(name_table).detect(lambda2)
        assert len(report) == 1
        violation = report.violations[0]
        assert violation.kind == ViolationKind.CONSTANT
        assert violation.suspect_cell == (3, "gender")
        assert violation.observed_value == "M"
        assert violation.expected_value == "F"

    def test_lambda3_flags_s4(self, zip_table, lambda3):
        report = ErrorDetector(zip_table).detect(lambda3)
        assert report.suspect_cells() == {(3, "city")}

    def test_clean_table_has_no_violations(self, zip_dataset, lambda3):
        report = ErrorDetector(zip_dataset.clean_table).detect(lambda3)
        assert report.is_empty()

    @pytest.mark.parametrize("strategy", [DetectionStrategy.SCAN, DetectionStrategy.INDEX])
    def test_strategies_agree_for_constant_rules(self, zip_table, lambda3, strategy):
        report = ErrorDetector(zip_table).detect(lambda3, strategy=strategy)
        assert report.suspect_cells() == {(3, "city")}


class TestVariableDetection:
    def test_lambda4_flags_r4_pair(self, name_table, lambda4):
        report = ErrorDetector(name_table).detect(lambda4)
        assert len(report) == 1
        violation = report.violations[0]
        assert violation.kind == ViolationKind.VARIABLE
        assert set(violation.rows) == {2, 3}
        assert len(violation.cells) == 4

    def test_lambda4_suspects_minority_value(self, name_table, lambda4):
        # With only two Susan rows the majority tie is broken
        # deterministically, so exactly one RHS cell is suspected.
        report = ErrorDetector(name_table).detect(lambda4)
        assert len(report.suspect_cells()) == 1

    def test_lambda5_flags_s4(self, zip_table, lambda5):
        report = ErrorDetector(zip_table).detect(lambda5)
        assert report.suspect_cells() == {(3, "city")}
        # blocking emits one violation per minority row, not per pair
        assert len(report) == 1

    @pytest.mark.parametrize(
        "strategy",
        [DetectionStrategy.SCAN, DetectionStrategy.INDEX, DetectionStrategy.BRUTEFORCE],
    )
    def test_all_strategies_flag_the_same_suspect_rows(self, zip_table, lambda5, strategy):
        report = ErrorDetector(zip_table).detect(lambda5, strategy=strategy)
        assert 3 in {row for row, _attr in report.suspect_cells()}

    def test_bruteforce_emits_the_same_violations_as_blocking(self, zip_table, lambda5):
        # bruteforce only differs in *enumeration* (all pairs); emission
        # goes through the same shared evaluator, so the violations are
        # identical to the blocking strategies — one per minority row,
        # not one per pair
        brute = ErrorDetector(zip_table).detect(lambda5, strategy=DetectionStrategy.BRUTEFORCE)
        blocked = ErrorDetector(zip_table).detect(lambda5, strategy=DetectionStrategy.INDEX)
        assert len(brute) == 1
        assert brute.canonical_violations() == blocked.canonical_violations()

    def test_bruteforce_comparisons_exceed_blocking(self, small_zip_city_state, lambda5):
        table = small_zip_city_state.table
        brute = ErrorDetector(table).detect(lambda5, strategy=DetectionStrategy.BRUTEFORCE)
        blocked = ErrorDetector(table).detect(lambda5, strategy=DetectionStrategy.INDEX)
        assert brute.comparisons > blocked.comparisons


class TestAgainstReferenceSemantics:
    """The optimized detector must flag the same rows as the reference
    satisfaction checker on the generated datasets."""

    def test_constant_rules_match_reference(self, small_phone_state):
        from repro.discovery.discoverer import PfdDiscoverer

        pfds = PfdDiscoverer().discover(small_phone_state.table)
        detector = ErrorDetector(small_phone_state.table)
        checked = 0
        for pfd in pfds:
            if not pfd.is_constant:
                continue
            checked += 1
            reference = find_tableau_violations(small_phone_state.table, pfd)
            report = detector.detect(pfd)
            reference_rows = {row for row, _rule in reference.constant_violations}
            detected_rows = {row for row, _attr in report.suspect_cells()}
            assert detected_rows == reference_rows, pfd.describe()
        assert checked >= 1

    def test_variable_rules_flag_reference_rows(self, small_fullname_gender, lambda4):
        lambda4_renamed = PFD.variable(
            "full_name", "gender", constrained_first_token(), name="lambda4"
        )
        reference = find_tableau_violations(small_fullname_gender.table, lambda4_renamed)
        report = ErrorDetector(small_fullname_gender.table).detect(lambda4_renamed)
        reference_rows = set(reference.violating_rows)
        detected_rows = {row for row, _attr in report.suspect_cells()}
        # every suspect the engine reports is part of a reference violation
        assert detected_rows <= reference_rows


class TestDetectAll:
    def test_merges_reports(self, zip_table, lambda3, lambda5):
        report = ErrorDetector(zip_table).detect_all([lambda3, lambda5])
        assert report.suspect_cells() == {(3, "city")}
        assert set(report.by_pfd()) == {"lambda3", "lambda5"}

    def test_unknown_strategy_rejected(self, zip_table, lambda3):
        with pytest.raises(DetectionError):
            ErrorDetector(zip_table).detect(lambda3, strategy="nope")

    def test_column_index_is_cached(self, zip_table):
        detector = ErrorDetector(zip_table)
        assert detector.column_index("zip") is detector.column_index("zip")
