"""Tests for repair suggestions."""

import pytest

from repro.detection.detector import ErrorDetector
from repro.detection.repair import apply_repairs, suggest_repairs
from repro.detection.violation import Violation, ViolationKind, ViolationReport
from repro.pfd.pfd import PFD


@pytest.fixture
def lambda3():
    return PFD.constant(
        "zip", "city", [{"zip": "900\\D{2}", "city": "Los Angeles"}], name="lambda3"
    )


class TestSuggestRepairs:
    def test_constant_violation_suggests_tableau_constant(self, zip_table, lambda3):
        report = ErrorDetector(zip_table).detect(lambda3)
        suggestions = suggest_repairs(report)
        assert len(suggestions) == 1
        suggestion = suggestions[0]
        assert suggestion.row == 3
        assert suggestion.attribute == "city"
        assert suggestion.current_value == "New York"
        assert suggestion.suggested_value == "Los Angeles"
        assert suggestion.confidence == 1.0
        assert "lambda3" in suggestion.describe()

    def test_violations_without_expectation_are_skipped(self):
        report = ViolationReport(n_rows=5)
        report.add(
            Violation(
                pfd_name="outlier",
                lhs_attribute="x",
                rhs_attribute="x",
                kind=ViolationKind.CONSTANT,
                rule_index=0,
                rule_text="x",
                rows=(0,),
                observed_value="??",
                expected_value=None,
            )
        )
        assert suggest_repairs(report) == []

    def test_two_way_tie_first_seen_wins(self):
        # Regression: the winner used to be picked lexicographically
        # ("Boston" over "Austin") instead of honoring first-seen order,
        # and the suggestion was attributed to violations[0] even when
        # that violation voted for a losing value.
        report = ViolationReport(n_rows=5)
        for pfd_name, expected in (("psi-austin", "Austin"), ("psi-boston", "Boston")):
            report.add(
                Violation(
                    pfd_name=pfd_name,
                    lhs_attribute="zip",
                    rhs_attribute="city",
                    kind=ViolationKind.CONSTANT,
                    rule_index=0,
                    rule_text="r",
                    rows=(0,),
                    observed_value="??",
                    expected_value=expected,
                )
            )
        suggestions = suggest_repairs(report)
        assert len(suggestions) == 1
        assert suggestions[0].suggested_value == "Austin"
        assert suggestions[0].pfd_name == "psi-austin"
        assert suggestions[0].confidence == pytest.approx(0.5)

    def test_winner_attribution_names_an_actual_voter(self):
        # One early vote for "SF", two later votes for "LA": the winning
        # suggestion must carry a pfd that voted for "LA".
        report = ViolationReport(n_rows=5)
        for pfd_name, expected in (("psi-sf", "SF"), ("psi-la", "LA"), ("psi-la2", "LA")):
            report.add(
                Violation(
                    pfd_name=pfd_name,
                    lhs_attribute="zip",
                    rhs_attribute="city",
                    kind=ViolationKind.VARIABLE,
                    rule_index=0,
                    rule_text="r",
                    rows=(0, 1),
                    observed_value="??",
                    expected_value=expected,
                )
            )
        suggestions = suggest_repairs(report)
        assert len(suggestions) == 1
        assert suggestions[0].suggested_value == "LA"
        assert suggestions[0].pfd_name == "psi-la"

    def test_majority_vote_across_conflicting_violations(self):
        report = ViolationReport(n_rows=5)
        for expected in ("LA", "LA", "SF"):
            report.add(
                Violation(
                    pfd_name="psi",
                    lhs_attribute="zip",
                    rhs_attribute="city",
                    kind=ViolationKind.VARIABLE,
                    rule_index=0,
                    rule_text="r",
                    rows=(0, 1),
                    observed_value="NY",
                    expected_value=expected,
                )
            )
        suggestions = suggest_repairs(report)
        assert len(suggestions) == 1
        assert suggestions[0].suggested_value == "LA"
        assert suggestions[0].confidence == pytest.approx(2 / 3)


class TestApplyRepairs:
    def test_applies_to_a_copy(self, zip_table, lambda3, zip_dataset):
        report = ErrorDetector(zip_table).detect(lambda3)
        repaired = apply_repairs(zip_table, suggest_repairs(report))
        assert repaired.cell(3, "city") == "Los Angeles"
        # the original dirty table is untouched
        assert zip_table.cell(3, "city") == "New York"
        # the repaired table equals the clean ground truth
        assert repaired == zip_dataset.clean_table

    def test_confidence_threshold(self, zip_table, lambda3):
        report = ErrorDetector(zip_table).detect(lambda3)
        untouched = apply_repairs(zip_table, suggest_repairs(report), min_confidence=1.1)
        assert untouched.cell(3, "city") == "New York"
