"""Tests for the per-column pattern index."""

import pytest

from repro.constrained.constrained_pattern import ConstrainedPattern
from repro.detection.index import PatternColumnIndex
from repro.patterns import parse_pattern


@pytest.fixture
def zip_index():
    values = ["90001", "90002", "60601", "60601", "10001", "banana"]
    return PatternColumnIndex(values)


class TestLookups:
    def test_matching_rows_by_pattern(self, zip_index):
        rows = zip_index.matching_rows(parse_pattern("900\\D{2}"))
        assert rows == [0, 1]

    def test_matching_rows_duplicated_values(self, zip_index):
        rows = zip_index.matching_rows(parse_pattern("606\\D{2}"))
        assert rows == [2, 3]

    def test_matching_constant(self, zip_index):
        assert zip_index.matching_constant("60601") == (2, 3)
        assert zip_index.matching_constant("nope") == ()

    def test_constrained_pattern_lookup(self, zip_index):
        q = ConstrainedPattern.parse("⟨\\D{3}⟩\\D{2}")
        rows = zip_index.matching_rows(q)
        assert rows == [0, 1, 2, 3, 4]

    def test_matching_values(self, zip_index):
        values = zip_index.matching_values(parse_pattern("\\D{5}"))
        assert set(values) == {"90001", "90002", "60601", "10001"}

    def test_statistics(self, zip_index):
        assert zip_index.n_rows == 6
        assert zip_index.n_distinct == 5
        assert zip_index.rows_of_value("90001") == (0,)

    def test_rows_of_value_returns_shared_tuple_not_copy(self, zip_index):
        """The row list is immutable and handed out by reference."""
        first = zip_index.rows_of_value("60601")
        second = zip_index.rows_of_value("60601")
        assert first is second
        assert isinstance(first, tuple)
        assert zip_index.matching_constant("60601") is first


class TestPrefixAcceleration:
    def test_prefix_narrowing_tests_fewer_candidates(self, zip_index):
        zip_index.matching_rows(parse_pattern("900\\D{2}"))
        with_prefix = zip_index.last_candidates_tested
        zip_index.matching_rows(parse_pattern("\\D{5}"))
        without_prefix = zip_index.last_candidates_tested
        assert with_prefix < without_prefix
        assert with_prefix == 2  # only the two values starting with 900

    def test_prefix_narrowing_is_correct_on_boundaries(self):
        index = PatternColumnIndex(["899", "900", "9000", "901", "91"])
        rows = index.matching_rows(parse_pattern("900\\D*"))
        assert rows == [1, 2]

    def test_constrained_pattern_uses_first_segment_prefix(self):
        values = [f"850{i:07d}" for i in range(5)] + [f"607{i:07d}" for i in range(5)]
        index = PatternColumnIndex(values)
        q = ConstrainedPattern.parse("⟨850⟩\\D{7}")
        index.matching_rows(q)
        assert index.last_candidates_tested == 5

    def test_empty_column(self):
        index = PatternColumnIndex([])
        assert index.matching_rows(parse_pattern("\\D*")) == []
        assert index.n_distinct == 0
