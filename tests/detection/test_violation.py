"""Tests for the violation model."""

from repro.detection.violation import Violation, ViolationKind, ViolationReport


def make_violation(row=0, rhs="city", pfd="psi1", observed="NY", expected="LA", rule=0):
    return Violation(
        pfd_name=pfd,
        lhs_attribute="zip",
        rhs_attribute=rhs,
        kind=ViolationKind.CONSTANT,
        rule_index=rule,
        rule_text="zip=900\\D{2}, city=LA",
        rows=(row,),
        observed_value=observed,
        expected_value=expected,
    )


class TestViolation:
    def test_describe_mentions_expectation(self):
        violation = make_violation()
        text = violation.describe()
        assert "psi1" in text
        assert "'LA'" in text
        assert "'NY'" in text

    def test_describe_without_expectation(self):
        violation = make_violation(expected=None)
        assert "expected" not in violation.describe()

    def test_describe_with_empty_string_expectation(self):
        # regression: a truthiness check used to hide the expectation when
        # a constant rule's RHS constant is the empty string
        violation = make_violation(expected="")
        assert "(expected '')" in violation.describe()


class TestViolationReport:
    def test_add_and_len(self):
        report = ViolationReport(n_rows=10)
        report.add(make_violation(0))
        report.extend([make_violation(1), make_violation(2)])
        assert len(report) == 3
        assert not report.is_empty()

    def test_suspect_cells_and_rows(self):
        report = ViolationReport(n_rows=10)
        report.add(make_violation(3))
        report.add(make_violation(3))  # duplicate cell
        report.add(make_violation(7, rhs="state"))
        assert report.suspect_cells() == {(3, "city"), (7, "state")}
        assert report.suspect_rows() == [3, 7]

    def test_involved_cells_include_lhs(self):
        report = ViolationReport(n_rows=10)
        report.add(make_violation(3))
        assert (3, "zip") in report.involved_cells()

    def test_by_pfd_and_by_attribute(self):
        report = ViolationReport(n_rows=10)
        report.add(make_violation(0, pfd="psi1"))
        report.add(make_violation(1, pfd="psi2", rhs="state"))
        assert set(report.by_pfd()) == {"psi1", "psi2"}
        assert set(report.by_attribute()) == {"city", "state"}

    def test_violation_ratio(self):
        report = ViolationReport(n_rows=10)
        report.add(make_violation(0))
        report.add(make_violation(1))
        assert report.violation_ratio() == 0.2
        assert ViolationReport(n_rows=0).violation_ratio() == 0.0

    def test_merged_with_deduplicates(self):
        left = ViolationReport(n_rows=10, comparisons=5)
        right = ViolationReport(n_rows=10, comparisons=7)
        shared = make_violation(1)
        left.add(shared)
        right.add(make_violation(1))
        right.add(make_violation(2))
        merged = left.merged_with(right)
        assert len(merged) == 2
        assert merged.comparisons == 12
