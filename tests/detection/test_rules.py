"""Tests for the shared rule-evaluation engine.

Every execution strategy — scan, index, bruteforce, and incremental
maintenance — emits violations through the evaluators in
:mod:`repro.detection.rules`.  The adversarial suite here drives the
cases where the two historical implementations were most likely to
drift: majority ties inside blocks, empty-string RHS values, and edit
sequences that shrink a block below two rows and regrow it, asserting
``canonical_violations()`` equality across all four paths.
"""

import pytest

from repro.constrained import constrained_prefix
from repro.dataset.table import Table
from repro.detection import ErrorDetector, IncrementalDetector
from repro.detection.detector import DetectionStrategy
from repro.detection.rules import (
    ConstantRuleEvaluator,
    VariableRuleEvaluator,
    as_constrained,
    build_rule_evaluators,
    elect_expected_value,
    make_rule_evaluator,
    shift_violation_after_delete,
)
from repro.detection.violation import ViolationReport
from repro.errors import DetectionError
from repro.patterns import parse_pattern
from repro.perf.memo import MatchMemo
from repro.pfd.pfd import PFD
from repro.pfd.tableau import WILDCARD


BATCH_STRATEGIES = (
    DetectionStrategy.SCAN,
    DetectionStrategy.INDEX,
    DetectionStrategy.BRUTEFORCE,
)


def zip_city_pfd() -> PFD:
    """λ5-style variable rule: 3-digit zip prefix determines the city."""
    return PFD.variable(
        "zip",
        "city",
        constrained_prefix(3, parse_pattern("\\D{2}"), head=parse_pattern("\\D{3}")),
        name="lambda5",
    )


def assert_all_paths_agree(table: Table, pfds, context: str):
    """scan == index == bruteforce == incremental, canonically; returns
    the agreed canonical violation list for further assertions."""
    reference = None
    for strategy in BATCH_STRATEGIES:
        report = ErrorDetector(table).detect_all(pfds, strategy=strategy)
        canonical = report.canonical_violations()
        if reference is None:
            reference = canonical
        else:
            assert canonical == reference, f"{context}: {strategy} diverged"
    incremental = IncrementalDetector(table.copy(), pfds)
    assert incremental.report().canonical_violations() == reference, (
        f"{context}: incremental diverged"
    )
    return reference


class TestEvaluatorFactory:
    def test_dispatch_on_rhs_cell(self):
        constant = PFD.constant(
            "zip", "city", [{"zip": "900\\D{2}", "city": "LA"}], name="c"
        )
        variable = zip_city_pfd()
        evaluators = build_rule_evaluators(constant)
        assert len(evaluators) == 1
        assert isinstance(evaluators[0], ConstantRuleEvaluator)
        assert isinstance(
            make_rule_evaluator(variable, 0, variable.tableau[0]),
            VariableRuleEvaluator,
        )

    def test_as_constrained_rejects_wildcards(self):
        with pytest.raises(DetectionError):
            as_constrained(WILDCARD)


class TestConstantRuleEvaluator:
    @pytest.fixture
    def evaluator(self):
        pfd = PFD.constant(
            "zip", "city", [{"zip": "900\\D{2}", "city": "LA"}], name="c"
        )
        return make_rule_evaluator(pfd, 0, pfd.tableau[0])

    def test_emit_full_counts_comparisons_and_flags_mismatches(self, evaluator):
        memo = MatchMemo()
        report = ViolationReport()
        violations = list(
            evaluator.emit_full([0, 2], ["LA", "??", "NY"], memo, report)
        )
        assert report.comparisons == 2
        assert [v.suspect_cell for v in violations] == [(2, "city")]
        assert violations[0].expected_value == "LA"
        assert violations[0].observed_value == "NY"

    def test_incremental_hooks_mirror_emit_full(self, evaluator):
        memo = MatchMemo()
        evaluator.seed_full([0, 1], ["NY", "LA"], memo)
        assert sorted(v.rows[0] for v in evaluator.emit()) == [0]
        evaluator.reevaluate_row(memo, 0, "90011", "LA")  # repaired
        assert list(evaluator.emit()) == []
        evaluator.append_row(memo, 2, "90012", "SF")
        evaluator.append_row(memo, 3, "10001", "SF")  # LHS does not match
        assert [v.rows[0] for v in evaluator.emit()] == [2]
        evaluator.delete_row(0)
        assert [v.rows[0] for v in evaluator.emit()] == [1]


class TestVariableRuleEvaluator:
    @pytest.fixture
    def evaluator(self):
        pfd = zip_city_pfd()
        return make_rule_evaluator(pfd, 0, pfd.tableau[0])

    def test_majority_witness_and_suspects(self, evaluator):
        rhs = ["LA", "LA", "NY"]
        violations = evaluator.block_violations_for([0, 1, 2], rhs)
        assert [v.suspect_cell for v in violations] == [(2, "city")]
        assert violations[0].rows == (0, 2)  # witness = first majority row
        assert violations[0].expected_value == "LA"

    def test_tie_breaks_lexicographically(self, evaluator):
        # equal counts: the lexicographically larger RHS value wins, so
        # the rows holding the smaller one are the suspects
        violations = evaluator.block_violations_for([0, 1], ["AA", "ZZ"])
        assert [v.suspect_cell for v in violations] == [(0, "city")]
        assert violations[0].expected_value == "ZZ"

    def test_small_and_unanimous_blocks_emit_nothing(self, evaluator):
        assert evaluator.block_violations_for([0], ["LA"]) == []
        assert evaluator.block_violations_for([0, 1], ["LA", "LA"]) == []

    def test_empty_string_rhs_is_a_first_class_value(self, evaluator):
        violations = evaluator.block_violations_for([0, 1, 2], ["", "", "LA"])
        assert [v.suspect_cell for v in violations] == [(2, "city")]
        assert violations[0].expected_value == ""
        assert "expected ''" in violations[0].describe()


class TestElectExpectedValue:
    def test_majority_wins_with_confidence(self):
        detector_report = ErrorDetector(
            Table.from_rows(
                ["zip", "city"],
                [["90001", "LA"], ["90002", "LA"], ["90003", "NY"]],
            )
        ).detect(zip_city_pfd())
        violations = list(detector_report)
        winner, backer, confidence = elect_expected_value(violations)
        assert winner == "LA"
        assert backer in violations
        assert confidence == 1.0

    def test_tie_keeps_first_seen_and_attributes_a_voter(self):
        report = ErrorDetector(
            Table.from_rows(["zip", "city"], [["90001", "ZZ"], ["90002", "AA"]])
        ).detect(zip_city_pfd())
        # one violation: AA row suspected, expected ZZ
        winner, backer, confidence = elect_expected_value(list(report))
        assert winner == "ZZ"
        assert backer.expected_value == "ZZ"
        assert confidence == 1.0


class TestShiftAfterDelete:
    def test_rows_cells_and_suspect_shift_together(self):
        report = ErrorDetector(
            Table.from_rows(
                ["zip", "city"],
                [["90001", "LA"], ["90002", "LA"], ["90003", "NY"]],
            )
        ).detect(zip_city_pfd())
        violation = report.violations[0]
        shifted = shift_violation_after_delete(violation, 1)
        assert shifted.rows == (0, 1)
        assert shifted.suspect_cell == (1, "city")
        assert (1, "zip") in shifted.cells


class TestAdversarialEquivalence:
    """Batch (scan/index/bruteforce) and incremental must agree on the
    cases where duplicated emitters historically drift."""

    def test_two_way_majority_tie(self):
        table = Table.from_rows(
            ["zip", "city"], [["90001", "LA"], ["90002", "NY"]]
        )
        canonical = assert_all_paths_agree(table, [zip_city_pfd()], "2-way tie")
        assert [v.suspect_cell for v in canonical] == [(0, "city")]
        assert canonical[0].expected_value == "NY"  # lexicographic tie-break

    def test_multi_way_tie_inside_a_block(self):
        table = Table.from_rows(
            ["zip", "city"],
            [
                ["90001", "LA"],
                ["90002", "NY"],
                ["90003", "LA"],
                ["90004", "NY"],
                ["90005", "Chicago"],
            ],
        )
        canonical = assert_all_paths_agree(table, [zip_city_pfd()], "multi-way tie")
        # NY wins the LA/NY tie; LA rows and the Chicago row are suspects
        assert {v.suspect_cell for v in canonical} == {
            (0, "city"), (2, "city"), (4, "city"),
        }
        assert all(v.expected_value == "NY" for v in canonical)

    def test_empty_string_rhs_values(self):
        table = Table.from_rows(
            ["zip", "city"],
            [
                ["90001", ""],
                ["90002", ""],
                ["90003", "LA"],
                ["10001", "NY"],
                ["10002", ""],
            ],
        )
        canonical = assert_all_paths_agree(table, [zip_city_pfd()], "empty RHS")
        by_suspect = {v.suspect_cell: v for v in canonical}
        # 900 block: "" is the majority, the LA row is the suspect
        assert by_suspect[(2, "city")].expected_value == ""
        # 100 block: NY/"" tie breaks to "NY" (lexicographically larger)
        assert by_suspect[(4, "city")].expected_value == "NY"

    def test_constant_rule_with_empty_string_rhs_constant(self):
        pfd = PFD.constant(
            "zip", "note", [{"zip": "900\\D{2}", "note": ""}], name="blank-note"
        )
        table = Table.from_rows(
            ["zip", "note"],
            [["90001", ""], ["90002", "junk"], ["10001", "junk"]],
        )
        canonical = assert_all_paths_agree(table, [pfd], "empty RHS constant")
        assert [v.suspect_cell for v in canonical] == [(1, "note")]
        assert canonical[0].expected_value == ""
        assert "expected ''" in canonical[0].describe()

    def test_block_shrinks_below_two_rows_and_regrows(self):
        table = Table.from_rows(
            ["zip", "city"],
            [["10001", "NY"], ["10002", "NY"], ["10003", "SF"]],
        )
        pfds = [zip_city_pfd()]
        incremental = IncrementalDetector(table, pfds)

        def check(context):
            batch = assert_all_paths_agree(table.copy(), pfds, context)
            assert incremental.report().canonical_violations() == batch, context

        check("initial")
        incremental.delete_row(0)  # NY/SF tie now
        check("after first delete")
        incremental.delete_row(0)  # single row — block below 2, no violations
        assert incremental.report().is_empty()
        check("block of one")
        incremental.delete_row(0)  # block vanishes entirely
        assert incremental.report().is_empty()
        check("empty block")
        for zip_code, city in (
            ("10004", "NY"), ("10005", "NY"), ("10006", "SF"),
        ):
            incremental.append_row([zip_code, city])
        check("regrown")

    def test_edit_moves_rows_out_of_a_block_and_back(self):
        table = Table.from_rows(
            ["zip", "city"],
            [["90001", "LA"], ["90002", "LA"], ["90003", "NY"], ["10001", "SF"]],
        )
        pfds = [zip_city_pfd()]
        incremental = IncrementalDetector(table, pfds)

        def check(context):
            batch = assert_all_paths_agree(table.copy(), pfds, context)
            assert incremental.report().canonical_violations() == batch, context

        check("initial")
        incremental.set_cell(0, "zip", "10002")  # 900 block shrinks to 2 rows
        check("shrunk to two")
        incremental.set_cell(1, "zip", "10003")  # 900 block shrinks to 1 row
        check("shrunk to one")
        incremental.set_cell(1, "zip", "90002")  # and regrows
        check("regrown")
        incremental.set_cell(2, "city", "")  # empty string lands mid-loop
        check("empty value edit")
