"""Shared fixtures: the paper's running-example tables and small synthetic
datasets reused across the test suite."""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help=(
            "rewrite the golden snapshot files under tests/golden/ from the "
            "current behaviour instead of comparing against them"
        ),
    )

from repro.datagen import (
    build_dataset,
    generate_fullname_gender,
    generate_phone_state,
    generate_zip_city_state,
    name_table_d1,
    zip_table_d2,
)
from repro.dataset import Table


@pytest.fixture
def name_table() -> Table:
    """Table 1 of the paper (dirty: r4[gender] is wrong)."""
    return name_table_d1().table


@pytest.fixture
def name_dataset():
    return name_table_d1()


@pytest.fixture
def zip_table() -> Table:
    """Table 2 of the paper (dirty: s4[city] is wrong)."""
    return zip_table_d2().table


@pytest.fixture
def zip_dataset():
    return zip_table_d2()


@pytest.fixture(scope="session")
def small_zip_city_state():
    """A 400-row zip/city/state dataset with injected errors."""
    return generate_zip_city_state(n_rows=400, seed=5)


@pytest.fixture(scope="session")
def small_phone_state():
    """A 400-row phone/state dataset with injected errors."""
    return generate_phone_state(n_rows=400, seed=5)


@pytest.fixture(scope="session")
def small_fullname_gender():
    """A 400-row full-name/gender dataset with injected errors."""
    return generate_fullname_gender(n_rows=400, seed=5)


@pytest.fixture
def mixed_table() -> Table:
    """A small heterogeneous table used by dataset-layer tests."""
    return Table.from_rows(
        ["id", "name", "age", "city"],
        [
            ["1", "Alice Smith", "34", "Boston"],
            ["2", "Bob Jones", "28", "Boston"],
            ["3", "Carol White", "45", "Chicago"],
            ["4", "Dan Brown", "", "Chicago"],
            ["5", "Eve Black", "52", "Seattle"],
        ],
    )
