"""Tests for pattern tableaux."""

import pytest

from repro.constrained.constrained_pattern import ConstrainedPattern
from repro.errors import ConstraintError
from repro.patterns import parse_pattern
from repro.pfd.tableau import (
    PatternTableau,
    TableauRow,
    WILDCARD,
    Wildcard,
    cell_is_constant,
    cell_matches,
    cell_to_text,
)


class TestWildcard:
    def test_singleton(self):
        assert Wildcard() is WILDCARD
        assert str(WILDCARD) == "⊥"


class TestCellHelpers:
    def test_wildcard_matches_everything(self):
        assert cell_matches(WILDCARD, "anything")
        assert cell_matches(WILDCARD, "")

    def test_constant_matches_exact_value(self):
        assert cell_matches("Los Angeles", "Los Angeles")
        assert not cell_matches("Los Angeles", "LA")

    def test_pattern_cell(self):
        assert cell_matches(parse_pattern("900\\D{2}"), "90001")
        assert not cell_matches(parse_pattern("900\\D{2}"), "60601")

    def test_constrained_pattern_cell(self):
        q = ConstrainedPattern.parse("⟨\\D{3}⟩\\D{2}")
        assert cell_matches(q, "90001")
        assert not cell_matches(q, "9000")

    def test_unsupported_cell_type(self):
        with pytest.raises(ConstraintError):
            cell_matches(42, "x")

    def test_cell_to_text(self):
        assert cell_to_text(WILDCARD) == "⊥"
        assert cell_to_text("CA") == "CA"
        assert cell_to_text(parse_pattern("\\D{5}")) == "\\D{5}"

    def test_cell_is_constant(self):
        assert cell_is_constant("CA")
        assert cell_is_constant(parse_pattern("\\D{5}"))
        assert not cell_is_constant(WILDCARD)


class TestTableauRow:
    def test_of_and_accessors(self):
        row = TableauRow.of({"zip": parse_pattern("900\\D{2}"), "city": "Los Angeles"})
        assert row.attributes() == ["zip", "city"]
        assert row.cell("city") == "Los Angeles"
        with pytest.raises(ConstraintError):
            row.cell("nope")

    def test_matches_tuple(self):
        row = TableauRow.of({"zip": parse_pattern("900\\D{2}"), "city": "Los Angeles"})
        assert row.matches_tuple({"zip": "90001", "city": "Los Angeles"})
        assert not row.matches_tuple({"zip": "90001", "city": "New York"})
        # restricting to a subset of attributes
        assert row.matches_tuple({"zip": "90001", "city": "New York"}, attributes=["zip"])

    def test_render(self):
        row = TableauRow.of({"zip": parse_pattern("900\\D{2}"), "city": WILDCARD})
        assert row.render() == "zip=900\\D{2}, city=⊥"


class TestPatternTableau:
    def test_requires_attributes(self):
        with pytest.raises(ConstraintError):
            PatternTableau([])

    def test_add_row_fills_missing_with_wildcard(self):
        tableau = PatternTableau(["zip", "city"])
        row = tableau.add_row({"zip": parse_pattern("900\\D{2}")})
        assert isinstance(row.cell("city"), Wildcard)

    def test_add_row_rejects_unknown_attributes(self):
        tableau = PatternTableau(["zip"])
        with pytest.raises(ConstraintError):
            tableau.add_row({"city": "LA"})

    def test_len_iter_getitem(self):
        tableau = PatternTableau(["zip", "city"])
        tableau.add_row({"zip": parse_pattern("900\\D{2}"), "city": "Los Angeles"})
        tableau.add_row({"zip": parse_pattern("606\\D{2}"), "city": "Chicago"})
        assert len(tableau) == 2
        assert tableau[0].cell("city") == "Los Angeles"
        assert [row.cell("city") for row in tableau] == ["Los Angeles", "Chicago"]

    def test_matching_rows(self):
        tableau = PatternTableau(["zip", "city"])
        tableau.add_row({"zip": parse_pattern("900\\D{2}"), "city": "Los Angeles"})
        tableau.add_row({"zip": parse_pattern("606\\D{2}"), "city": "Chicago"})
        matches = tableau.matching_rows({"zip": "60601", "city": "Chicago"})
        assert matches == [1]
        lhs_only = tableau.matching_rows({"zip": "60601", "city": "WRONG"}, attributes=["zip"])
        assert lhs_only == [1]

    def test_render_contains_all_rows(self):
        tableau = PatternTableau(["zip", "city"])
        tableau.add_row({"zip": parse_pattern("900\\D{2}"), "city": "Los Angeles"})
        text = tableau.render()
        assert "zip | city" in text
        assert "900\\D{2}" in text

    def test_equality(self):
        left = PatternTableau(["a"], [TableauRow.of({"a": "x"})])
        right = PatternTableau(["a"], [TableauRow.of({"a": "x"})])
        assert left == right
        right.add_row({"a": "y"})
        assert left != right
