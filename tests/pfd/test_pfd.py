"""Tests for the PFD class and the paper's λ1–λ5 definitions."""

import pytest

from repro.constrained.constrained_pattern import (
    ConstrainedPattern,
    constrained_first_token,
    constrained_prefix,
)
from repro.errors import ConstraintError
from repro.patterns import parse_pattern
from repro.pfd.fd import EmbeddedFD
from repro.pfd.pfd import PFD, PfdKind
from repro.pfd.tableau import PatternTableau, WILDCARD


def lambda1() -> PFD:
    return PFD.constant(
        "name", "gender", [{"name": "John\\ \\A*", "gender": "M"}], name="lambda1", relation="Name"
    )


def lambda3() -> PFD:
    return PFD.constant(
        "zip", "city", [{"zip": "900\\D{2}", "city": "Los Angeles"}], name="lambda3", relation="Zip"
    )


def lambda4() -> PFD:
    return PFD.variable("name", "gender", constrained_first_token(), name="lambda4", relation="Name")


def lambda5() -> PFD:
    return PFD.variable(
        "zip",
        "city",
        constrained_prefix(3, parse_pattern("\\D{2}"), head=parse_pattern("\\D{3}")),
        name="lambda5",
        relation="Zip",
    )


class TestConstruction:
    def test_constant_factory(self):
        pfd = lambda3()
        assert pfd.lhs_attribute == "zip"
        assert pfd.rhs_attribute == "city"
        assert pfd.kind is PfdKind.CONSTANT
        assert pfd.is_constant
        assert len(pfd.tableau) == 1

    def test_variable_factory(self):
        pfd = lambda5()
        assert pfd.kind is PfdKind.VARIABLE
        assert pfd.is_variable
        assert len(pfd.variable_rules()) == 1
        assert pfd.constant_rules() == []

    def test_mixed_kind(self):
        pfd = lambda3()
        pfd.add_rule({"zip": parse_pattern("606\\D{2}"), "city": WILDCARD})
        assert pfd.kind is PfdKind.MIXED
        assert not pfd.is_constant
        assert not pfd.is_variable

    def test_empty_tableau_defaults_to_constant(self):
        pfd = PFD(EmbeddedFD.between("a", "b"))
        assert pfd.kind is PfdKind.CONSTANT

    def test_tableau_must_cover_fd_attributes(self):
        with pytest.raises(ConstraintError):
            PFD(EmbeddedFD.between("a", "b"), PatternTableau(["a"]))

    def test_lhs_strings_are_parsed_as_patterns(self):
        pfd = PFD.constant("zip", "city", [{"zip": "900\\D{2}", "city": "Los Angeles"}])
        lhs_cell = pfd.lhs_cell_of(pfd.tableau[0])
        assert lhs_cell.matches("90001")

    def test_constrained_lhs_strings_are_parsed(self):
        pfd = PFD.constant("zip", "city")
        pfd.add_rule({"zip": "⟨\\D{3}⟩\\D{2}", "city": WILDCARD})
        assert isinstance(pfd.lhs_cell_of(pfd.tableau[0]), ConstrainedPattern)

    def test_rhs_strings_stay_constants(self):
        pfd = lambda3()
        assert pfd.rhs_cell_of(pfd.tableau[0]) == "Los Angeles"


class TestCoverage:
    def test_coverage_counts_matching_lhs_values(self):
        pfd = lambda3()
        values = ["90001", "90002", "60601", "90088"]
        assert pfd.coverage(values) == pytest.approx(0.75)

    def test_coverage_with_constrained_pattern(self):
        pfd = lambda5()
        assert pfd.coverage(["90001", "60601", "bad"]) == pytest.approx(2 / 3)

    def test_coverage_empty_values(self):
        assert lambda3().coverage([]) == 0.0

    def test_wildcard_lhs_covers_everything(self):
        pfd = PFD.constant("a", "b")
        pfd.add_rule({"a": WILDCARD, "b": "x"})
        assert pfd.coverage(["1", "2"]) == 1.0


class TestDescribe:
    def test_lambda_notation_constant(self):
        text = lambda3().describe()
        assert "lambda3" in text
        assert "[zip = 900\\D{2}] → [city = Los Angeles]" in text

    def test_lambda_notation_variable(self):
        text = lambda4().describe()
        assert "[gender]" in text
        assert "gender =" not in text

    def test_empty_tableau_description(self):
        pfd = PFD(EmbeddedFD.between("a", "b"), relation="R")
        assert "[a] → [b]" in pfd.describe()


class TestSerialization:
    @pytest.mark.parametrize("factory", [lambda1, lambda3, lambda4, lambda5])
    def test_round_trip(self, factory):
        original = factory()
        restored = PFD.from_dict(original.to_dict())
        assert restored.name == original.name
        assert restored.lhs_attribute == original.lhs_attribute
        assert restored.rhs_attribute == original.rhs_attribute
        assert restored.kind == original.kind
        assert len(restored.tableau) == len(original.tableau)
        # cells render identically after the round trip
        for left, right in zip(original.tableau, restored.tableau):
            assert left.render() == right.render()

    def test_constant_cells_survive_round_trip(self):
        restored = PFD.from_dict(lambda3().to_dict())
        assert restored.rhs_cell_of(restored.tableau[0]) == "Los Angeles"
