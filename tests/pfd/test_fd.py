"""Tests for functional dependencies and embedded FDs."""

import pytest

from repro.dataset.table import Table
from repro.errors import ConstraintError
from repro.pfd.fd import EmbeddedFD, FunctionalDependency


@pytest.fixture
def city_table():
    return Table.from_rows(
        ["zip", "city", "state"],
        [
            ["90001", "Los Angeles", "CA"],
            ["90001", "Los Angeles", "CA"],
            ["90002", "Los Angeles", "CA"],
            ["60601", "Chicago", "IL"],
            ["60601", "Springfield", "IL"],  # violates zip -> city
        ],
    )


class TestFunctionalDependency:
    def test_of_accepts_strings_and_iterables(self):
        fd = FunctionalDependency.of("zip", "city")
        assert fd.lhs == ("zip",)
        assert fd.rhs == ("city",)
        fd2 = FunctionalDependency.of(["zip", "city"], ["state"])
        assert fd2.lhs == ("zip", "city")

    def test_empty_sides_rejected(self):
        with pytest.raises(ConstraintError):
            FunctionalDependency((), ("city",))
        with pytest.raises(ConstraintError):
            FunctionalDependency(("zip",), ())

    def test_overlapping_sides_rejected(self):
        with pytest.raises(ConstraintError):
            FunctionalDependency.of("zip", "zip")

    def test_holds_on(self, city_table):
        assert FunctionalDependency.of("zip", "state").holds_on(city_table)
        assert not FunctionalDependency.of("zip", "city").holds_on(city_table)

    def test_violating_pairs(self, city_table):
        pairs = FunctionalDependency.of("zip", "city").violating_pairs(city_table)
        assert pairs == [(3, 4)]

    def test_violating_pairs_limit(self, city_table):
        pairs = FunctionalDependency.of("zip", "city").violating_pairs(city_table, limit=1)
        assert len(pairs) == 1

    def test_g3_error(self, city_table):
        fd = FunctionalDependency.of("zip", "city")
        # one of the two 60601 rows must be removed: 1/5
        assert fd.g3_error(city_table) == pytest.approx(0.2)
        assert FunctionalDependency.of("zip", "state").g3_error(city_table) == 0.0

    def test_g3_error_empty_table(self):
        table = Table.empty(["a", "b"])
        assert FunctionalDependency.of("a", "b").g3_error(table) == 0.0

    def test_attributes_and_str(self):
        fd = FunctionalDependency.of(["a", "b"], "c")
        assert fd.attributes == ("a", "b", "c")
        assert str(fd) == "a, b -> c"


class TestEmbeddedFD:
    def test_between(self):
        fd = EmbeddedFD.between("zip", "city")
        assert fd.lhs_attribute == "zip"
        assert fd.rhs_attribute == "city"

    def test_rejects_multi_attribute_sides(self):
        with pytest.raises(ConstraintError):
            EmbeddedFD(("a", "b"), ("c",))
        with pytest.raises(ConstraintError):
            EmbeddedFD(("a",), ("b", "c"))

    def test_is_a_functional_dependency(self, city_table):
        fd = EmbeddedFD.between("zip", "state")
        assert isinstance(fd, FunctionalDependency)
        assert fd.holds_on(city_table)
