"""Tests for the reference satisfaction semantics (Section 1 examples)."""

import pytest

from repro.constrained.constrained_pattern import constrained_first_token, constrained_prefix
from repro.patterns import parse_pattern
from repro.pfd.pfd import PFD
from repro.pfd.satisfaction import check_satisfaction, find_tableau_violations
from repro.pfd.tableau import WILDCARD


@pytest.fixture
def lambda2():
    return PFD.constant(
        "name", "gender", [{"name": "Susan\\ \\A*", "gender": "F"}], name="lambda2", relation="Name"
    )


@pytest.fixture
def lambda3():
    return PFD.constant(
        "zip", "city", [{"zip": "900\\D{2}", "city": "Los Angeles"}], name="lambda3", relation="Zip"
    )


@pytest.fixture
def lambda4():
    return PFD.variable("name", "gender", constrained_first_token(), name="lambda4")


@pytest.fixture
def lambda5():
    return PFD.variable(
        "zip",
        "city",
        constrained_prefix(3, parse_pattern("\\D{2}"), head=parse_pattern("\\D{3}")),
        name="lambda5",
    )


class TestPaperIntroduction:
    """λ2 detects r4[gender]; λ3 detects s4[city]; λ4/λ5 detect them pairwise."""

    def test_lambda2_detects_r4_gender(self, name_table, lambda2):
        report = find_tableau_violations(name_table, lambda2)
        assert report.constant_violations == [(3, 0)]
        assert report.violating_rows == [3]
        assert not report.satisfied

    def test_lambda3_detects_s4_city(self, zip_table, lambda3):
        report = find_tableau_violations(zip_table, lambda3)
        assert report.constant_violations == [(3, 0)]

    def test_lambda4_detects_r4_via_r3_pair(self, name_table, lambda4):
        report = find_tableau_violations(name_table, lambda4)
        assert report.variable_violations == [(2, 3, 0)]
        # the violation consists of the four cells of r3 and r4
        assert report.violating_rows == [2, 3]

    def test_lambda5_detects_s4_against_each_sibling(self, zip_table, lambda5):
        report = find_tableau_violations(zip_table, lambda5)
        pairs = {(i, j) for i, j, _rule in report.variable_violations}
        assert pairs == {(0, 3), (1, 3), (2, 3)}

    def test_clean_tables_satisfy_all_lambdas(self, name_dataset, zip_dataset, lambda2, lambda3, lambda4, lambda5):
        assert check_satisfaction(name_dataset.clean_table, lambda2)
        assert check_satisfaction(name_dataset.clean_table, lambda4)
        assert check_satisfaction(zip_dataset.clean_table, lambda3)
        assert check_satisfaction(zip_dataset.clean_table, lambda5)


class TestReportProperties:
    def test_violation_ratio(self, zip_table, lambda3):
        report = find_tableau_violations(zip_table, lambda3)
        assert report.violation_ratio == pytest.approx(0.25)

    def test_empty_table(self, lambda3):
        from repro.dataset.table import Table

        report = find_tableau_violations(Table.empty(["zip", "city"]), lambda3)
        assert report.satisfied
        assert report.violation_ratio == 0.0

    def test_constant_rule_ignores_non_matching_lhs(self, lambda3):
        from repro.dataset.table import Table

        table = Table.from_rows(["zip", "city"], [["60601", "Chicago"]])
        assert check_satisfaction(table, lambda3)

    def test_string_lhs_variable_rule(self):
        from repro.dataset.table import Table

        pfd = PFD.constant("a", "b")
        pfd.add_rule({"a": "k1", "b": WILDCARD})
        table = Table.from_rows(["a", "b"], [["k1", "x"], ["k1", "y"], ["k2", "z"]])
        report = find_tableau_violations(table, pfd)
        assert [(i, j) for i, j, _ in report.variable_violations] == [(0, 1)]

    def test_wildcard_lhs_variable_rule_compares_all_pairs(self):
        from repro.dataset.table import Table

        pfd = PFD.constant("a", "b")
        pfd.add_rule({"a": WILDCARD, "b": WILDCARD})
        table = Table.from_rows(["a", "b"], [["1", "x"], ["2", "x"], ["3", "y"]])
        report = find_tableau_violations(table, pfd)
        assert len(report.variable_violations) == 2

    def test_plain_pattern_lhs_means_whole_value_equality(self):
        from repro.dataset.table import Table

        pfd = PFD.constant("zip", "city")
        pfd.add_rule({"zip": parse_pattern("\\D{5}"), "city": WILDCARD})
        table = Table.from_rows(
            ["zip", "city"],
            [["90001", "LA"], ["90001", "NY"], ["90002", "SF"]],
        )
        report = find_tableau_violations(table, pfd)
        assert [(i, j) for i, j, _ in report.variable_violations] == [(0, 1)]
