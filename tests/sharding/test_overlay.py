"""Unit tests for the shard-overlay edit loop.

The load-bearing property is *protocol parity*: a :class:`ShardOverlay`
over a sharded base must behave exactly like the monolithic
:class:`Table` it replaces — same reads, same mutation semantics, same
version counter and delta log, same error messages — while the base
store is never written.
"""

import pytest

from repro.dataset import Table
from repro.dataset.table import CellEdit, MAX_DELTA_LOG, RowAppend, RowDelete
from repro.errors import TableError
from repro.sharding import InMemoryShardStore, ShardedTable, ShardOverlay
from repro.sharding.overlay import OverlayShardStore


def make_base(n_rows=10, shard_rows=3):
    table = Table.from_rows(
        ["code", "label"],
        [[f"{100 + i}", f"v{i}"] for i in range(n_rows)],
    )
    return table, ShardedTable.from_table(table, shard_rows)


@pytest.fixture
def pair():
    """(mirror Table, overlay over an equal sharded base)."""
    table, sharded = make_base()
    return table.copy(), ShardOverlay(sharded)


def assert_same_state(table, overlay):
    assert overlay.n_rows == table.n_rows
    assert overlay.column_names() == table.column_names()
    assert list(overlay.iter_rows()) == list(table.iter_rows())
    for name in table.column_names():
        assert overlay.column(name) == table.column(name)
    for row in range(table.n_rows):
        assert overlay.row(row) == table.row(row)
        assert overlay.row_dict(row) == table.row_dict(row)


class TestReads:
    def test_fresh_overlay_mirrors_base(self, pair):
        table, overlay = pair
        assert_same_state(table, overlay)
        assert overlay.version == 0
        assert not overlay.is_touched
        assert len(overlay) == table.n_rows

    def test_cell_addressing_across_shards(self, pair):
        table, overlay = pair
        for row in range(table.n_rows):
            for name in table.column_names():
                assert overlay.cell(row, name) == table.cell(row, name)

    def test_out_of_range_reads_match_table_errors(self, pair):
        table, overlay = pair
        for bad in (-1, table.n_rows):
            with pytest.raises(TableError) as table_err:
                table.row(bad)
            with pytest.raises(TableError) as overlay_err:
                overlay.row(bad)
            assert str(overlay_err.value) == str(table_err.value)


class TestMutationParity:
    def test_mixed_edit_session_stays_equal(self, pair):
        table, overlay = pair
        for target in (table, overlay):
            target.set_cell(0, "label", "edited")
            target.set_cell(7, "code", "999")
            target.append_row(["200", "tail"])
            target.delete_row(2)
            target.set_cell(2, "label", "post-shift")  # old row 3
            target.delete_row(target.n_rows - 1)  # the appended tail row
            target.append_row({"code": "201"})  # mapping: label defaults ""
        assert_same_state(table, overlay)
        assert overlay.version == table.version

    def test_delete_shifts_rows_down(self, pair):
        table, overlay = pair
        for target in (table, overlay):
            removed = target.delete_row(4)
            assert removed == ("104", "v4")
        assert_same_state(table, overlay)
        # consecutive tombstones exercise the fixpoint row mapping
        for target in (table, overlay):
            target.delete_row(4)  # old row 5
            target.delete_row(4)  # old row 6
        assert_same_state(table, overlay)
        assert overlay.row(4) == ("107", "v7")

    def test_edit_then_delete_same_region(self, pair):
        table, overlay = pair
        for target in (table, overlay):
            target.set_cell(5, "label", "X")
            target.delete_row(5)
        assert_same_state(table, overlay)

    def test_noop_set_cell_skips_version_bump(self, pair):
        table, overlay = pair
        overlay.set_cell(3, "label", overlay.cell(3, "label"))
        assert overlay.version == 0
        assert overlay.deltas_since(0) == ()

    def test_mutation_error_parity(self, pair):
        table, overlay = pair
        cases = [
            lambda t: t.append_row("oops"),
            lambda t: t.append_row(["only-one"]),
            lambda t: t.append_row({"code": "1", "bogus": "2"}),
            lambda t: t.set_cell(99, "code", "x"),
            lambda t: t.delete_row(-1),
        ]
        for case in cases:
            with pytest.raises(TableError) as table_err:
                case(table)
            with pytest.raises(TableError) as overlay_err:
                case(overlay)
            assert str(overlay_err.value) == str(table_err.value)

    def test_base_store_never_written(self, pair):
        table, overlay = pair
        base_versions = overlay.base.versions()
        before = list(overlay.base.store.get(0).iter_rows())
        overlay.set_cell(0, "code", "changed")
        overlay.delete_row(1)
        overlay.append_row(["300", "new"])
        assert overlay.base.versions() == base_versions
        assert list(overlay.base.store.get(0).iter_rows()) == before


class TestDeltaLog:
    def test_delta_stream_matches_table(self, pair):
        table, overlay = pair
        for target in (table, overlay):
            target.set_cell(1, "code", "777")
            target.append_row(["888", "w"])
            target.delete_row(0)
        assert overlay.deltas_since(0) == table.deltas_since(0)
        deltas = overlay.deltas_since(0)
        assert isinstance(deltas[0], CellEdit)
        assert isinstance(deltas[1], RowAppend)
        assert isinstance(deltas[2], RowDelete)
        assert overlay.deltas_since(2) == deltas[2:]
        assert overlay.deltas_since(3) == ()
        assert overlay.deltas_since(4) is None  # future version

    def test_log_trims_like_table(self):
        _table, sharded = make_base(n_rows=2, shard_rows=2)
        overlay = ShardOverlay(sharded)
        for i in range(MAX_DELTA_LOG + 10):
            overlay.append_row([str(i), "v"])
        assert overlay.deltas_since(0) is None  # trimmed past the floor
        recent = overlay.deltas_since(overlay.version - 5)
        assert len(recent) == 5


class TestColumnCache:
    def test_column_ref_cached_per_version(self, pair):
        _table, overlay = pair
        first = overlay.column_ref("code")
        assert overlay.column_ref("code") is first
        overlay.set_cell(0, "code", "000")
        rebuilt = overlay.column_ref("code")
        assert rebuilt is not first
        assert rebuilt[0] == "000"

    def test_materialize_builds_equal_table(self, pair):
        table, overlay = pair
        overlay.set_cell(2, "label", "M")
        table.set_cell(2, "label", "M")
        materialized = overlay.materialize()
        assert isinstance(materialized, Table)
        assert list(materialized.iter_rows()) == list(table.iter_rows())


class TestAsSharded:
    def test_untouched_overlay_returns_base_identity(self, pair):
        _table, overlay = pair
        assert overlay.as_sharded() is overlay.base

    def test_untouched_shards_pass_through_by_identity(self, pair):
        _table, overlay = pair
        overlay.set_cell(0, "label", "patched")  # shard 0 only
        sealed = overlay.as_sharded()
        assert isinstance(sealed.store, OverlayShardStore)
        base_store = overlay.base.store
        assert sealed.store.get(1) is base_store.get(1)
        assert sealed.store.get(2) is base_store.get(2)
        assert sealed.store.get(0) is not base_store.get(0)
        assert sealed.store.get(0).cell(0, "label") == "patched"

    def test_sealed_view_equals_overlay(self, pair):
        table, overlay = pair
        for target in (table, overlay):
            target.set_cell(1, "code", "111")
            target.delete_row(6)
            target.append_row(["400", "tail-a"])
            target.append_row(["401", "tail-b"])
        sealed = overlay.as_sharded()
        assert sealed.n_rows == table.n_rows
        assert [sealed.row(i) for i in range(sealed.n_rows)] == list(table.iter_rows())
        for name in table.column_names():
            assert sealed.column_concat(name) == table.column(name)
        # tail rows land in one extra shard
        assert sealed.n_shards == overlay.base.n_shards + 1
        assert sealed.store.shard_row_counts()[-1] == 2

    def test_fully_deleted_shard_stays_as_zero_row_shard(self):
        _table, sharded = make_base(n_rows=6, shard_rows=2)
        overlay = ShardOverlay(sharded)
        overlay.delete_row(2)
        overlay.delete_row(2)  # wipes base shard 1 entirely
        sealed = overlay.as_sharded()
        assert sealed.n_shards == 3  # alignment with the base kept
        assert sealed.store.shard_row_counts() == [2, 0, 2]
        assert sealed.column_concat("code") == ["100", "101", "104", "105"]

    def test_versions_stable_and_edit_sensitive(self, pair):
        _table, overlay = pair
        overlay.set_cell(0, "code", "A")
        sealed = overlay.as_sharded()
        before = sealed.store.versions()
        assert before == sealed.store.versions()  # stable while idle
        # untouched shards keep their base staleness keys, so merged
        # artifacts built over them are reused
        assert before[1:] == overlay.base.versions()[1:]
        assert before[0] != overlay.base.versions()[0]
        # a seal is a snapshot: a further edit never reaches it...
        overlay.set_cell(0, "code", "B")
        assert sealed.store.versions() == before
        assert sealed.store.get(0).cell(0, "code") == "A"
        # ...the *next* seal disagrees exactly on the touched shard,
        # which is what dirty-shard diffing relies on
        after = overlay.as_sharded().store.versions()
        assert after[0] != before[0]
        assert after[1:] == before[1:]

    def test_overlay_store_is_read_only(self, pair):
        _table, overlay = pair
        overlay.set_cell(0, "code", "A")
        sealed = overlay.as_sharded()
        with pytest.raises(TableError, match="read-only; edit the overlay"):
            sealed.store.append(Table.from_rows(["code", "label"], [["1", "a"]]))
