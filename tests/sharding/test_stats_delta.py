"""Delta-shard semantics of the mergeable per-shard statistics.

``merged = base − old_delta + new_delta``: retracting one shard's pair
groups (:func:`unmerge_pair_groups`) and merging a replacement back
(:func:`merge_into_pair_groups`) must leave the statistic equal to a
from-scratch merge over the replacement shards — for any shard, in any
order, including delta shards that are empty or that remove every row of
a distinct value.  Same for :func:`splice_tokenization` on merged
tokenizations.
"""

from __future__ import annotations

import random

import pytest

from repro.discovery.inverted_index import ColumnTokenization
from repro.sharding import (
    MergedPairGroups,
    extract_pair_groups,
    merge_into_pair_groups,
    merge_pair_groups,
    merge_tokenizations,
    splice_tokenization,
    unmerge_pair_groups,
)

SEEDS = [3, 11, 58]


def random_columns(rng, n_rows, n_lhs=5, n_rhs=4):
    lhs = [f"L{rng.randrange(n_lhs)}" for _ in range(n_rows)]
    rhs = [f"R{rng.randrange(n_rhs)}" for _ in range(n_rows)]
    return lhs, rhs


def make_shards(rng, shard_sizes):
    """Per-shard (lhs, rhs, offset) triples with contiguous offsets."""
    shards = []
    offset = 0
    for size in shard_sizes:
        lhs, rhs = random_columns(rng, size)
        shards.append((lhs, rhs, offset))
        offset += size
    return shards


def merged_of(shards):
    return merge_pair_groups(
        [extract_pair_groups(lhs, rhs, offset) for lhs, rhs, offset in shards]
    )


def as_plain(merged: MergedPairGroups):
    """A comparable snapshot: nested dicts with plain row-id lists."""
    return {
        lhs: {rhs: list(rows) for rhs, rows in by_rhs.items()}
        for lhs, by_rhs in merged.groups.items()
    }


def assert_equal_statistic(actual: MergedPairGroups, expected: MergedPairGroups):
    assert as_plain(actual) == as_plain(expected)
    assert actual.sorted_values == expected.sorted_values
    assert actual.n_distinct == expected.n_distinct


class TestPairGroupRoundTrips:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_unmerge_then_merge_identity(self, seed):
        """Retracting and re-adding the same shard is the identity."""
        rng = random.Random(seed)
        shards = make_shards(rng, [7, 1, 12, 0, 9])
        merged = merged_of(shards)
        baseline = merged_of(shards)
        for lhs, rhs, offset in shards:
            delta = extract_pair_groups(lhs, rhs, offset)
            unmerge_pair_groups(merged, delta)
            merge_into_pair_groups(
                merged, extract_pair_groups(lhs, rhs, offset)
            )
            assert_equal_statistic(merged, baseline)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_replace_shards_in_random_order(self, seed):
        """base − old + new, applied per shard in a random permutation,
        equals a fresh merge over the replacement shards."""
        rng = random.Random(seed)
        sizes = [7, 1, 12, 9, 5]
        old_shards = make_shards(rng, sizes)
        new_shards = [
            (new_lhs, new_rhs, offset)
            for (_, _, offset), (new_lhs, new_rhs) in zip(
                old_shards,
                (random_columns(rng, size) for size in sizes),
            )
        ]
        merged = merged_of(old_shards)
        order = list(range(len(sizes)))
        rng.shuffle(order)
        for index in order:
            old_lhs, old_rhs, offset = old_shards[index]
            new_lhs, new_rhs, _ = new_shards[index]
            unmerge_pair_groups(
                merged, extract_pair_groups(old_lhs, old_rhs, offset)
            )
            merge_into_pair_groups(
                merged, extract_pair_groups(new_lhs, new_rhs, offset)
            )
        assert_equal_statistic(merged, merged_of(new_shards))

    def test_empty_delta_shard(self):
        """A zero-row shard contributes nothing and retracts nothing."""
        rng = random.Random(7)
        shards = make_shards(rng, [5, 0, 5])
        merged = merged_of(shards)
        baseline = merged_of(shards)
        empty = extract_pair_groups([], [], 5)
        assert empty == {}
        unmerge_pair_groups(merged, empty)
        merge_into_pair_groups(merged, empty)
        assert_equal_statistic(merged, baseline)

    def test_delta_removes_every_row_of_a_distinct_value(self):
        """When the replacement shard drops the only rows carrying a
        distinct LHS value, the value must disappear from the statistic
        (groups and sorted_values both)."""
        # shard 0 is the only shard mentioning LHS value "ONLY"
        shard0 = (["ONLY", "ONLY", "A"], ["x", "x", "y"], 0)
        shard1 = (["A", "B", "A"], ["y", "z", "y"], 3)
        merged = merged_of([shard0, shard1])
        assert "ONLY" in merged.sorted_values
        replacement = (["A", "B", "A"], ["y", "z", "q"], 0)
        unmerge_pair_groups(merged, extract_pair_groups(*shard0))
        merge_into_pair_groups(merged, extract_pair_groups(*replacement))
        expected = merged_of([replacement, shard1])
        assert "ONLY" not in merged.sorted_values
        assert_equal_statistic(merged, expected)

    def test_delta_removes_every_rhs_of_a_pair(self):
        """Retraction that empties one (lhs, rhs) row list prunes the RHS
        entry but keeps the LHS value alive via its other RHS values."""
        shard0 = (["A", "A"], ["x", "y"], 0)
        shard1 = (["A"], ["y"], 2)
        merged = merged_of([shard0, shard1])
        replacement = (["A", "A"], ["y", "y"], 0)
        unmerge_pair_groups(merged, extract_pair_groups(*shard0))
        merge_into_pair_groups(merged, extract_pair_groups(*replacement))
        expected = merged_of([replacement, shard1])
        assert "x" not in merged.groups["A"]
        assert_equal_statistic(merged, expected)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_row_lists_stay_ascending(self, seed):
        """The contiguous-splice invariant: after any replacement, every
        row list is strictly ascending (what matching/lookup relies on)."""
        rng = random.Random(seed)
        shards = make_shards(rng, [6, 6, 6])
        merged = merged_of(shards)
        lhs, rhs, offset = shards[1]
        new_lhs, new_rhs = random_columns(rng, 6)
        unmerge_pair_groups(merged, extract_pair_groups(lhs, rhs, offset))
        merge_into_pair_groups(
            merged, extract_pair_groups(new_lhs, new_rhs, offset)
        )
        for by_rhs in merged.groups.values():
            for rows in by_rhs.values():
                assert list(rows) == sorted(set(rows))


class TestTokenizationSplice:
    @pytest.mark.parametrize("mode", ["token", "prefix"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_splice_equals_full_reextraction(self, mode, seed):
        rng = random.Random(seed)
        sizes = [5, 3, 8]
        shards = [
            [f"v{rng.randrange(6)} w{rng.randrange(3)}" for _ in range(size)]
            for size in sizes
        ]
        merged = merge_tokenizations(
            mode,
            3,
            [ColumnTokenization.extract(s, mode, 3).row_tokens for s in shards],
        )
        # replace the middle shard's values
        replacement = [f"q{rng.randrange(4)}" for _ in range(sizes[1])]
        new_rows = ColumnTokenization.extract(replacement, mode, 3).row_tokens
        result = splice_tokenization(merged, sizes[0], sizes[1], new_rows)
        assert result is merged  # in place, returned for chaining
        flat = shards[0] + replacement + shards[2]
        expected = ColumnTokenization.extract(flat, mode, 3)
        assert merged.row_tokens == expected.row_tokens
        assert merged.mode == expected.mode
        assert merged.ngram_size == expected.ngram_size

    def test_splice_empty_shard(self):
        """A zero-row shard splices to a no-op."""
        values = ["a b", "c d"]
        merged = merge_tokenizations(
            "token",
            3,
            [ColumnTokenization.extract(values, "token", 3).row_tokens, []],
        )
        before = list(merged.row_tokens)
        splice_tokenization(merged, 2, 0, [])
        assert merged.row_tokens == before
