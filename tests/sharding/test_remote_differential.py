"""Differential tests through the remote object client under injected
faults.

The PR-4/PR-7 acceptance bar, moved onto the network: the full session
workflow (profile → discover → confirm → detect, then an edit batch and
a recheck) runs with every shard living on an HTTP object server behind
a :class:`FaultInjectingClient` firing transient errors, timeouts,
truncations, bit-flips and dropped reads at a nonzero rate — and must
produce the *identical* rule set and canonical violations as the
monolithic in-memory run, heal every fault through the retry policy,
respect the LRU cache bound, and leave zero objects on the server after
``session.close()``.
"""

from __future__ import annotations

import pytest

from repro.anmat.session import AnmatSession
from repro.datagen import build_dataset
from repro.datagen.corruption import CorruptionSpec, ErrorInjector
from repro.sharding import (
    FaultInjectingClient,
    HttpObjectClient,
    ObjectShardStore,
    RetryPolicy,
    ShardedTable,
)
from repro.sharding.devserver import ObjectHTTPServer

#: a subset of the PR-4 generator matrix — two generators x two seeds
#: keeps the faulted sweep under a few seconds while still covering
#: prefix- and token-mode discovery
GENERATORS = [
    ("zip_city_state", 90, [CorruptionSpec("city", 0.05, kind="swap")]),
    ("employee_ids", 70, [CorruptionSpec("employee_id", 0.05, kind="typo")]),
]

SEEDS = [3, 58]

FAULT_RATE = 0.2
SHARD_ROWS = 9
CACHE_SHARDS = 2

#: generous attempt budget: at a 0.2 fault rate, 8 attempts make a
#: whole-run failure astronomically unlikely while staying bounded
POLICY = RetryPolicy(max_attempts=8, base_delay=0.0)


@pytest.fixture(scope="module")
def server():
    with ObjectHTTPServer() as running:
        yield running


def dirty_table(name, n_rows, specs, seed):
    dataset = build_dataset(name, n_rows=n_rows, seed=seed)
    dirty, _cells = ErrorInjector(seed=seed + 1).corrupt(dataset.table, specs)
    return dirty


def run_workflow(table):
    """profile → discover → confirm → detect → edit batch → recheck →
    detect again; returns (rules, canonical violations, rules after the
    edits, canonical violations after the edits)."""
    with AnmatSession(dataset_name="remote-differential") as session:
        session.load_table(table)
        session.set_parameters(min_coverage=0.4, allowed_violation_ratio=0.2)
        session.run_profiling()
        result = session.run_discovery()
        session.confirm_all()
        report = session.run_detection()
        rules = [pfd.describe() for pfd in result.pfds]
        canonical = report.canonical_violations()

        # an edit batch: blank one cell per column in the first rows,
        # then re-derive rules and violations from the edited table
        columns = session.table.column_names()
        for row, attribute in enumerate(columns[: min(3, len(columns))]):
            session.edit_cell(row, attribute, "")
        rechecked = session.recheck()
        session.confirm_all()
        after_report = session.run_detection()
        after_rules = [pfd.describe() for pfd in rechecked.pfds]
        after_canonical = after_report.canonical_violations()
    return rules, canonical, after_rules, after_canonical


def faulty_store(server, seed, prefetch_depth=0, prefix="diff"):
    client = FaultInjectingClient(
        HttpObjectClient(server.url),
        seed=seed,
        fault_rate=FAULT_RATE,
        slow_delay=0.0,
    )
    store = ObjectShardStore(
        client=client,
        owns_client=True,
        prefix=f"{prefix}_{seed}",
        cache_shards=CACHE_SHARDS,
        retry_policy=POLICY,
        prefetch_depth=prefetch_depth,
    )
    return client, store


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name,n_rows,specs", GENERATORS, ids=lambda v: str(v))
def test_faulted_remote_run_identical_to_monolithic(server, name, n_rows, specs, seed):
    # each arm gets its own (seed-identical) table: the workflow's edit
    # batch mutates its table in place, so sharing one would leak the
    # monolithic arm's edits into the remote arm's upload
    expected = run_workflow(dirty_table(name, n_rows, specs, seed))

    client, store = faulty_store(server, seed)
    table = dirty_table(name, n_rows, specs, seed)
    sharded = ShardedTable.from_table(table, SHARD_ROWS, store=store)
    assert sharded.n_shards > 1
    observed = run_workflow(sharded)

    assert observed == expected, "faulted remote run diverged from monolithic"
    # the run actually exercised the fault path and healed through it
    assert client.total_faults > 0, "fault injector never fired"
    assert store.retried_reads + store.retried_puts > 0
    # the LRU bound held: the store never cached more than its budget
    assert len(store._loaded) <= CACHE_SHARDS
    # session.close() released the remote namespace — nothing leaked
    leftovers = [k for k in server.objects if k.startswith(f"diff_{seed}/")]
    assert leftovers == [], f"objects leaked on the server: {leftovers}"


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name,n_rows,specs", GENERATORS, ids=lambda v: str(v))
def test_faulted_prefetching_run_identical_to_monolithic(
    server, name, n_rows, specs, seed
):
    """The same faulted workflow through the prefetching reader: faults
    firing inside background fetch threads must heal identically (the
    retry policy runs inside the fetch), results must not diverge, and
    close() must still leave zero objects on the server."""
    expected = run_workflow(dirty_table(name, n_rows, specs, seed))

    client, store = faulty_store(server, seed, prefetch_depth=3, prefix="pre")
    table = dirty_table(name, n_rows, specs, seed)
    sharded = ShardedTable.from_table(table, SHARD_ROWS, store=store)
    assert sharded.n_shards > 1
    observed = run_workflow(sharded)

    assert observed == expected, "prefetching faulted run diverged from monolithic"
    assert client.total_faults > 0, "fault injector never fired"
    assert store.retried_reads + store.retried_puts > 0
    # the pipeline actually ran ahead of the reader
    assert store.prefetch_hits > 0, "prefetcher never served a shard early"
    # the caller-visible I/O wait was measured
    assert store.timers.count("fetch_wait") > 0
    assert len(store._loaded) <= CACHE_SHARDS
    leftovers = [k for k in server.objects if k.startswith(f"pre_{seed}/")]
    assert leftovers == [], f"objects leaked on the server: {leftovers}"


def test_fault_free_control_run_needs_no_retries(server):
    """The control arm: the same wiring at fault_rate=0 heals nothing
    because nothing breaks — pinning the retry counters to the faults."""
    name, n_rows, specs = GENERATORS[0]
    expected = run_workflow(dirty_table(name, n_rows, specs, SEEDS[0]))
    client = FaultInjectingClient(HttpObjectClient(server.url), fault_rate=0.0)
    store = ObjectShardStore(
        client=client,
        owns_client=True,
        prefix="control",
        retry_policy=POLICY,
    )
    table = dirty_table(name, n_rows, specs, SEEDS[0])
    sharded = ShardedTable.from_table(table, SHARD_ROWS, store=store)
    assert run_workflow(sharded) == expected
    assert client.total_faults == 0
    assert store.retried_reads == 0 and store.retried_puts == 0
    assert not any(k.startswith("control/") for k in server.objects)
