"""Unit tests for the remote object-store layer: retry policy, HTTP
client, fault injection, and the hardened store I/O built on them."""

import time

import pytest

from repro.dataset import Table
from repro.errors import TableError
from repro.sharding import (
    FAULT_KINDS,
    FaultInjectingClient,
    HttpObjectClient,
    LocalObjectClient,
    ObjectChecksumError,
    ObjectShardStore,
    ObjectStoreError,
    RetryPolicy,
)
from repro.sharding.devserver import ObjectHTTPServer

#: retries without real sleeping — every unit test runs under this
FAST = RetryPolicy(max_attempts=3, base_delay=0.0)


def make_shard(values):
    return Table.from_rows(["code", "label"], values)


SHARD_A = [["10", "x"], ["20", "y"]]


@pytest.fixture(scope="module")
def server():
    with ObjectHTTPServer() as running:
        yield running


@pytest.fixture
def http_client(server):
    client = HttpObjectClient(server.url)
    yield client
    for key in client.list():
        client.delete(key)


# -- RetryPolicy ------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_sequence_is_deterministic_under_a_seed(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=10.0, seed=42
        )
        first = list(policy.delays())
        second = list(policy.delays())
        assert first == second
        assert len(first) == 4
        # exponential growth survives the jitter: each pause is at least
        # the unjittered delay and at most 1.5x it
        for i, pause in enumerate(first):
            unjittered = 0.1 * 2.0**i
            assert unjittered <= pause <= 1.5 * unjittered

    def test_max_delay_caps_every_pause(self):
        policy = RetryPolicy(max_attempts=6, base_delay=1.0, max_delay=0.05, seed=1)
        assert all(pause <= 0.05 for pause in policy.delays())

    def test_success_passes_through(self):
        assert FAST.run(lambda: "value") == "value"

    def test_transient_failure_is_retried_then_succeeds(self):
        calls = {"n": 0}
        retries = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ObjectStoreError("transient", key="k", transient=True)
            return "healed"

        result = FAST.run(flaky, on_retry=retries.append)
        assert result == "healed"
        assert calls["n"] == 3
        assert len(retries) == 2

    def test_exhaustion_raises_a_clean_object_store_error(self):
        def always_fails():
            raise ObjectStoreError("backend melted", key="shards/x.csv")

        with pytest.raises(ObjectStoreError) as excinfo:
            FAST.run(always_fails, what="shard object shards/x.csv unreadable")
        message = str(excinfo.value)
        assert "shard object shards/x.csv unreadable after 3 attempts" in message
        assert "backend melted" in message
        assert excinfo.value.key == "shards/x.csv"
        assert excinfo.value.attempts == 3

    def test_non_idempotent_operations_never_retry(self):
        calls = {"n": 0}

        def failing():
            calls["n"] += 1
            raise ObjectStoreError("boom")

        with pytest.raises(ObjectStoreError, match="boom"):
            FAST.run(failing, idempotent=False)
        assert calls["n"] == 1

    def test_only_object_store_errors_are_retried(self):
        calls = {"n": 0}

        def raises_value_error():
            calls["n"] += 1
            raise ValueError("a bug, not an outage")

        with pytest.raises(ValueError):
            FAST.run(raises_value_error)
        assert calls["n"] == 1

    def test_sleep_is_injectable_and_receives_the_pauses(self):
        pauses = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)

        def failing():
            raise ObjectStoreError("down")

        with pytest.raises(ObjectStoreError):
            policy.run(failing, sleep=pauses.append)
        assert pauses == [0.1, 0.2]

    def test_bad_parameters_rejected(self):
        with pytest.raises(TableError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(TableError, match="delays"):
            RetryPolicy(base_delay=-1.0)


# -- HttpObjectClient -------------------------------------------------------------


class TestHttpObjectClient:
    def test_put_get_delete_roundtrip(self, http_client):
        http_client.put("ds/shard_000000.csv", b"10,x\r\n20,y\r\n")
        assert http_client.get("ds/shard_000000.csv") == b"10,x\r\n20,y\r\n"
        http_client.delete("ds/shard_000000.csv")
        with pytest.raises(ObjectStoreError, match="HTTP 404"):
            http_client.get("ds/shard_000000.csv")

    def test_delete_of_absent_object_is_idempotent(self, http_client):
        http_client.delete("never/was.csv")  # no raise

    def test_list_filters_by_prefix(self, http_client):
        http_client.put("a/one.csv", b"1")
        http_client.put("a/two.csv", b"2")
        http_client.put("b/three.csv", b"3")
        assert http_client.list("a/") == ["a/one.csv", "a/two.csv"]
        assert http_client.list() == ["a/one.csv", "a/two.csv", "b/three.csv"]

    def test_range_read_fetches_a_partial_shard(self, http_client):
        http_client.put("ds/big.csv", b"0123456789abcdef")
        assert http_client.get_range("ds/big.csv", 0, 4) == b"0123"
        assert http_client.get_range("ds/big.csv", 10, 6) == b"abcdef"
        # a tail read past the end returns what exists
        assert http_client.get_range("ds/big.csv", 12, 100) == b"cdef"
        assert http_client.get_range("ds/big.csv", 3, 0) == b""

    def test_range_read_falls_back_when_server_ignores_range(self, http_client):
        # the client must slice a full 200 response itself
        class NoRangeClient(HttpObjectClient):
            def _request(self, method, url, key, data=None, headers=None, **kw):
                headers = dict(headers or {})
                headers.pop("Range", None)
                return super()._request(method, url, key, data, headers, **kw)

        fallback = NoRangeClient(http_client.base_url)
        fallback.put("ds/full.csv", b"0123456789")
        assert fallback.get_range("ds/full.csv", 2, 3) == b"234"

    def test_invalid_range_rejected(self, http_client):
        with pytest.raises(ObjectStoreError, match="invalid range"):
            http_client.get_range("ds/big.csv", -1, 4)

    def test_awkward_keys_are_quoted(self, http_client):
        http_client.put("ds/with space+plus.csv", b"data")
        assert http_client.get("ds/with space+plus.csv") == b"data"

    def test_missing_object_is_a_permanent_error(self, http_client):
        with pytest.raises(ObjectStoreError) as excinfo:
            http_client.get("gone.csv")
        assert not excinfo.value.transient
        assert excinfo.value.key == "gone.csv"

    def test_server_5xx_is_a_transient_error(self, server, http_client):
        http_client.put("ds/flaky.csv", b"bytes")
        server.fail_next_with(503)
        with pytest.raises(ObjectStoreError) as excinfo:
            http_client.get("ds/flaky.csv")
        assert excinfo.value.transient
        assert "HTTP 503" in str(excinfo.value)
        # the outage was one request long; the object is still there
        assert http_client.get("ds/flaky.csv") == b"bytes"

    def test_unreachable_server_surfaces_a_clean_error(self):
        # a closed loopback port: connection refused must arrive as an
        # ObjectStoreError, never a raw socket/OS error
        client = HttpObjectClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ObjectStoreError) as excinfo:
            client.get("any.csv")
        assert excinfo.value.transient

    def test_invalid_url_and_keys_rejected(self):
        with pytest.raises(ObjectStoreError, match="http"):
            HttpObjectClient("ftp://objects.example")
        client = HttpObjectClient("http://127.0.0.1:9")
        for key in ("", "/abs", "../escape", "a/../b", ".hidden"):
            with pytest.raises(ObjectStoreError, match="invalid object key"):
                client.get(key)


# -- FaultInjectingClient ---------------------------------------------------------


class TestFaultInjectingClient:
    def local(self, tmp_path, **kwargs):
        return FaultInjectingClient(LocalObjectClient(tmp_path / "objects"), **kwargs)

    def test_scripted_transient_and_timeout_fire_once(self, tmp_path):
        client = self.local(
            tmp_path, script=[("get", "transient"), ("get", "timeout")]
        )
        client.put("k.csv", b"payload")
        with pytest.raises(ObjectStoreError, match="HTTP 503"):
            client.get("k.csv")
        with pytest.raises(ObjectStoreError, match="timed out"):
            client.get("k.csv")
        assert client.get("k.csv") == b"payload"  # script exhausted
        assert client.faults == {"transient": 1, "timeout": 1}

    def test_scripted_drop_reads_as_missing(self, tmp_path):
        client = self.local(tmp_path, script=[("get", "drop")])
        client.put("k.csv", b"payload")
        with pytest.raises(ObjectStoreError, match="not visible yet"):
            client.get("k.csv")
        assert client.get("k.csv") == b"payload"

    def test_scripted_truncate_halves_the_bytes(self, tmp_path):
        client = self.local(tmp_path, script=[("get", "truncate")])
        client.put("k.csv", b"0123456789")
        assert client.get("k.csv") == b"01234"
        assert client.get("k.csv") == b"0123456789"

    def test_scripted_bitflip_flips_exactly_one_bit(self, tmp_path):
        client = self.local(tmp_path, seed=5, script=[("get", "bitflip")])
        client.put("k.csv", b"0123456789")
        corrupted = client.get("k.csv")
        assert corrupted != b"0123456789"
        assert len(corrupted) == 10
        diff = [a ^ b for a, b in zip(corrupted, b"0123456789")]
        assert sum(bin(d).count("1") for d in diff) == 1
        assert client.get("k.csv") == b"0123456789"

    def test_scripted_slow_uses_the_injected_sleep(self, tmp_path):
        pauses = []
        client = self.local(
            tmp_path,
            script=[("get", "slow")],
            slow_delay=0.25,
            sleep=pauses.append,
        )
        client.put("k.csv", b"payload")
        assert client.get("k.csv") == b"payload"  # slow, but correct
        assert pauses == [0.25]
        assert client.faults == {"slow": 1}

    def test_script_waits_for_the_matching_operation(self, tmp_path):
        client = self.local(tmp_path, script=[("put", "transient")])
        # a get does not consume the scripted put fault
        with pytest.raises(ObjectStoreError, match="could not be read"):
            client.get("absent.csv")
        with pytest.raises(ObjectStoreError, match="HTTP 503"):
            client.put("k.csv", b"payload")
        client.put("k.csv", b"payload")

    def test_corruption_faults_degrade_to_transient_on_writes(self, tmp_path):
        # a corrupted upload must fail loudly (and retryably), never
        # store silently wrong bytes that poison the shard forever
        client = self.local(
            tmp_path, script=[("put", "bitflip"), ("put", "truncate")]
        )
        for _ in range(2):
            with pytest.raises(ObjectStoreError, match="HTTP 503"):
                client.put("k.csv", b"payload")
        client.put("k.csv", b"payload")
        assert client.get("k.csv") == b"payload"
        assert client.faults == {"transient": 2}

    def test_seeded_random_faults_are_reproducible(self, tmp_path):
        def fault_sequence(root):
            client = FaultInjectingClient(
                LocalObjectClient(root), seed=99, fault_rate=0.5
            )
            client.inner.put("k.csv", b"0123456789")
            observed = []
            for _ in range(30):
                try:
                    observed.append(client.get("k.csv"))
                except ObjectStoreError as exc:
                    observed.append(str(exc))
            return observed, dict(client.faults)

        first = fault_sequence(tmp_path / "one")
        second = fault_sequence(tmp_path / "two")
        assert first == second
        assert sum(first[1].values()) > 0

    def test_operation_counters_track_calls(self, tmp_path):
        client = self.local(tmp_path)
        client.put("k.csv", b"d")
        client.get("k.csv")
        client.get_range("k.csv", 0, 1)
        client.list()
        client.delete("k.csv")
        assert client.operations == {
            "put": 1,
            "get": 1,
            "get_range": 1,
            "list": 1,
            "delete": 1,
        }
        assert client.total_faults == 0

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(TableError, match="fault_rate"):
            self.local(tmp_path, fault_rate=1.5)
        with pytest.raises(TableError, match="unknown fault kind"):
            self.local(tmp_path, kinds=("transient", "meteor"))
        client = self.local(tmp_path, script=[("get", "meteor")])
        with pytest.raises(TableError, match="unknown scripted fault kind"):
            client.get("k.csv")

    def test_every_fault_kind_is_exercised_above(self):
        assert set(FAULT_KINDS) == {
            "transient",
            "timeout",
            "drop",
            "truncate",
            "bitflip",
            "slow",
        }


# -- hardened store I/O over faulty clients ---------------------------------------


class TestStoreRetriesAndErrors:
    def test_transient_put_failure_is_retried_not_lost(self, tmp_path):
        # regression: puts used to go out un-retried, so one transient
        # failure lost the shard and poisoned the whole upload
        client = FaultInjectingClient(
            LocalObjectClient(tmp_path / "objects"),
            script=[("put", "transient")],
        )
        store = ObjectShardStore(client=client, retry_policy=FAST)
        store.append(make_shard(SHARD_A))
        assert store.retried_puts == 1
        assert store.n_shards == 1
        assert store.get(0).column("code") == ["10", "20"]

    def test_put_retry_exhaustion_surfaces_key_and_attempts(self, tmp_path):
        client = FaultInjectingClient(
            LocalObjectClient(tmp_path / "objects"),
            script=[("put", "transient")] * 5,
        )
        store = ObjectShardStore(client=client, retry_policy=FAST)
        with pytest.raises(ObjectStoreError) as excinfo:
            store.append(make_shard(SHARD_A))
        message = str(excinfo.value)
        assert "shards/shard_000000.csv" in message
        assert "after 3 attempts" in message
        assert store.n_shards == 0  # the failed shard was not recorded

    def test_failed_put_cleans_up_the_partial_object(self, tmp_path):
        # a put that writes bytes and *then* fails must not leave the
        # partial object behind the store's back
        class TornPutClient(LocalObjectClient):
            def put(self, key, data):
                super().put(key, data[: len(data) // 2])
                raise ObjectStoreError(f"connection reset writing {key!r}", key=key)

        client = TornPutClient(tmp_path / "objects")
        store = ObjectShardStore(client=client, retry_policy=RetryPolicy(max_attempts=1))
        with pytest.raises(ObjectStoreError, match="connection reset"):
            store.append(make_shard(SHARD_A))
        assert client.list() == []

    def test_checksum_error_names_key_digests_and_attempts(self, tmp_path):
        # satellite regression: a corrupted shard must be diagnosable
        # from the message alone
        store = ObjectShardStore(root=tmp_path / "objects", retry_policy=FAST)
        store.append(make_shard(SHARD_A))
        store.client.put("shards/shard_000000.csv", b"99,x\r\n20,y\r\n")
        with pytest.raises(ObjectStoreError) as excinfo:
            store.get(0)
        message = str(excinfo.value)
        assert "shards/shard_000000.csv" in message
        assert "after 3 attempts" in message
        assert "expected sha256" in message and "got" in message
        assert excinfo.value.key == "shards/shard_000000.csv"
        assert excinfo.value.attempts == 3
        cause = excinfo.value.__cause__
        assert isinstance(cause, ObjectChecksumError)
        assert cause.expected != cause.actual

    def test_bitflip_and_truncation_heal_through_retries(self, tmp_path):
        client = FaultInjectingClient(
            LocalObjectClient(tmp_path / "objects"),
            seed=3,
            script=[("get", "bitflip"), ("get", "truncate"), ("get", "drop")],
        )
        store = ObjectShardStore(
            client=client, retry_policy=RetryPolicy(max_attempts=4, base_delay=0.0)
        )
        store.append(make_shard(SHARD_A))
        assert store.get(0).column("code") == ["10", "20"]
        assert store.retried_reads == 3

    def test_store_over_http_client_roundtrips(self, server):
        store = ObjectShardStore(
            client=HttpObjectClient(server.url),
            owns_client=True,
            prefix="roundtrip",
            retry_policy=FAST,
        )
        awkward = [
            ["has,comma", 'has "quote"'],
            ["multi\nline", ""],
            ["  padded  ", "naïve·unicode"],
        ]
        store.append(make_shard(awkward))
        assert [list(row) for row in store.get(0).iter_rows()] == awkward
        assert "roundtrip/shard_000000.csv" in server.objects
        store.close()
        # the store owns its remote namespace: close() deletes its objects
        assert not any(key.startswith("roundtrip/") for key in server.objects)

    def test_close_keeps_objects_of_an_unowned_namespace(self, server):
        client = HttpObjectClient(server.url)
        store = ObjectShardStore(client=client, prefix="kept", retry_policy=FAST)
        store.append(make_shard(SHARD_A))
        store.close()
        assert "kept/shard_000000.csv" in server.objects
        client.delete("kept/shard_000000.csv")

    def test_close_deletes_objects_despite_a_flaky_client(self, server):
        # close-time deletes are idempotent, so transient faults heal
        # through the retry policy: a flaky backend leaks nothing
        client = FaultInjectingClient(
            HttpObjectClient(server.url),
            script=[("delete", "transient"), ("delete", "timeout")],
        )
        store = ObjectShardStore(
            client=client,
            owns_client=True,
            prefix="flakyclose",
            retry_policy=FAST,
            delete_objects_on_close=True,
        )
        store.append(make_shard(SHARD_A))
        store.append(make_shard(SHARD_A))
        store.close()  # no raise; both delete faults heal via retries
        assert not any(k.startswith("flakyclose/") for k in server.objects)

    def test_local_client_close_is_idempotent_and_error_proof(self, tmp_path):
        client = LocalObjectClient()
        root = client.root
        client.put("k.csv", b"d")
        client.close()
        client.close()
        assert not root.exists()


# -- the devserver fixture itself -------------------------------------------------


class TestObjectHTTPServer:
    def test_url_and_objects_require_a_running_server(self):
        stopped = ObjectHTTPServer()
        with pytest.raises(RuntimeError, match="not running"):
            stopped.url
        with pytest.raises(RuntimeError, match="not running"):
            stopped.objects

    def test_start_is_idempotent_and_stop_releases_the_port(self):
        fixture = ObjectHTTPServer()
        fixture.start()
        url = fixture.url
        assert fixture.start() is fixture
        assert fixture.url == url
        fixture.stop()
        fixture.stop()  # idempotent

    def test_object_count_tracks_the_dict(self, server, http_client):
        before = server.object_count()
        http_client.put("count/me.csv", b"1")
        assert server.object_count() == before + 1
        http_client.delete("count/me.csv")
        assert server.object_count() == before
