"""Differential tests: sharded execution vs. the monolithic engines.

Randomized dirty tables (the seeded datagen generators, plus extra
injected corruption) run through monolithic and sharded discovery and
detection at shard sizes {1, 7, n_rows // 2, n_rows}; the sharded path
must produce the *identical* rule set and canonically equal violations
against every monolithic strategy.  Each case is fully determined by the
(generator, seed) pair in the test id, so a failure replays with
``pytest -k <test id>``.
"""

from __future__ import annotations

import pytest

from repro.datagen import build_dataset
from repro.dataset import Table
from repro.pfd import PFD, WILDCARD
from repro.datagen.corruption import CorruptionSpec, ErrorInjector
from repro.detection import DetectionStrategy, ErrorDetector
from repro.discovery import DiscoveryConfig, PfdDiscoverer
from repro.sharding import ShardedDetector, ShardedDiscoverer, ShardedTable

#: (generator name, rows, extra corruption specs) — small enough that the
#: bruteforce strategy stays cheap, varied enough to cover prefix- and
#: token-mode discovery, constant and variable rules, and empty cells.
GENERATORS = [
    ("zip_city_state", 90, [CorruptionSpec("city", 0.05, kind="swap")]),
    ("phone_state", 80, [CorruptionSpec("state", 0.06, kind="case")]),
    ("fullname_gender", 80, [CorruptionSpec("gender", 0.08, kind="swap")]),
    ("employee_ids", 70, [CorruptionSpec("employee_id", 0.05, kind="typo")]),
]

SEEDS = [3, 11, 58]

CONFIG = DiscoveryConfig(min_coverage=0.4, allowed_violation_ratio=0.2)


def shard_sizes(n_rows: int):
    """The mandated sweep: degenerate one-row shards, a ragged small
    size, two halves, and the single-shard identity case."""
    return sorted({1, 7, max(1, n_rows // 2), n_rows})


def dirty_table(name: str, n_rows: int, specs, seed: int):
    """A generator's (already dirty) table with extra injected corruption."""
    dataset = build_dataset(name, n_rows=n_rows, seed=seed)
    dirty, _cells = ErrorInjector(seed=seed + 1).corrupt(dataset.table, specs)
    return dirty


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name,n_rows,specs", GENERATORS, ids=lambda v: str(v))
class TestDifferential:
    def test_discovery_identical(self, name, n_rows, specs, seed):
        table = dirty_table(name, n_rows, specs, seed)
        mono = PfdDiscoverer(CONFIG).discover_with_report(table)
        mono_rules = [pfd.describe() for pfd in mono.pfds]
        mono_accepted = [(r.lhs, r.rhs, r.accepted, r.coverage) for r in mono.reports]
        for shard_rows in shard_sizes(table.n_rows):
            sharded = ShardedTable.from_table(table, shard_rows)
            result = ShardedDiscoverer(CONFIG).discover_with_report(sharded)
            assert [pfd.describe() for pfd in result.pfds] == mono_rules, (
                f"rule set diverged at shard_rows={shard_rows}"
            )
            assert [
                (r.lhs, r.rhs, r.accepted, r.coverage) for r in result.reports
            ] == mono_accepted, f"mining reports diverged at shard_rows={shard_rows}"

    def test_detection_canonically_equal_across_strategies(
        self, name, n_rows, specs, seed
    ):
        table = dirty_table(name, n_rows, specs, seed)
        pfds = PfdDiscoverer(CONFIG).discover(table)
        if not pfds:
            pytest.skip("generator/seed pair discovered no rules")
        detector = ErrorDetector(table)
        by_strategy = {
            strategy: detector.detect_all(pfds, strategy=strategy).canonical_violations()
            for strategy in (
                DetectionStrategy.SCAN,
                DetectionStrategy.INDEX,
                DetectionStrategy.BRUTEFORCE,
            )
        }
        for shard_rows in shard_sizes(table.n_rows):
            sharded = ShardedTable.from_table(table, shard_rows)
            canonical = ShardedDetector(sharded).detect_all(pfds).canonical_violations()
            for strategy, expected in by_strategy.items():
                assert canonical == expected, (
                    f"sharded violations diverged from {strategy} "
                    f"at shard_rows={shard_rows}"
                )

    def test_handwritten_rules_equal(self, name, n_rows, specs, seed):
        """Hand-written rule shapes discovery never emits — notably a
        wildcard LHS on a constant rule, which matches every row — must
        also agree between the engines."""
        table = dirty_table(name, n_rows, specs, seed)
        lhs, rhs = table.column_names()[0], table.column_names()[-1]
        majority = max(
            table.value_counts(rhs).items(), key=lambda item: item[1]
        )[0]
        pfd = PFD.constant(lhs, rhs, name="wild")
        pfd.add_rule({lhs: WILDCARD, rhs: majority})
        expected = (
            ErrorDetector(table).detect(pfd, strategy=DetectionStrategy.SCAN)
        ).canonical_violations()
        assert expected, "probe rule should flag the non-majority rows"
        sharded = ShardedTable.from_table(table, 7)
        assert (
            ShardedDetector(sharded).detect(pfd).canonical_violations() == expected
        )

    def test_detection_equal_with_worker_fanout(self, name, n_rows, specs, seed):
        """The pooled shard-map path (process pool, or its serial
        fallback) must not change the merged statistics."""
        from repro.engine import make_shard_map

        table = dirty_table(name, n_rows, specs, seed)
        pfds = PfdDiscoverer(CONFIG).discover(table)
        if not pfds:
            pytest.skip("generator/seed pair discovered no rules")
        sharded = ShardedTable.from_table(table, max(1, table.n_rows // 3))
        serial = ShardedDetector(sharded).detect_all(pfds).canonical_violations()
        fanned = ShardedTable.from_table(table, max(1, table.n_rows // 3))
        parallel = (
            ShardedDetector(fanned, shard_map=make_shard_map(2))
            .detect_all(pfds)
            .canonical_violations()
        )
        assert parallel == serial
