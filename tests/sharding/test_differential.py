"""Differential tests: sharded execution vs. the monolithic engines.

Randomized dirty tables (the seeded datagen generators, plus extra
injected corruption) run through monolithic and sharded discovery and
detection at shard sizes {1, 7, n_rows // 2, n_rows}; the sharded path
must produce the *identical* rule set and canonically equal violations
against every monolithic strategy.  Each case is fully determined by the
(generator, seed) pair in the test id, so a failure replays with
``pytest -k <test id>``.
"""

from __future__ import annotations

import gc
import tracemalloc

import pytest

from repro.anmat.session import AnmatSession
from repro.datagen import build_dataset
from repro.dataset import Table
from repro.dataset.csvio import read_csv, read_csv_sharded, write_csv
from repro.perf import clear_caches
from repro.pfd import PFD, WILDCARD
from repro.datagen.corruption import CorruptionSpec, ErrorInjector
from repro.detection import DetectionStrategy, ErrorDetector
from repro.discovery import DiscoveryConfig, PfdDiscoverer
from repro.sharding import (
    ShardedDetector,
    ShardedDiscoverer,
    ShardedTable,
    SpillToDiskShardStore,
    make_shard_store,
)

#: (generator name, rows, extra corruption specs) — small enough that the
#: bruteforce strategy stays cheap, varied enough to cover prefix- and
#: token-mode discovery, constant and variable rules, and empty cells.
GENERATORS = [
    ("zip_city_state", 90, [CorruptionSpec("city", 0.05, kind="swap")]),
    ("phone_state", 80, [CorruptionSpec("state", 0.06, kind="case")]),
    ("fullname_gender", 80, [CorruptionSpec("gender", 0.08, kind="swap")]),
    ("employee_ids", 70, [CorruptionSpec("employee_id", 0.05, kind="typo")]),
]

SEEDS = [3, 11, 58]

CONFIG = DiscoveryConfig(min_coverage=0.4, allowed_violation_ratio=0.2)


def shard_sizes(n_rows: int):
    """The mandated sweep: degenerate one-row shards, a ragged small
    size, two halves, and the single-shard identity case."""
    return sorted({1, 7, max(1, n_rows // 2), n_rows})


def dirty_table(name: str, n_rows: int, specs, seed: int):
    """A generator's (already dirty) table with extra injected corruption."""
    dataset = build_dataset(name, n_rows=n_rows, seed=seed)
    dirty, _cells = ErrorInjector(seed=seed + 1).corrupt(dataset.table, specs)
    return dirty


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name,n_rows,specs", GENERATORS, ids=lambda v: str(v))
class TestDifferential:
    def test_discovery_identical(self, name, n_rows, specs, seed):
        table = dirty_table(name, n_rows, specs, seed)
        mono = PfdDiscoverer(CONFIG).discover_with_report(table)
        mono_rules = [pfd.describe() for pfd in mono.pfds]
        mono_accepted = [(r.lhs, r.rhs, r.accepted, r.coverage) for r in mono.reports]
        for shard_rows in shard_sizes(table.n_rows):
            sharded = ShardedTable.from_table(table, shard_rows)
            result = ShardedDiscoverer(CONFIG).discover_with_report(sharded)
            assert [pfd.describe() for pfd in result.pfds] == mono_rules, (
                f"rule set diverged at shard_rows={shard_rows}"
            )
            assert [
                (r.lhs, r.rhs, r.accepted, r.coverage) for r in result.reports
            ] == mono_accepted, f"mining reports diverged at shard_rows={shard_rows}"

    def test_detection_canonically_equal_across_strategies(
        self, name, n_rows, specs, seed
    ):
        table = dirty_table(name, n_rows, specs, seed)
        pfds = PfdDiscoverer(CONFIG).discover(table)
        if not pfds:
            pytest.skip("generator/seed pair discovered no rules")
        detector = ErrorDetector(table)
        by_strategy = {
            strategy: detector.detect_all(pfds, strategy=strategy).canonical_violations()
            for strategy in (
                DetectionStrategy.SCAN,
                DetectionStrategy.INDEX,
                DetectionStrategy.BRUTEFORCE,
            )
        }
        for shard_rows in shard_sizes(table.n_rows):
            sharded = ShardedTable.from_table(table, shard_rows)
            canonical = ShardedDetector(sharded).detect_all(pfds).canonical_violations()
            for strategy, expected in by_strategy.items():
                assert canonical == expected, (
                    f"sharded violations diverged from {strategy} "
                    f"at shard_rows={shard_rows}"
                )

    def test_handwritten_rules_equal(self, name, n_rows, specs, seed):
        """Hand-written rule shapes discovery never emits — notably a
        wildcard LHS on a constant rule, which matches every row — must
        also agree between the engines."""
        table = dirty_table(name, n_rows, specs, seed)
        lhs, rhs = table.column_names()[0], table.column_names()[-1]
        majority = max(
            table.value_counts(rhs).items(), key=lambda item: item[1]
        )[0]
        pfd = PFD.constant(lhs, rhs, name="wild")
        pfd.add_rule({lhs: WILDCARD, rhs: majority})
        expected = (
            ErrorDetector(table).detect(pfd, strategy=DetectionStrategy.SCAN)
        ).canonical_violations()
        assert expected, "probe rule should flag the non-majority rows"
        sharded = ShardedTable.from_table(table, 7)
        assert (
            ShardedDetector(sharded).detect(pfd).canonical_violations() == expected
        )

    def test_detection_equal_with_worker_fanout(self, name, n_rows, specs, seed):
        """The pooled shard-map path (process pool, or its serial
        fallback) must not change the merged statistics."""
        from repro.engine import make_shard_map

        table = dirty_table(name, n_rows, specs, seed)
        pfds = PfdDiscoverer(CONFIG).discover(table)
        if not pfds:
            pytest.skip("generator/seed pair discovered no rules")
        sharded = ShardedTable.from_table(table, max(1, table.n_rows // 3))
        serial = ShardedDetector(sharded).detect_all(pfds).canonical_violations()
        fanned = ShardedTable.from_table(table, max(1, table.n_rows // 3))
        parallel = (
            ShardedDetector(fanned, shard_map=make_shard_map(2))
            .detect_all(pfds)
            .canonical_violations()
        )
        assert parallel == serial


# -- bounded-memory differential: the out-of-core session ----------------------
#
# The acceptance bar for never-materialized sessions: a 256k-row upload
# through a disk-backed store must run the whole profile → discover →
# detect workflow with a tracemalloc peak below 40% of what merely
# *loading* the table into memory costs — while producing exactly the
# monolithic rule set and canonical violations, on every store backend.

OOC_ROWS = 256_000
OOC_SHARD_ROWS = 16_000
OOC_SEED = 23
#: the spill peak must stay below this fraction of the materialized
#: table's tracemalloc footprint
OOC_PEAK_RATIO_CEILING = 0.40


@pytest.fixture(scope="module")
def ooc_csv(tmp_path_factory):
    """The 256k-row dirty CSV, generated once per module."""
    path = tmp_path_factory.mktemp("ooc") / "zip_city_state_256k.csv"
    dataset = build_dataset("zip_city_state", n_rows=OOC_ROWS, seed=OOC_SEED)
    write_csv(dataset.table, path)
    del dataset
    gc.collect()
    return path


def _run_workflow(table):
    """profile → discover → confirm → detect through the session API;
    returns the rule descriptions and canonical violations."""
    session = AnmatSession(dataset_name="ooc-differential")
    session.load_table(table)
    session.set_parameters(min_coverage=0.5)
    session.run_profiling()
    result = session.run_discovery()
    session.confirm_all()
    report = session.run_detection()
    rules = [pfd.describe() for pfd in result.pfds]
    canonical = report.canonical_violations()
    session.close()
    return rules, canonical


@pytest.fixture(scope="module")
def ooc_monolithic(ooc_csv):
    """Rules and canonical violations of the fully materialized run."""
    rules, canonical = _run_workflow(read_csv(ooc_csv))
    clear_caches()
    gc.collect()
    return rules, canonical


class TestOutOfCoreBoundedMemory:
    def test_spill_run_bounded_and_identical(
        self, ooc_csv, ooc_monolithic, monkeypatch
    ):
        """The spill-store session must never materialize the table and
        must peak below 40% of the materialized footprint."""
        # the acceptance criterion verbatim: no `to_table()` anywhere on
        # the session path
        def _forbidden(self):
            raise AssertionError("to_table() called on the out-of-core session path")

        monkeypatch.setattr(ShardedTable, "to_table", _forbidden)

        clear_caches()
        gc.collect()
        tracemalloc.start()
        table = read_csv(ooc_csv)
        table_peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()
        del table
        clear_caches()
        gc.collect()

        tracemalloc.start()
        store = SpillToDiskShardStore(cache_shards=2)
        sharded = read_csv_sharded(ooc_csv, OOC_SHARD_ROWS, store=store)
        rules, canonical = _run_workflow(sharded)
        spill_peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

        mono_rules, mono_canonical = ooc_monolithic
        assert rules == mono_rules
        assert canonical == mono_canonical
        ratio = spill_peak / table_peak
        assert ratio < OOC_PEAK_RATIO_CEILING, (
            f"spill-store session peaked at {spill_peak / 1e6:.1f}MB — "
            f"{ratio:.2f}x the {table_peak / 1e6:.1f}MB materialized footprint "
            f"(ceiling {OOC_PEAK_RATIO_CEILING})"
        )

    @pytest.mark.parametrize("kind", ["memory", "object"])
    def test_backend_identical_to_monolithic(self, kind, ooc_csv, ooc_monolithic):
        """The remaining store backends produce the same rules and
        canonical violations as the monolithic run (the spill backend is
        covered by the traced test above)."""
        store = make_shard_store(kind)
        sharded = read_csv_sharded(ooc_csv, OOC_SHARD_ROWS, store=store)
        rules, canonical = _run_workflow(sharded)
        mono_rules, mono_canonical = ooc_monolithic
        assert rules == mono_rules
        assert canonical == mono_canonical
        clear_caches()
        gc.collect()
