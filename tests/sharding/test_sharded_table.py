"""Unit tests for ShardedTable and the mergeable statistics."""

from __future__ import annotations

import pytest

from repro.dataset import Table
from repro.dataset.rowids import row_ids
from repro.errors import TableError
from repro.sharding import (
    ShardedTable,
    extract_pair_groups,
    merge_pair_groups,
)


def make_table(n_rows: int) -> Table:
    return Table.from_rows(
        ["code", "label"],
        [[f"{i % 5:03d}", f"L{i % 3}"] for i in range(n_rows)],
    )


class TestShardedTable:
    def test_from_table_partitions_in_order(self):
        table = make_table(10)
        sharded = ShardedTable.from_table(table, 4)
        assert sharded.n_shards == 3
        assert [s.n_rows for s in sharded.shards] == [4, 4, 2]
        assert sharded.n_rows == 10
        assert [sharded.offset_of(i) for i in range(3)] == [0, 4, 8]

    def test_round_trip_to_table(self):
        table = make_table(11)
        assert ShardedTable.from_table(table, 3).to_table() == table

    def test_single_and_oversized_shard(self):
        table = make_table(6)
        assert ShardedTable.from_table(table, 6).n_shards == 1
        assert ShardedTable.from_table(table, 100).n_shards == 1
        assert ShardedTable.from_table(table, 1).n_shards == 6

    def test_zero_row_table_becomes_one_empty_shard(self):
        sharded = ShardedTable.from_table(Table.empty(["a", "b"]), 5)
        assert sharded.n_shards == 1
        assert sharded.n_rows == 0
        assert sharded.to_table().n_rows == 0

    def test_invalid_shard_rows_rejected(self):
        with pytest.raises(TableError):
            ShardedTable.from_table(make_table(4), 0)

    def test_mismatched_shard_schemas_rejected(self):
        a = Table.from_rows(["x"], [["1"]])
        b = Table.from_rows(["y"], [["2"]])
        with pytest.raises(TableError):
            ShardedTable([a, b])
        with pytest.raises(TableError):
            ShardedTable([])

    def test_locate_and_global_row_are_inverse(self):
        sharded = ShardedTable.from_table(make_table(10), 3)
        for global_row in range(10):
            shard_index, local_row = sharded.locate(global_row)
            assert sharded.global_row(shard_index, local_row) == global_row
        with pytest.raises(TableError):
            sharded.locate(10)

    def test_column_concat_matches_monolithic_column(self):
        table = make_table(9)
        sharded = ShardedTable.from_table(table, 2)
        assert sharded.column_concat("code") == table.column("code")

    def test_merged_artifact_invalidated_by_shard_mutation(self):
        sharded = ShardedTable.from_table(make_table(8), 4)
        builds = []
        build = lambda: builds.append(1) or sharded.shards  # noqa: E731
        sharded.merged_artifact("k", build)
        sharded.merged_artifact("k", build)
        assert len(builds) == 1  # cached
        sharded.store.get(0).set_cell(0, "code", "999")
        sharded.merged_artifact("k", build)
        assert len(builds) == 2  # version change rebuilt


class TestPairGroups:
    def test_extract_globalizes_rows(self):
        groups = extract_pair_groups(["a", "b", "a"], ["x", "y", "z"], offset=10)
        assert groups == {
            "a": {"x": row_ids([10]), "z": row_ids([12])},
            "b": {"y": row_ids([11])},
        }

    def test_merge_concatenates_ascending(self):
        first = extract_pair_groups(["a", "a"], ["x", "x"], offset=0)
        second = extract_pair_groups(["a", "c"], ["x", "y"], offset=2)
        merged = merge_pair_groups([first, second])
        assert list(merged.groups["a"]["x"]) == [0, 1, 2]
        assert merged.sorted_values == ["a", "c"]

    def test_merge_does_not_alias_shard_lists(self):
        first = extract_pair_groups(["a"], ["x"], offset=0)
        merged = merge_pair_groups([first])
        merged.groups["a"]["x"].append(99)
        assert list(first["a"]["x"]) == [0]
