"""Randomized equivalence of the tree reductions and the left folds.

The sharded engines replaced their driver-side left folds
(:func:`merge_pair_groups`, :func:`merge_tokenizations`) with pairwise
tree reductions that can fan each level out across the worker pool.
Correctness rests on one invariant: merging *adjacent* partials keeps
row lists ascending at every level, so the tree result is value-equal
to the fold for any shard count.  These tests prove that over random
shardings — serial, through a serial ``merge_map``, and through a real
pool-backed shard map — and pin that level-0 inputs (potentially cached
artifacts) are never mutated.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.pool import make_shard_map, serial_map
from repro.engine.worker_pool import WorkerPool
from repro.sharding.stats import (
    extract_pair_groups,
    merge_pair_groups,
    merge_tokenizations,
    tree_merge_pair_groups,
    tree_merge_tokenizations,
)
from repro.discovery.inverted_index import ColumnTokenization

SHARD_COUNTS = [0, 1, 2, 3, 5, 8, 13]


def random_column(rng, n_rows, alphabet):
    return [rng.choice(alphabet) for _ in range(n_rows)]


def random_sharding(rng, n_rows, n_shards):
    """Split ``range(n_rows)`` into ``n_shards`` contiguous runs (some
    possibly empty) and return their (start, stop) bounds."""
    cuts = sorted(rng.randint(0, n_rows) for _ in range(n_shards - 1))
    bounds = []
    start = 0
    for cut in cuts + [n_rows]:
        bounds.append((start, cut))
        start = cut
    return bounds


def groups_as_plain(merged):
    """MergedPairGroups → comparable nested dict with list row ids."""
    return {
        lhs: {rhs: list(rows) for rhs, rows in by_rhs.items()}
        for lhs, by_rhs in merged.groups.items()
    }


def shard_partials(rng, n_shards, n_rows=60):
    lhs = random_column(rng, n_rows, ["a", "b", "c", "d"])
    rhs = random_column(rng, n_rows, ["x", "y", "z"])
    return [
        extract_pair_groups(lhs[start:stop], rhs[start:stop], start)
        for start, stop in random_sharding(rng, n_rows, n_shards)
    ]


def token_partials(rng, n_shards, n_rows=40):
    values = random_column(rng, n_rows, ["alpha", "beta", "gamma", ""])
    return [
        ColumnTokenization.extract(values[start:stop], "token", 3).row_tokens
        for start, stop in random_sharding(rng, n_rows, n_shards)
    ]


@pytest.mark.parametrize("n_shards", [c for c in SHARD_COUNTS if c > 0])
@pytest.mark.parametrize("seed", [0, 7, 42])
def test_tree_merge_pair_groups_equals_fold(n_shards, seed):
    partials = shard_partials(random.Random(seed), n_shards)
    fold = merge_pair_groups(partials)
    tree = tree_merge_pair_groups(partials)
    assert groups_as_plain(tree) == groups_as_plain(fold)
    # row ids stayed ascending through every level
    for by_rhs in tree.groups.values():
        for rows in by_rhs.values():
            assert list(rows) == sorted(rows)


@pytest.mark.parametrize("n_shards", [c for c in SHARD_COUNTS if c > 0])
@pytest.mark.parametrize("seed", [0, 7, 42])
def test_tree_merge_tokenizations_equals_fold(n_shards, seed):
    partials = token_partials(random.Random(seed), n_shards)
    fold = merge_tokenizations("token", 3, partials)
    tree = tree_merge_tokenizations("token", 3, partials)
    assert tree.row_tokens == fold.row_tokens
    assert tree.mode == fold.mode and tree.ngram_size == fold.ngram_size


def test_empty_input_merges_to_empty():
    assert groups_as_plain(tree_merge_pair_groups([])) == {}
    assert tree_merge_tokenizations("token", 3, []).row_tokens == []


def test_single_shard_result_does_not_alias_the_input():
    partials = shard_partials(random.Random(1), 1)
    tree = tree_merge_pair_groups(partials)
    some_lhs = next(iter(tree.groups))
    some_rhs = next(iter(tree.groups[some_lhs]))
    tree.groups[some_lhs][some_rhs].append(10_000)
    assert 10_000 not in partials[0][some_lhs][some_rhs]

    rows = token_partials(random.Random(1), 1)
    tokenization = tree_merge_tokenizations("token", 3, rows)
    tokenization.row_tokens.append(("sentinel",))
    assert rows[0][-1] != ("sentinel",)


@pytest.mark.parametrize("n_shards", [2, 5, 8])
def test_level0_partials_are_never_mutated(n_shards):
    partials = shard_partials(random.Random(3), n_shards)
    snapshots = [
        {lhs: {rhs: list(rows) for rhs, rows in by_rhs.items()}
         for lhs, by_rhs in groups.items()}
        for groups in partials
    ]
    tree_merge_pair_groups(partials)
    observed = [
        {lhs: {rhs: list(rows) for rhs, rows in by_rhs.items()}
         for lhs, by_rhs in groups.items()}
        for groups in partials
    ]
    assert observed == snapshots

    token_rows = token_partials(random.Random(3), n_shards)
    token_snapshots = [list(rows) for rows in token_rows]
    tree_merge_tokenizations("token", 3, token_rows)
    assert [list(rows) for rows in token_rows] == token_snapshots


@pytest.mark.parametrize("n_shards", [2, 3, 7, 10])
def test_tree_merge_through_serial_merge_map(n_shards):
    rng = random.Random(11)
    partials = shard_partials(rng, n_shards)
    expected = groups_as_plain(merge_pair_groups(partials))
    observed = tree_merge_pair_groups(partials, merge_map=serial_map)
    assert groups_as_plain(observed) == expected

    token_rows = token_partials(rng, n_shards)
    assert (
        tree_merge_tokenizations("token", 3, token_rows, merge_map=serial_map).row_tokens
        == merge_tokenizations("token", 3, token_rows).row_tokens
    )


def test_tree_merge_through_pool_backed_shard_map():
    rng = random.Random(23)
    partials = shard_partials(rng, 9)
    expected = groups_as_plain(merge_pair_groups(partials))
    with WorkerPool(2) as pool:
        shard_map = make_shard_map(2, pool=pool)
        assert getattr(shard_map, "pool_backed", False)
        observed = tree_merge_pair_groups(partials, merge_map=shard_map)
        assert groups_as_plain(observed) == expected
        # level-0 partials survive a process fan-out untouched too
        # (workers get pickled copies; the driver's dicts are not written)
        assert groups_as_plain(merge_pair_groups(partials)) == expected
