"""Unit and integration tests for the prefetching shard reader.

:class:`~repro.sharding.prefetch.PrefetchingFetcher` overlaps shard
GET + checksum verification with compute.  These tests pin its contract
directly — bounded lookahead, per-index delivery, out-of-order demand
fetches, error locality, close semantics, timer reporting — and then
through :class:`~repro.sharding.object_store.ObjectShardStore`, where a
prefetching store must return byte-identical shards to a sequential one
and still surface checksum failures on the shard that rotted.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.dataset import Table
from repro.errors import TableError
from repro.perf.timers import StageTimers
from repro.sharding import (
    LocalObjectClient,
    ObjectShardStore,
    PrefetchingFetcher,
    RetryPolicy,
)
from repro.sharding.remote import ObjectStoreError


def make_fetch(blobs, delay=0.0, calls=None, fail_on=()):
    """A fake blocking fetch over ``blobs[index]``."""

    def fetch(index):
        if calls is not None:
            calls.append(index)
        if delay:
            time.sleep(delay)
        if index in fail_on:
            raise ValueError(f"shard {index} is poisoned")
        return blobs[index]

    return fetch


BLOBS = [f"shard-{i}".encode() for i in range(8)]


# -- fetcher unit tests -----------------------------------------------------------


def test_depth_must_be_positive():
    with pytest.raises(TableError, match="depth"):
        PrefetchingFetcher(make_fetch(BLOBS), depth=0)


def test_sequential_scan_returns_every_shard_once():
    calls = []
    with PrefetchingFetcher(make_fetch(BLOBS, calls=calls), depth=3) as fetcher:
        data = [fetcher.get(i, len(BLOBS)) for i in range(len(BLOBS))]
    assert data == BLOBS
    # every shard fetched exactly once: prefetched bytes are handed out,
    # not fetched again on consumption
    assert sorted(calls) == list(range(len(BLOBS)))


def test_sequential_scan_with_compute_gap_hits_the_prefetcher():
    with PrefetchingFetcher(make_fetch(BLOBS), depth=2) as fetcher:
        data = []
        for i in range(len(BLOBS)):
            data.append(fetcher.get(i, len(BLOBS)))
            time.sleep(0.01)  # "compute" on shard i while i+1..i+2 fetch
    assert data == BLOBS
    # shard 0 is always a demand fetch; with instant fetches and a
    # compute gap, every later shard is already in hand
    assert fetcher.prefetch_hits >= len(BLOBS) - 2
    assert fetcher.demand_fetches >= 1
    assert fetcher.timers.count("prefetch_hit") == fetcher.prefetch_hits
    assert fetcher.timers.count("fetch_wait") == len(BLOBS)


def test_lookahead_is_bounded_by_depth_and_horizon():
    with PrefetchingFetcher(make_fetch(BLOBS, delay=0.05), depth=2) as fetcher:
        fetcher.get(0, len(BLOBS))
        assert set(fetcher._futures) == {1, 2}
        # near the horizon nothing past the last shard is scheduled
        fetcher.get(6, len(BLOBS))
        assert 8 not in fetcher._futures
    assert fetcher._futures == {}


def test_out_of_order_access_is_a_demand_fetch():
    calls = []
    with PrefetchingFetcher(make_fetch(BLOBS, calls=calls), depth=2) as fetcher:
        assert fetcher.get(5, len(BLOBS)) == BLOBS[5]
        assert fetcher.demand_fetches == 1
        # jumping backwards (maintenance reads dirty shards in any order)
        assert fetcher.get(1, len(BLOBS)) == BLOBS[1]
    assert 5 in calls and 1 in calls


def test_fetch_error_raises_from_the_owning_get():
    with PrefetchingFetcher(make_fetch(BLOBS, fail_on={2}), depth=3) as fetcher:
        assert fetcher.get(0, len(BLOBS)) == BLOBS[0]  # schedules 1..3
        assert fetcher.get(1, len(BLOBS)) == BLOBS[1]
        with pytest.raises(ValueError, match="shard 2 is poisoned"):
            fetcher.get(2, len(BLOBS))
        # the pipeline survives: later shards still arrive
        assert fetcher.get(3, len(BLOBS)) == BLOBS[3]


def test_close_is_idempotent_and_degrades_to_sequential():
    calls = []
    fetcher = PrefetchingFetcher(make_fetch(BLOBS, calls=calls), depth=2)
    fetcher.get(0, len(BLOBS))
    fetcher.close()
    fetcher.close()
    assert fetcher.closed
    before = len(calls)
    assert fetcher.get(4, len(BLOBS)) == BLOBS[4]
    assert calls[before:] == [4], "closed fetcher fetches on the caller thread"
    assert fetcher._futures == {}


def test_close_consumes_in_flight_exceptions():
    started = threading.Event()

    def slow_fail(index):
        started.set()
        time.sleep(0.02)
        raise ValueError("boom")

    fetcher = PrefetchingFetcher(slow_fail, depth=1)
    fetcher._schedule(1)
    started.wait(timeout=2.0)
    fetcher.close()  # must join and swallow the pending failure


def test_stale_future_from_an_earlier_pass_is_still_valid():
    with PrefetchingFetcher(make_fetch(BLOBS), depth=2) as fetcher:
        first = [fetcher.get(i, len(BLOBS)) for i in range(4)]
        # a second pass over the same shards (objects are immutable, so a
        # leftover future for shard 4/5 from pass one may be consumed)
        second = [fetcher.get(i, len(BLOBS)) for i in range(4)]
    assert first == second == BLOBS[:4]


def test_external_timers_receive_the_stages():
    timers = StageTimers()
    with PrefetchingFetcher(make_fetch(BLOBS), depth=2, timers=timers) as fetcher:
        for i in range(4):
            fetcher.get(i, len(BLOBS))
            time.sleep(0.005)
    assert timers.count("fetch_wait") == 4
    assert timers.count("prefetch_hit") == fetcher.prefetch_hits


# -- through the object store -----------------------------------------------------


def make_shards(n_shards, rows_per_shard=4):
    shards = []
    for s in range(n_shards):
        rows = [
            [f"k{s}-{r}", f"v{(s * rows_per_shard + r) % 5}"]
            for r in range(rows_per_shard)
        ]
        shards.append(Table.from_rows(["key", "value"], rows))
    return shards


def filled_store(tmp_path, name, prefetch_depth, shards, **kwargs):
    store = ObjectShardStore(
        client=LocalObjectClient(tmp_path / name),
        owns_client=True,
        prefetch_depth=prefetch_depth,
        **kwargs,
    )
    for shard in shards:
        store.append(shard)
    return store


def test_store_invalid_prefetch_depth_rejected(tmp_path):
    with pytest.raises(TableError, match="prefetch_depth"):
        ObjectShardStore(
            client=LocalObjectClient(tmp_path / "bad"), prefetch_depth=-1
        )


def test_prefetching_store_reads_identical_shards(tmp_path):
    shards = make_shards(6)
    plain = filled_store(tmp_path, "plain", 0, shards)
    pre = filled_store(tmp_path, "pre", 3, shards, cache_shards=2)
    try:
        for index in range(6):
            expected = plain.get(index)
            observed = pre.get(index)
            assert observed.column("key") == expected.column("key")
            assert observed.column("value") == expected.column("value")
        assert pre.prefetch_hits + pre._prefetcher.demand_fetches >= 1
        assert pre.timers.count("fetch_wait") > 0
        assert plain.prefetch_hits == 0
    finally:
        plain.close()
        pre.close()


def test_prefetching_store_sequential_scan_gets_hits(tmp_path):
    shards = make_shards(8)
    store = filled_store(tmp_path, "scan", 3, shards, cache_shards=2)
    try:
        # force real reads (appended shards start LRU-resident)
        store._loaded.clear()
        for index in range(8):
            store.get(index)
            time.sleep(0.005)  # compute stand-in
        assert store.prefetch_hits > 0
    finally:
        store.close()


def test_checksum_failure_surfaces_on_the_rotten_shard(tmp_path):
    shards = make_shards(4)
    client = LocalObjectClient(tmp_path / "rot")
    store = ObjectShardStore(
        client=client,
        owns_client=True,
        prefetch_depth=2,
        cache_shards=1,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
    )
    try:
        for shard in shards:
            store.append(shard)
        store._loaded.clear()
        # rot shard 2's object in place (its recorded digest no longer
        # matches); the corruption is persistent, so retries exhaust
        key = store._key(2)
        client.put(key, client.get(key) + b"tampered")
        assert store.get(0).column("key") == shards[0].column("key")
        assert store.get(1).column("key") == shards[1].column("key")
        with pytest.raises(ObjectStoreError, match="checksum"):
            store.get(2)
        # error locality: the neighbouring shard still reads fine
        assert store.get(3).column("key") == shards[3].column("key")
    finally:
        store.close()


def test_store_close_joins_the_prefetcher(tmp_path):
    shards = make_shards(4)
    store = filled_store(tmp_path, "close", 2, shards)
    store._loaded.clear()
    store.get(0)
    store.close()
    assert store._prefetcher.closed
    store.close()  # idempotent
