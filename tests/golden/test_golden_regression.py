"""Golden-file regression tests for the paper's running examples.

Each dataset in :mod:`repro.datagen.paper_examples` has a committed
snapshot of its discovered rules and detected violations under
``tests/golden/``.  A refactor that silently changes paper-facing
semantics — different tableaux, different suspects — fails here with a
diff against the snapshot.  After an *intended* change, regenerate with::

    PYTHONPATH=src python -m pytest tests/golden --regen-golden

and review the snapshot diff like any other code change.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datagen.paper_examples import name_table_d1, zip_table_d2
from repro.detection import ErrorDetector
from repro.discovery import DiscoveryConfig, PfdDiscoverer
from repro.sharding import ShardedDetector, ShardedDiscoverer, ShardedTable

GOLDEN_DIR = Path(__file__).parent

#: the two user-facing parameters, opened up so the four-row paper
#: tables discover their λ-style rules (matching the CLI walkthroughs)
CONFIG = DiscoveryConfig(min_coverage=0.4, allowed_violation_ratio=0.3)

DATASETS = {
    "paper_d1_name": name_table_d1,
    "paper_d2_zip": zip_table_d2,
}


def render_snapshot(builder) -> str:
    """The canonical text form of one dataset's discovery + detection
    output (stable across emission order and strategy)."""
    dataset = builder()
    table = dataset.table
    result = PfdDiscoverer(CONFIG).discover_with_report(table)
    report = ErrorDetector(table).detect_all(result.pfds)
    lines = [f"# {dataset.name}: discovered rules and violations", ""]
    lines.append("## rules")
    for pfd in result.pfds:
        lines.append(pfd.describe())
    lines.append("")
    lines.append("## violations (canonical)")
    for violation in report.canonical_violations():
        lines.append(violation.describe())
    lines.append("")
    lines.append("## suspect cells")
    for row, attribute in sorted(report.suspect_cells()):
        lines.append(f"({row}, {attribute})")
    return "\n".join(lines) + "\n"


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_paper_example_matches_golden_snapshot(name, request):
    snapshot = render_snapshot(DATASETS[name])
    path = GOLDEN_DIR / f"{name}.golden.txt"
    if request.config.getoption("--regen-golden"):
        path.write_text(snapshot)
        return
    assert path.exists(), (
        f"missing golden file {path}; generate it with "
        "`python -m pytest tests/golden --regen-golden`"
    )
    assert snapshot == path.read_text(), (
        f"{name} diverged from its golden snapshot; if the change is "
        "intended, regenerate with --regen-golden and review the diff"
    )


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_paper_example_sharded_run_matches_snapshot(name):
    """The sharded engines reproduce the snapshotted semantics too —
    down to one-row shards."""
    dataset = DATASETS[name]()
    table = dataset.table
    mono = PfdDiscoverer(CONFIG).discover_with_report(table)
    mono_report = ErrorDetector(table).detect_all(mono.pfds)
    sharded = ShardedTable.from_table(table, 1)
    result = ShardedDiscoverer(CONFIG).discover_with_report(sharded)
    assert [p.describe() for p in result.pfds] == [p.describe() for p in mono.pfds]
    report = ShardedDetector(sharded).detect_all(result.pfds)
    assert report.canonical_violations() == mono_report.canonical_violations()
