"""Graceful degradation when numpy is unavailable or kernels are off.

The kernels are an optional accelerator: ``use_kernels="on"`` without
numpy must degrade to the scalar path (the plan records the downgrade
and warns), ``"auto"`` must resolve against actual availability, and a
process where numpy cannot even be imported must still import
``repro.kernels`` and run discovery end to end.
"""

from __future__ import annotations

import importlib
import sys
import warnings

import pytest

from repro.datagen import build_dataset
from repro.discovery import DiscoveryConfig, PfdDiscoverer
from repro.engine.plan import PlanWarning, plan_run
from repro.errors import DiscoveryError
from repro.kernels import runtime
from repro.kernels.runtime import (
    default_kernel_mode,
    forced_kernel_mode,
    kernels_enabled,
)
from repro.perf import clear_caches
from repro.sharding import ShardedDetector, ShardedTable


class TestModeResolution:
    def test_off_is_always_off(self):
        assert kernels_enabled("off") is False

    def test_on_and_auto_track_numpy(self):
        assert kernels_enabled("on") is runtime.HAVE_NUMPY
        assert kernels_enabled("auto") is runtime.HAVE_NUMPY
        assert kernels_enabled(None) is kernels_enabled(default_kernel_mode())

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            kernels_enabled("fast")
        with pytest.raises(ValueError):
            with forced_kernel_mode("fast"):
                pass  # pragma: no cover

    def test_forced_mode_pins_auto_but_not_explicit(self):
        with forced_kernel_mode("off"):
            assert kernels_enabled("auto") is False
            assert kernels_enabled(None) is False
            # explicit requests win over the pinned default
            assert kernels_enabled("on") is runtime.HAVE_NUMPY
            assert kernels_enabled("off") is False
        assert default_kernel_mode() == "auto"

    def test_config_rejects_bad_mode(self):
        with pytest.raises(DiscoveryError):
            DiscoveryConfig(use_kernels="fast")


class TestNumpyAbsent:
    """Simulate a numpy-less process by flipping the runtime flag (every
    kernel call site resolves through :func:`kernels_enabled` at call
    time, so this is exactly the switch a real absence would flip)."""

    def test_on_degrades_to_scalar(self, monkeypatch):
        monkeypatch.setattr(runtime, "HAVE_NUMPY", False)
        assert kernels_enabled("on") is False
        assert kernels_enabled("auto") is False

    def test_discovery_still_runs_identically(self, monkeypatch):
        table = build_dataset("zip_city_state", n_rows=60, seed=4).table
        config = DiscoveryConfig(
            min_coverage=0.4, allowed_violation_ratio=0.2, use_kernels="off"
        )
        clear_caches()
        expected = [
            p.describe()
            for p in PfdDiscoverer(config).discover_with_report(table).pfds
        ]
        monkeypatch.setattr(runtime, "HAVE_NUMPY", False)
        clear_caches()
        degraded = PfdDiscoverer(
            config.with_overrides(use_kernels="on")
        ).discover_with_report(table)
        assert [p.describe() for p in degraded.pfds] == expected

    def test_plan_records_downgrade_and_warns(self, monkeypatch):
        monkeypatch.setattr(runtime, "HAVE_NUMPY", False)
        monkeypatch.setattr("repro.engine.plan.HAVE_NUMPY", False)
        with pytest.warns(PlanWarning, match="numpy is unavailable"):
            plan = plan_run("discovery", 100, DiscoveryConfig(use_kernels="on"))
        assert plan.use_kernels == "off"
        assert any("scalar path" in d for d in plan.decisions)

    def test_plan_auto_resolution_is_recorded(self):
        plan = plan_run("discovery", 100, DiscoveryConfig())
        resolved = "on" if runtime.HAVE_NUMPY else "off"
        assert plan.use_kernels == resolved
        assert any(
            d.startswith("use_kernels=auto resolves to") for d in plan.decisions
        )
        assert f"kernels={resolved}" in plan.describe()


class TestImportTimeFallback:
    def test_runtime_imports_without_numpy(self, monkeypatch):
        """Reload the runtime with numpy blocked: the import must
        degrade, not fail, and mode resolution must report kernels
        unavailable."""
        monkeypatch.delitem(sys.modules, "numpy", raising=False)
        monkeypatch.setitem(sys.modules, "numpy", None)
        try:
            importlib.reload(runtime)
            assert runtime.HAVE_NUMPY is False
            assert runtime.np is None
            assert runtime.kernels_enabled("on") is False
            assert runtime.kernels_enabled("auto") is False
            assert runtime.kernels_enabled("off") is False
        finally:
            monkeypatch.undo()
            importlib.reload(runtime)
        assert runtime.HAVE_NUMPY is (sys.modules.get("numpy") is not None)


class TestShardedDetectorKnob:
    def test_detector_modes_agree(self):
        dataset = build_dataset("zip_city_state", n_rows=60, seed=9)
        config = DiscoveryConfig(min_coverage=0.4, allowed_violation_ratio=0.2)
        pfds = PfdDiscoverer(config).discover(dataset.table)
        assert pfds, "fixture dataset should yield rules"
        reports = {}
        for mode in ("off", "on", "auto"):
            clear_caches()
            sharded = ShardedTable.from_table(dataset.table, 7)
            detector = ShardedDetector(sharded, use_kernels=mode)
            reports[mode] = detector.detect_all(pfds).canonical_violations()
        assert reports["on"] == reports["off"]
        assert reports["auto"] == reports["off"]

    def test_detector_rejects_bad_mode(self):
        sharded = ShardedTable.from_table(
            build_dataset("zip_city_state", n_rows=20, seed=1).table, 5
        )
        with pytest.raises(ValueError):
            ShardedDetector(sharded, use_kernels="fast")


def test_no_warning_when_auto_without_numpy(monkeypatch):
    """``auto`` silently resolves; only an explicit unfulfillable ``on``
    warns."""
    monkeypatch.setattr(runtime, "HAVE_NUMPY", False)
    monkeypatch.setattr("repro.engine.plan.HAVE_NUMPY", False)
    with warnings.catch_warnings():
        warnings.simplefilter("error", PlanWarning)
        plan = plan_run("discovery", 100, DiscoveryConfig(use_kernels="auto"))
    assert plan.use_kernels == "off"
