"""Unit tests of the columnar kernel primitives.

Each kernel's ordering/tie-break contract is pinned here directly —
encoder code assignment, batch-matcher soundness against the NFA,
pair-group key orders (including the inner-order counterexample that
distinguishes first-occurrence-within-group from global code order),
and triple-exact batch tokenization.
"""

from __future__ import annotations

import random

import pytest

from repro.dataset.rowids import row_ids
from repro.discovery.inverted_index import ColumnTokenization
from repro.kernels.encoder import (
    ALL_CLASS_BITS,
    CLASS_BITS,
    ColumnEncoding,
    encode_column,
    signature_bits,
)
from repro.kernels.groupby import pair_groups_kernel
from repro.kernels.match import batch_matching_values, batch_verdicts, pattern_class_mask
from repro.kernels.tokenize import batch_tokenize, tokenization_from_encoding
from repro.patterns import parse_pattern
from repro.patterns.alphabet import CharClass
from repro.perf.memo import MatchMemo
from repro.sharding.stats import extract_pair_groups

np = pytest.importorskip("numpy")


class TestEncoder:
    def test_codes_are_first_appearance_order(self):
        encoding = encode_column(["b", "a", "b", "c", "a"])
        assert encoding.distinct == ["b", "a", "c"]
        assert encoding.codes.tolist() == [0, 1, 0, 2, 1]
        assert encoding.codes.dtype == np.int32

    def test_rows_by_code_partition(self):
        values = ["x", "y", "x", "z", "y", "x"]
        encoding = encode_column(values)
        rows = encoding.rows_by_code()
        assert [r.tolist() for r in rows] == [[0, 2, 5], [1, 4], [3]]
        assert encoding.counts().tolist() == [3, 2, 1]

    def test_empty_column(self):
        encoding = encode_column([])
        assert encoding.n_rows == 0
        assert encoding.n_distinct == 0
        assert encoding.rows_by_code() == []

    def test_lengths_and_signatures(self):
        encoding = encode_column(["Ab1", "", "??"])
        assert encoding.lengths().tolist() == [3, 0, 2]
        upper, lower, digit, symbol = (
            CLASS_BITS[CharClass.UPPER],
            CLASS_BITS[CharClass.LOWER],
            CLASS_BITS[CharClass.DIGIT],
            CLASS_BITS[CharClass.SYMBOL],
        )
        assert encoding.signatures().tolist() == [upper | lower | digit, 0, symbol]

    def test_signature_bits_unicode(self):
        # the paper's alphabet is ASCII: anything else is a Symbol
        assert signature_bits("É") == CLASS_BITS[CharClass.SYMBOL]
        assert signature_bits("雪") == CLASS_BITS[CharClass.SYMBOL]
        assert signature_bits("A1") == (
            CLASS_BITS[CharClass.UPPER] | CLASS_BITS[CharClass.DIGIT]
        )


class TestBatchMatcher:
    PATTERNS = ["\\D{2}", "90\\D{3}", "\\LU{2}", "\\A{3}", "xy", "\\D+\\S", "\\LL{3}"]

    def _values(self):
        rng = random.Random(7)
        alphabet = "AaBb01 ?-É雪"
        values = [""]
        for _ in range(300):
            n = rng.randint(1, 8)
            values.append("".join(rng.choice(alphabet) for _ in range(n)))
        values += ["90210", "xy", "AA", "Aaa", "90", "012x"]
        return values

    @pytest.mark.parametrize("text", PATTERNS)
    def test_verdicts_equal_nfa(self, text):
        pattern = parse_pattern(text)
        values = self._values()
        expected = [pattern.matches(v) for v in values]
        assert batch_verdicts(pattern, values) == expected
        # small batches take the scalar loop, large ones the numpy path;
        # both must agree with the NFA
        assert batch_verdicts(pattern, values[:5]) == expected[:5]

    def test_memo_tables_shared_with_scalar_path(self):
        pattern = parse_pattern("\\D{5}")
        memo = MatchMemo()
        values = ["90210", "abcde", "12345"]
        verdicts = batch_verdicts(pattern, values, memo=memo)
        assert verdicts == [True, False, True]
        # the scalar matcher reads the same table: no new misses
        matches = memo.matcher(pattern)
        before_misses = memo.misses
        assert [matches(v) for v in values] == verdicts
        assert memo.misses == before_misses

    def test_prefiltered_rejections_are_cached(self):
        pattern = parse_pattern("ab\\D{3}")
        memo = MatchMemo()
        values = [f"zz{i:04d}" for i in range(100)]  # all fail the prefix
        assert batch_verdicts(pattern, values, memo=memo) == [False] * 100
        again = batch_verdicts(pattern, values, memo=memo)
        assert again == [False] * 100
        assert memo.hits >= 100

    def test_class_mask_any_disables_filter(self):
        assert pattern_class_mask(parse_pattern("\\A{3}")) == ALL_CLASS_BITS
        digit_mask = pattern_class_mask(parse_pattern("\\D{5}"))
        assert digit_mask == CLASS_BITS[CharClass.DIGIT]

    def test_matching_values_preserves_order(self):
        pattern = parse_pattern("\\D{2}")
        values = ["99", "x", "10", "123", "07"]
        assert batch_matching_values(pattern, values) == ["99", "10", "07"]


class TestPairGroupsKernel:
    def test_matches_scalar_extractor_exactly(self):
        lhs = ["b", "a", "a", "b", "c", "a"]
        rhs = ["x", "y", "x", "x", "z", "y"]
        kernel = pair_groups_kernel(lhs, rhs, 0)
        scalar = extract_pair_groups(lhs, rhs, 0)
        assert kernel == scalar
        assert list(kernel) == list(scalar)
        for value in scalar:
            assert list(kernel[value]) == list(scalar[value])

    def test_inner_order_is_first_occurrence_within_group(self):
        # rhs "y" gets a smaller global code than "x" within lhs "a",
        # but "a"'s first row pairs with "y" — the counterexample that
        # breaks a global-code-order implementation
        lhs = ["b", "a", "a"]
        rhs = ["x", "y", "x"]
        kernel = pair_groups_kernel(lhs, rhs, 0)
        assert list(kernel["a"]) == ["y", "x"]
        assert kernel == extract_pair_groups(lhs, rhs, 0)

    def test_offset_globalizes_rows(self):
        lhs = ["a", "a", "b"]
        rhs = ["x", "x", "y"]
        kernel = pair_groups_kernel(lhs, rhs, 100)
        assert kernel == {"a": {"x": row_ids([100, 101])}, "b": {"y": row_ids([102])}}
        # rows are compact arrays but still iterate as plain Python ints
        assert all(
            isinstance(row, int)
            for by_rhs in kernel.values()
            for rows in by_rhs.values()
            for row in rows
        )

    def test_empty_and_single_row(self):
        assert pair_groups_kernel([], [], 0) == {}
        assert pair_groups_kernel(["a"], ["x"], 5) == {"a": {"x": row_ids([5])}}


class TestBatchTokenize:
    COLUMNS = [
        ["New York", "  padded  ", "one", "", "quote's", '"quoted"'],
        ["90210", "902", "", "1", "abcdef"],
        ["a\nb", "tab\tsep", "雪 city", "mixed, punct."],
    ]

    @pytest.mark.parametrize("mode", ["token", "ngram", "prefix"])
    @pytest.mark.parametrize("column", COLUMNS, ids=["words", "codes", "weird"])
    def test_triples_equal_scalar_extraction(self, mode, column):
        encoding = encode_column(column)
        triples = batch_tokenize(encoding, mode, 3)
        scalar = ColumnTokenization.extract(column, mode, 3)
        rebuilt = tokenization_from_encoding(encoding, mode, 3, triples)
        assert rebuilt.row_tokens == scalar.row_tokens
        assert rebuilt.mode == scalar.mode

    def test_unknown_mode_raises(self):
        encoding = encode_column(["x"])
        with pytest.raises(ValueError):
            batch_tokenize(encoding, "chunk", 3)
