"""Differential tests: the kernel path vs. the scalar path, end to end.

The sharding differential suite (``tests/sharding/test_differential.py``)
is the oracle for monolithic-vs-sharded identity; this suite sweeps the
*kernel* axis through the same machinery: for each randomized dirty
table, monolithic and sharded discovery and detection must produce the
identical rule set and canonically equal violations with kernels forced
off, forced on, and left on ``auto`` — configs stay at ``"auto"`` so
:func:`forced_kernel_mode` drives the whole stack through one mode at a
time, exactly as a numpy-less or numpy-full process would run it.
"""

from __future__ import annotations

import pytest

from repro.datagen import build_dataset
from repro.datagen.corruption import CorruptionSpec, ErrorInjector
from repro.detection import DetectionStrategy, ErrorDetector
from repro.discovery import DiscoveryConfig, PfdDiscoverer
from repro.kernels.runtime import forced_kernel_mode
from repro.perf import clear_caches
from repro.sharding import ShardedDetector, ShardedDiscoverer, ShardedTable

GENERATORS = [
    ("zip_city_state", 90, [CorruptionSpec("city", 0.05, kind="swap")]),
    ("phone_state", 80, [CorruptionSpec("state", 0.06, kind="case")]),
    ("fullname_gender", 80, [CorruptionSpec("gender", 0.08, kind="swap")]),
    ("employee_ids", 70, [CorruptionSpec("employee_id", 0.05, kind="typo")]),
]

SEEDS = [3, 58]

MODES = ("off", "on", "auto")

CONFIG = DiscoveryConfig(min_coverage=0.4, allowed_violation_ratio=0.2)


def dirty_table(name: str, n_rows: int, specs, seed: int):
    dataset = build_dataset(name, n_rows=n_rows, seed=seed)
    dirty, _cells = ErrorInjector(seed=seed + 1).corrupt(dataset.table, specs)
    return dirty


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name,n_rows,specs", GENERATORS, ids=lambda v: str(v))
class TestKernelDifferential:
    def test_discovery_identical_across_modes(self, name, n_rows, specs, seed):
        table = dirty_table(name, n_rows, specs, seed)
        results = {}
        for mode in MODES:
            with forced_kernel_mode(mode):
                clear_caches()
                mono = PfdDiscoverer(CONFIG).discover_with_report(table)
                sharded = ShardedDiscoverer(CONFIG).discover_with_report(
                    ShardedTable.from_table(table, 7)
                )
            assert [p.describe() for p in mono.pfds] == [
                p.describe() for p in sharded.pfds
            ], f"mono/sharded rule sets diverged with kernels {mode}"
            results[mode] = (
                [p.describe() for p in mono.pfds],
                [(r.lhs, r.rhs, r.accepted, r.coverage) for r in mono.reports],
            )
        assert results["on"] == results["off"], "kernel rule set diverged"
        assert results["auto"] == results["off"]

    def test_detection_canonically_equal_across_modes(self, name, n_rows, specs, seed):
        table = dirty_table(name, n_rows, specs, seed)
        pfds = PfdDiscoverer(CONFIG).discover(table)
        if not pfds:
            pytest.skip("generator/seed pair discovered no rules")
        violations = {}
        for mode in MODES:
            with forced_kernel_mode(mode):
                clear_caches()
                detector = ErrorDetector(table)
                per_strategy = {
                    strategy: detector.detect_all(
                        pfds, strategy=strategy
                    ).canonical_violations()
                    for strategy in (DetectionStrategy.SCAN, DetectionStrategy.INDEX)
                }
                sharded = (
                    ShardedDetector(ShardedTable.from_table(table, 7))
                    .detect_all(pfds)
                    .canonical_violations()
                )
            assert per_strategy[DetectionStrategy.INDEX] == per_strategy[
                DetectionStrategy.SCAN
            ], f"index/scan diverged with kernels {mode}"
            assert sharded == per_strategy[DetectionStrategy.SCAN], (
                f"sharded detection diverged with kernels {mode}"
            )
            violations[mode] = sharded
        assert violations["on"] == violations["off"], "kernel violations diverged"
        assert violations["auto"] == violations["off"]
