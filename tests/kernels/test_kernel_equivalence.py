"""Kernel/scalar equivalence on randomized columns.

The kernels' contract is *byte identity*, not approximation: the same
tokenization triples, the same match verdicts, the same pair-group maps
(including every key order), and — end to end — the same discovered
rule sets and per-candidate reports whether the kernels are on, off, or
resolved by ``auto``.  Columns mix unicode, empty strings, quotes,
embedded newlines, and code-like values so every token mode and every
prefilter branch is exercised.
"""

from __future__ import annotations

import random

import pytest

from repro.datagen import build_dataset
from repro.datagen.corruption import CorruptionSpec, ErrorInjector
from repro.dataset import Table
from repro.discovery import DiscoveryConfig, PfdDiscoverer
from repro.discovery.inverted_index import ColumnTokenization
from repro.kernels.encoder import encode_column
from repro.kernels.groupby import pair_groups_kernel
from repro.kernels.match import batch_verdicts
from repro.kernels.tokenize import batch_tokenize, tokenization_from_encoding
from repro.patterns import parse_pattern
from repro.perf import clear_caches
from repro.sharding.stats import extract_pair_groups

pytest.importorskip("numpy")

#: pieces the randomized columns are assembled from — deliberately ugly
PIECES = [
    "",
    "New York",
    "90210",
    "902",
    "  spaced  ",
    "O'Hare",
    '"quoted"',
    "line\nbreak",
    "tab\there",
    "Éclair",
    "雪城",
    "A-1",
    "....",
    "UPPER lower 123",
]


def random_column(rng: random.Random, n: int) -> list:
    column = []
    for _ in range(n):
        if rng.random() < 0.55:
            column.append(rng.choice(PIECES))
        else:
            length = rng.randint(1, 9)
            column.append(
                "".join(rng.choice("AaBb019 ?.'\n-É雪") for _ in range(length))
            )
    return column


@pytest.mark.parametrize("seed", [1, 2, 17, 99])
class TestColumnEquivalence:
    def test_tokenization_identical(self, seed):
        rng = random.Random(seed)
        column = random_column(rng, 120)
        encoding = encode_column(column)
        for mode in ("token", "ngram", "prefix"):
            triples = batch_tokenize(encoding, mode, 3)
            kernel = tokenization_from_encoding(encoding, mode, 3, triples)
            scalar = ColumnTokenization.extract(column, mode, 3)
            assert kernel.row_tokens == scalar.row_tokens, (seed, mode)

    def test_match_verdicts_identical(self, seed):
        rng = random.Random(seed)
        column = random_column(rng, 200)
        patterns = ["\\D{5}", "90\\D{3}", "\\LU\\LL+", "\\A+", "\\S{2}", "New York"]
        for text in patterns:
            pattern = parse_pattern(text)
            expected = [pattern.matches(v) for v in column]
            assert batch_verdicts(pattern, column) == expected, (seed, text)

    def test_pair_groups_identical_including_orders(self, seed):
        rng = random.Random(seed)
        lhs = random_column(rng, 150)
        rhs = random_column(rng, 150)
        for offset in (0, 1000):
            kernel = pair_groups_kernel(lhs, rhs, offset)
            scalar = extract_pair_groups(lhs, rhs, offset)
            assert kernel == scalar
            assert list(kernel) == list(scalar), "outer key order diverged"
            for value in scalar:
                assert list(kernel[value]) == list(scalar[value]), (
                    f"inner key order diverged for {value!r}"
                )


def _report_fingerprint(result):
    return [
        (
            r.lhs,
            r.rhs,
            r.accepted,
            r.coverage,
            [
                (
                    c.pattern_text,
                    c.rhs_constant,
                    c.support,
                    c.agreement,
                    c.covered_tuple_ids,
                    c.violating_tuple_ids,
                )
                for c in r.constant_candidates
            ],
            [str(v.constrained_pattern) for v in r.variable_candidates],
        )
        for r in result.reports
    ]


@pytest.mark.parametrize(
    "name,n_rows,specs",
    [
        ("zip_city_state", 90, [CorruptionSpec("city", 0.05, kind="swap")]),
        ("phone_state", 80, [CorruptionSpec("state", 0.06, kind="case")]),
        ("employee_ids", 70, [CorruptionSpec("employee_id", 0.05, kind="typo")]),
    ],
    ids=lambda v: str(v),
)
@pytest.mark.parametrize("seed", [3, 58])
class TestDiscoveryEquivalence:
    def test_kernels_on_off_auto_identical(self, name, n_rows, specs, seed):
        dataset = build_dataset(name, n_rows=n_rows, seed=seed)
        dirty, _cells = ErrorInjector(seed=seed + 1).corrupt(dataset.table, specs)
        config = DiscoveryConfig(min_coverage=0.4, allowed_violation_ratio=0.2)
        results = {}
        for mode in ("off", "on", "auto"):
            clear_caches()
            result = PfdDiscoverer(
                config.with_overrides(use_kernels=mode)
            ).discover_with_report(dirty)
            results[mode] = (
                [p.describe() for p in result.pfds],
                _report_fingerprint(result),
            )
        assert results["on"] == results["off"]
        assert results["auto"] == results["off"]


class TestUglyTableDiscovery:
    def test_randomized_table_identical_rules(self):
        rng = random.Random(5)
        n = 80
        table = Table(
            ["a", "b", "c"],
            [random_column(rng, n), random_column(rng, n), random_column(rng, n)],
        )
        config = DiscoveryConfig(min_coverage=0.2, allowed_violation_ratio=0.3)
        clear_caches()
        off = PfdDiscoverer(
            config.with_overrides(use_kernels="off")
        ).discover_with_report(table)
        clear_caches()
        on = PfdDiscoverer(
            config.with_overrides(use_kernels="on")
        ).discover_with_report(table)
        assert [p.describe() for p in on.pfds] == [p.describe() for p in off.pfds]
        assert _report_fingerprint(on) == _report_fingerprint(off)
