"""Tests for the Figure 3/4/5 and Table 3 report renderers."""

import pytest

from repro.anmat.report import (
    render_discovered_pfds,
    render_profile,
    render_table3,
    render_violations,
)
from repro.anmat.session import AnmatSession
from repro.dataset.profiling import profile_table
from repro.detection.detector import ErrorDetector
from repro.discovery.discoverer import PfdDiscoverer


@pytest.fixture(scope="module")
def session(request):
    dataset = request.getfixturevalue("small_zip_city_state")
    session = AnmatSession(dataset_name="zips")
    session.load_table(dataset.table)
    session.run_profiling()
    session.run_discovery()
    session.confirm_all()
    session.run_detection()
    return session


class TestRenderProfile:
    def test_contains_pattern_position_frequency_rows(self, session):
        text = render_profile(session.profile)
        assert "pattern::position, frequency" in text
        assert "\\D{5}::0," in text
        assert "Column 'zip'" in text

    def test_mentions_row_count(self, session):
        assert f"Profiled {session.table.n_rows} rows" in render_profile(session.profile)

    def test_handles_empty_columns(self, mixed_table):
        extended = mixed_table.with_column("blank", [""] * mixed_table.n_rows)
        text = render_profile(profile_table(extended))
        assert "Column 'blank'" in text


class TestRenderDiscoveredPfds:
    def test_lists_every_pfd_with_tableau(self, session):
        text = render_discovered_pfds(session.discovery, session.confirmed_names)
        for pfd in session.discovered_pfds():
            assert pfd.name in text
        assert "confirmed" in text
        assert "zip | city" in text or "zip | state" in text

    def test_pending_marker_without_confirmation(self, session):
        text = render_discovered_pfds(session.discovery, confirmed=[])
        assert "[pending]" in text


class TestRenderViolations:
    def test_lists_violations_with_records(self, session):
        text = render_violations(session.violations, session.table, max_rows=10)
        assert "violations over" in text
        assert "violated rule" in text

    def test_truncation_notice(self, session):
        if len(session.violations) > 1:
            text = render_violations(session.violations, session.table, max_rows=1)
            assert "more violations" in text

    def test_empty_report(self, session):
        from repro.detection.violation import ViolationReport

        text = render_violations(ViolationReport(n_rows=5), session.table)
        assert "(no violations)" in text


class TestRenderTable3:
    def test_table3_shape(self, small_phone_state, small_fullname_gender):
        entries = []
        for label, dataset, lhs, rhs in (
            ("D1", small_phone_state, "phone_number", "state"),
            ("D2", small_fullname_gender, "full_name", "gender"),
        ):
            result = PfdDiscoverer().discover_with_report(dataset.table)
            pfd = result.pfds_for(lhs, rhs)[0]
            report = ErrorDetector(dataset.table).detect(pfd)
            entries.append((label, f"{lhs} → {rhs}", pfd, report, dataset.table))
        text = render_table3(entries)
        assert "Data" in text and "Pattern Tableau" in text and "Errors" in text
        assert "D1" in text and "D2" in text
        assert "→" in text
