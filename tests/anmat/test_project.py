"""Tests for the JSON project store (the MongoDB stand-in)."""

import pytest

from repro.anmat.project import Project, ProjectStore
from repro.errors import ProjectError
from repro.pfd.pfd import PFD


class TestProjectStore:
    def test_create_open_list(self, tmp_path):
        store = ProjectStore(tmp_path)
        store.create_project("census", description="census cleaning")
        store.create_project("chembl")
        assert store.list_projects() == ["census", "chembl"]
        project = store.open_project("census")
        assert project.description == "census cleaning"

    def test_duplicate_creation_rejected(self, tmp_path):
        store = ProjectStore(tmp_path)
        store.create_project("census")
        with pytest.raises(ProjectError):
            store.create_project("census")

    def test_open_missing_project(self, tmp_path):
        with pytest.raises(ProjectError):
            ProjectStore(tmp_path).open_project("ghost")

    def test_invalid_names(self, tmp_path):
        store = ProjectStore(tmp_path)
        with pytest.raises(ProjectError):
            store.create_project("")
        with pytest.raises(ProjectError):
            store.create_project("a/b")

    def test_get_or_create(self, tmp_path):
        store = ProjectStore(tmp_path)
        first = store.get_or_create("census")
        second = store.get_or_create("census")
        assert first.name == second.name
        assert store.list_projects() == ["census"]

    def test_delete_project(self, tmp_path, mixed_table):
        store = ProjectStore(tmp_path)
        project = store.create_project("census")
        project.add_dataset("people", mixed_table)
        store.delete_project("census")
        assert store.list_projects() == []
        with pytest.raises(ProjectError):
            store.delete_project("census")


class TestProjectDatasets:
    def test_add_and_load_dataset(self, tmp_path, mixed_table):
        project = ProjectStore(tmp_path).create_project("census")
        project.add_dataset("people", mixed_table)
        loaded = project.load_dataset("people")
        assert loaded.column_names() == mixed_table.column_names()
        assert loaded.n_rows == mixed_table.n_rows
        assert "people" in project.datasets

    def test_dataset_listed_after_reload(self, tmp_path, mixed_table):
        store = ProjectStore(tmp_path)
        project = store.create_project("census")
        project.add_dataset("people", mixed_table)
        reopened = store.open_project("census")
        assert reopened.datasets == ["people"]

    def test_missing_dataset(self, tmp_path):
        project = ProjectStore(tmp_path).create_project("census")
        with pytest.raises(ProjectError):
            project.load_dataset("ghost")

    def test_invalid_dataset_name(self, tmp_path, mixed_table):
        project = ProjectStore(tmp_path).create_project("census")
        with pytest.raises(ProjectError):
            project.add_dataset("a/b", mixed_table)


class TestResultPersistence:
    def test_save_and_load_results(self, tmp_path):
        project = ProjectStore(tmp_path).create_project("census")
        project.save_results("people", {"n_violations": 3})
        assert project.load_results("people")["n_violations"] == 3
        with pytest.raises(ProjectError):
            project.load_results("ghost")

    def test_save_and_load_pfds(self, tmp_path):
        project = ProjectStore(tmp_path).create_project("census")
        pfd = PFD.constant(
            "zip", "city", [{"zip": "900\\D{2}", "city": "Los Angeles"}], name="psi1"
        )
        project.save_pfds("people", [pfd], confirmed=["psi1"])
        restored = project.load_pfds("people")
        assert len(restored) == 1
        assert restored[0].name == "psi1"
        assert restored[0].describe() == pfd.describe()

    def test_load_pfds_missing(self, tmp_path):
        project = ProjectStore(tmp_path).create_project("census")
        with pytest.raises(ProjectError):
            project.load_pfds("ghost")
