"""Tests for the AnmatSession workflow (upload → profile → discover →
confirm → detect)."""

import pytest

from repro.anmat.project import ProjectStore
from repro.anmat.session import AnmatSession, SessionState
from repro.detection import ErrorDetector
from repro.discovery.config import DiscoveryConfig
from repro.errors import ProjectError
from repro.metrics.evaluation import evaluate_report


class TestWorkflowOrder:
    def test_initial_state(self):
        session = AnmatSession(dataset_name="demo")
        assert session.state is SessionState.CREATED
        with pytest.raises(ProjectError):
            session.run_profiling()
        with pytest.raises(ProjectError):
            session.run_discovery()

    def test_detection_requires_confirmed_pfds(self, small_zip_city_state):
        session = AnmatSession(dataset_name="demo")
        session.load_table(small_zip_city_state.table)
        session.run_discovery()
        with pytest.raises(ProjectError):
            session.run_detection()

    def test_confirm_unknown_name(self, small_zip_city_state):
        session = AnmatSession(dataset_name="demo")
        session.load_table(small_zip_city_state.table)
        session.run_discovery()
        with pytest.raises(ProjectError):
            session.confirm(["not-a-pfd"])

    def test_confirm_is_atomic(self, small_zip_city_state):
        # Regression: a valid name followed by an unknown one used to be
        # appended to confirmed_names before the error fired, leaving the
        # session half-confirmed.
        session = AnmatSession(dataset_name="demo")
        session.load_table(small_zip_city_state.table)
        session.run_discovery()
        valid = session.discovered_pfds()[0].name
        with pytest.raises(ProjectError):
            session.confirm([valid, "not-a-pfd"])
        assert session.confirmed_names == []
        # and a later all-valid confirm still works
        assert session.confirm([valid]) == [valid]
        assert session.confirmed_names == [valid]


class TestFullWorkflow:
    @pytest.fixture
    def session(self, small_zip_city_state):
        session = AnmatSession(dataset_name="zips")
        session.load_table(small_zip_city_state.table)
        session.set_parameters(min_coverage=0.6, allowed_violation_ratio=0.05)
        return session

    def test_states_advance(self, session):
        assert session.state is SessionState.LOADED
        session.run_profiling()
        assert session.state is SessionState.PROFILED
        session.run_discovery()
        assert session.state is SessionState.DISCOVERED
        session.confirm_all()
        session.run_detection()
        assert session.state is SessionState.DETECTED

    def test_parameters_are_applied(self, session):
        assert session.config.min_coverage == 0.6
        session.set_parameters(min_coverage=0.9)
        assert session.config.min_coverage == 0.9

    def test_discovery_profiles_implicitly(self, session):
        session.run_discovery()
        assert session.profile is not None

    def test_confirm_subset(self, session):
        session.run_discovery()
        names = [pfd.name for pfd in session.discovered_pfds()]
        session.confirm(names[:1])
        assert len(session.confirmed_pfds()) == 1
        report = session.run_detection()
        assert report is session.violations

    def test_detection_finds_injected_errors(self, session, small_zip_city_state):
        session.run_discovery()
        session.confirm_all()
        report = session.run_detection()
        evaluation = evaluate_report(report, small_zip_city_state.error_cells)
        assert evaluation.recall >= 0.8

    def test_repair_suggestions_follow_detection(self, session):
        assert session.repair_suggestions() == []
        session.run_discovery()
        session.confirm_all()
        session.run_detection()
        suggestions = session.repair_suggestions()
        assert suggestions
        assert all(s.suggested_value != s.current_value for s in suggestions)

    def test_summary_contents(self, session):
        session.run_discovery()
        session.confirm_all()
        session.run_detection()
        summary = session.summary()
        assert summary["dataset"] == "zips"
        assert summary["n_pfds"] >= summary["n_confirmed"] > 0
        assert summary["n_violations"] == len(session.violations)


class TestEditLoop:
    @pytest.fixture
    def detected_session(self, small_zip_city_state):
        session = AnmatSession(dataset_name="zips")
        session.load_table(small_zip_city_state.table.copy())
        session.set_parameters(min_coverage=0.6, allowed_violation_ratio=0.05)
        session.run_discovery()
        session.confirm_all()
        session.run_detection()
        return session

    def test_edit_requires_a_detection_run(self, small_zip_city_state):
        session = AnmatSession(dataset_name="demo")
        session.load_table(small_zip_city_state.table.copy())
        with pytest.raises(ProjectError):
            session.edit_cell(0, "city", "X")

    def test_apply_repair_updates_violations_in_place(self, detected_session):
        session = detected_session
        before = len(session.violations)
        suggestion = session.repair_suggestions()[0]
        report = session.apply_repair(suggestion)
        assert session.state is SessionState.EDITING
        assert report is session.violations
        assert len(report) < before
        assert session.table.cell(suggestion.row, suggestion.attribute) == (
            suggestion.suggested_value
        )

    def test_edit_loop_matches_full_redetection(self, detected_session):
        from repro.detection import ErrorDetector

        session = detected_session
        for suggestion in session.repair_suggestions()[:5]:
            session.apply_repair(suggestion)
        full = ErrorDetector(session.table.copy()).detect_all(session.confirmed_pfds())
        assert (
            session.violations.canonical_violations() == full.canonical_violations()
        )

    def test_repairing_everything_empties_the_report(self, detected_session):
        session = detected_session
        # apply_repairs round-by-round (repairs can shift majorities)
        for _ in range(10):
            suggestions = session.repair_suggestions()
            if not suggestions:
                break
            for suggestion in suggestions:
                session.apply_repair(suggestion)
        assert session.violations.is_empty()

    def test_rerunning_detection_returns_to_detected(self, detected_session):
        session = detected_session
        session.edit_cell(0, "city", "Oddville")
        assert session.state is SessionState.EDITING
        in_place = session.violations
        rerun = session.run_detection()
        assert session.state is SessionState.DETECTED
        assert rerun.canonical_violations() == in_place.canonical_violations()

    def test_closing_recheck_persists_results(self, tmp_path, small_phone_state):
        from repro.anmat.project import ProjectStore

        project = ProjectStore(tmp_path).create_project("phones")
        session = AnmatSession(dataset_name="d1", project=project)
        session.load_table(small_phone_state.table.copy())
        session.run_discovery()
        session.confirm_all()
        session.run_detection()
        before_editing = project.load_results("d1")["n_violations"]
        session.apply_repair(session.repair_suggestions()[0])
        # edits do not rewrite project results (one disk write per cell
        # fix would dwarf the incremental update) ...
        assert project.load_results("d1")["n_violations"] == before_editing
        # ... the closing full re-check does
        session.run_detection()
        assert project.load_results("d1")["n_violations"] == len(session.violations)

    def test_loading_a_new_table_drops_the_edit_loop(self, detected_session):
        session = detected_session
        session.edit_cell(0, "city", "Oddville")
        old_table = session.table
        new_table = old_table.copy()
        session.load_table(new_table)
        assert session.violations is None
        with pytest.raises(ProjectError):
            session.edit_cell(1, "city", "Elsewhere")
        # neither table was touched by the rejected edit
        assert old_table.cell(1, "city") == new_table.cell(1, "city")

    def test_bruteforce_detection_supports_the_edit_loop(self, detected_session):
        # bruteforce emission is unified with the blocking strategies, so
        # its reports are incrementally maintainable like any other
        session = detected_session
        before = session.run_detection(strategy="bruteforce")
        after = session.edit_cell(0, "city", "X")
        assert session.state.value == "editing"
        full = ErrorDetector(session.table.copy()).detect_all(
            session.confirmed_pfds(), strategy="bruteforce"
        )
        assert after.canonical_violations() == full.canonical_violations()
        assert before is not after


class TestProjectIntegration:
    def test_session_persists_into_project(self, tmp_path, small_phone_state):
        project = ProjectStore(tmp_path).create_project("phones")
        session = AnmatSession(
            dataset_name="d1", project=project, config=DiscoveryConfig(min_coverage=0.5)
        )
        session.load_table(small_phone_state.table)
        session.run_discovery()
        session.confirm_all()
        session.run_detection()
        # the dataset, the PFDs and the detection summary are all on disk
        assert project.load_dataset("d1").n_rows == small_phone_state.table.n_rows
        assert project.load_pfds("d1")
        assert project.load_results("d1")["n_violations"] == len(session.violations)


class TestShardedSession:
    """The config.shard_rows execution mode and sharded uploads."""

    def _monolithic(self, dataset):
        session = AnmatSession(
            dataset_name="d", config=DiscoveryConfig(min_coverage=0.5)
        )
        session.load_table(dataset.table.copy())
        session.run_discovery()
        session.confirm_all()
        session.run_detection()
        return session

    def test_shard_rows_config_routes_through_sharded_engines(
        self, small_zip_city_state
    ):
        mono = self._monolithic(small_zip_city_state)
        session = AnmatSession(
            dataset_name="d",
            config=DiscoveryConfig(min_coverage=0.5, shard_rows=64),
        )
        session.load_table(small_zip_city_state.table.copy())
        session.run_discovery()
        assert [p.describe() for p in session.discovered_pfds()] == [
            p.describe() for p in mono.discovered_pfds()
        ]
        session.confirm_all()
        report = session.run_detection()
        assert report.strategy == "sharded"
        assert report.canonical_violations() == mono.violations.canonical_violations()

    def test_sharded_upload_is_accepted(self, small_zip_city_state):
        from repro.sharding import ShardedTable

        mono = self._monolithic(small_zip_city_state)
        session = AnmatSession(
            dataset_name="d", config=DiscoveryConfig(min_coverage=0.5)
        )
        session.load_table(ShardedTable.from_table(small_zip_city_state.table, 50))
        assert session.table.n_rows == small_zip_city_state.table.n_rows
        session.run_discovery()
        session.confirm_all()
        report = session.run_detection()
        assert report.strategy == "sharded"
        assert report.canonical_violations() == mono.violations.canonical_violations()

    def test_explicit_strategy_overrides_sharding_and_warns(self, small_zip_city_state):
        from repro.engine import PlanWarning

        session = AnmatSession(
            dataset_name="explicit",
            config=DiscoveryConfig(min_coverage=0.5, shard_rows=64),
        )
        session.load_table(small_zip_city_state.table.copy())
        session.run_discovery()
        session.confirm_all()
        # regression: this fallback used to be silent — the planner must
        # record it on the plan and warn so users know why shard
        # parallelism was skipped
        with pytest.warns(PlanWarning, match="shard parallelism is skipped"):
            report = session.run_detection(strategy="scan")
        assert report.strategy == "scan"
        assert session.last_plan.backend == "serial"
        assert any("skipped" in d for d in session.last_plan.decisions)

    def test_plans_are_exposed_and_recorded(self, small_zip_city_state):
        session = AnmatSession(
            dataset_name="planned",
            config=DiscoveryConfig(min_coverage=0.5, shard_rows=64),
        )
        session.load_table(small_zip_city_state.table.copy())
        plan = session.plan_discovery()
        assert plan.backend == "sharded"
        assert plan.shard_rows == 64
        session.run_discovery()
        assert session.last_plan.kind == "discovery"
        assert session.last_plan.backend == "sharded"
        session.confirm_all()
        session.run_detection()
        assert session.last_plan.kind == "detection"
        assert session.last_plan.backend == "sharded"

    def test_forced_executor_param(self, small_zip_city_state):
        mono = self._monolithic(small_zip_city_state)
        session = AnmatSession(
            dataset_name="d", config=DiscoveryConfig(min_coverage=0.5)
        )
        session.load_table(small_zip_city_state.table.copy())
        session.run_discovery(executor="sharded")
        assert session.last_plan.backend == "sharded"
        assert [p.describe() for p in session.discovered_pfds()] == [
            p.describe() for p in mono.discovered_pfds()
        ]
        session.confirm_all()
        report = session.run_detection(executor="sharded")
        assert report.strategy == "sharded"
        assert report.canonical_violations() == mono.violations.canonical_violations()

    def test_upload_csv_streams_into_store(self, tmp_path, small_zip_city_state):
        from repro.dataset.csvio import write_csv
        from repro.sharding import SpillToDiskShardStore

        mono = self._monolithic(small_zip_city_state)
        path = tmp_path / "zips.csv"
        write_csv(small_zip_city_state.table, path)
        session = AnmatSession(
            dataset_name="streamed", config=DiscoveryConfig(min_coverage=0.5)
        )
        store = SpillToDiskShardStore(tmp_path / "spill")
        session.upload_csv(path, shard_rows=40, store=store)
        assert store.n_shards > 1  # the document was chunked into the store
        assert session.table.n_rows == small_zip_city_state.table.n_rows
        session.run_discovery()
        assert session.last_plan.backend == "sharded"
        assert session.last_plan.shard_rows == 40
        session.confirm_all()
        report = session.run_detection()
        assert report.strategy == "sharded"
        assert report.canonical_violations() == mono.violations.canonical_violations()

    def test_upload_csv_defaults_shard_size_from_config(self, tmp_path, small_zip_city_state):
        from repro.dataset.csvio import write_csv

        path = tmp_path / "zips.csv"
        write_csv(small_zip_city_state.table, path)
        session = AnmatSession(
            dataset_name="cfg", config=DiscoveryConfig(min_coverage=0.5, shard_rows=32)
        )
        session.upload_csv(path)
        assert session.plan_discovery().shard_rows == 32

    def test_edit_loop_works_after_sharded_detection(self, small_zip_city_state):
        session = AnmatSession(
            dataset_name="editable",
            config=DiscoveryConfig(min_coverage=0.5, shard_rows=64),
        )
        session.load_table(small_zip_city_state.table.copy())
        session.run_discovery()
        session.confirm_all()
        session.run_detection()
        suggestions = session.repair_suggestions()
        if not suggestions:
            pytest.skip("no repair suggestions on this seed")
        session.apply_repair(suggestions[0])
        assert session.state is SessionState.EDITING
        # the next sharded re-check sees the edited table, not stale shards
        report = session.run_detection()
        fresh = ErrorDetector(session.table).detect_all(session.confirmed_pfds())
        assert report.canonical_violations() == fresh.canonical_violations()


class TestNeverMaterializedSession:
    """A sharded upload must run the whole workflow — profile, discover,
    detect, edit loop, re-check — without ever stitching a monolithic
    table."""

    def _monolithic(self, dataset):
        session = AnmatSession(
            dataset_name="d", config=DiscoveryConfig(min_coverage=0.5)
        )
        session.load_table(dataset.table.copy())
        session.run_profiling()
        session.run_discovery()
        session.confirm_all()
        session.run_detection()
        return session

    @pytest.fixture
    def forbid_materialization(self, monkeypatch):
        from repro.sharding import ShardedTable, ShardOverlay

        def boom(self, *args, **kwargs):  # pragma: no cover - only on regression
            raise AssertionError("monolithic materialization on the session path")

        monkeypatch.setattr(ShardedTable, "to_table", boom)
        monkeypatch.setattr(ShardOverlay, "materialize", boom)

    def test_full_workflow_with_spill_store(
        self, tmp_path, small_zip_city_state, forbid_materialization
    ):
        from repro.sharding import ShardedTable, ShardOverlay, SpillToDiskShardStore

        mono = self._monolithic(small_zip_city_state)
        store = SpillToDiskShardStore(tmp_path / "spill")
        sharded = ShardedTable.from_table(
            small_zip_city_state.table, 40, store=store
        )
        session = AnmatSession(
            dataset_name="d", config=DiscoveryConfig(min_coverage=0.5)
        )
        session.load_table(sharded)
        assert isinstance(session.table, ShardOverlay)
        assert session.plan_discovery().materialization == "never"
        # profile / discover / detect all equal the monolithic run
        assert session.run_profiling() == mono.profile
        session.run_discovery()
        assert [p.describe() for p in session.discovered_pfds()] == [
            p.describe() for p in mono.discovered_pfds()
        ]
        session.confirm_all()
        report = session.run_detection()
        assert report.canonical_violations() == mono.violations.canonical_violations()
        # the edit loop lands in the overlay and the re-check matches a
        # fresh detection over the edited view
        suggestions = session.repair_suggestions()
        if not suggestions:
            pytest.skip("no repair suggestions on this seed")
        session.apply_repair(suggestions[0])
        assert session.state is SessionState.EDITING
        recheck = session.run_detection()
        fresh = ErrorDetector(session.table).detect_all(session.confirmed_pfds())
        assert recheck.canonical_violations() == fresh.canonical_violations()
        session.close()

    def test_detection_plan_records_store_and_materialization(
        self, small_zip_city_state
    ):
        from repro.sharding import ShardedTable

        session = AnmatSession(
            dataset_name="planned",
            config=DiscoveryConfig(min_coverage=0.5, store="spill"),
        )
        session.load_table(ShardedTable.from_table(small_zip_city_state.table, 50))
        plan = session.plan_detection()
        assert plan.materialization == "never"
        assert plan.store == "spill"
        assert "store=spill" in plan.describe()
        assert any("materialization=never" in d for d in plan.decisions)
        session.close()

    def test_forced_serial_backend_materializes_eagerly(self, small_zip_city_state):
        from repro.sharding import ShardedTable

        mono = self._monolithic(small_zip_city_state)
        session = AnmatSession(
            dataset_name="d", config=DiscoveryConfig(min_coverage=0.5)
        )
        session.load_table(ShardedTable.from_table(small_zip_city_state.table, 50))
        plan = session.plan_discovery(executor="serial")
        assert plan.materialization == "eager"
        session.run_discovery(executor="serial")
        assert [p.describe() for p in session.discovered_pfds()] == [
            p.describe() for p in mono.discovered_pfds()
        ]
        session.close()


class TestSessionLifecycle:
    def test_close_releases_the_upload_store(self, tmp_path, small_zip_city_state):
        from repro.dataset.csvio import write_csv
        from repro.sharding import SpillToDiskShardStore

        path = tmp_path / "zips.csv"
        write_csv(small_zip_city_state.table, path)
        session = AnmatSession(dataset_name="closing")
        store = SpillToDiskShardStore()  # private tempdir
        session.upload_csv(path, shard_rows=40, store=store)
        directory = store.directory
        assert directory.exists()
        session.close()
        assert not directory.exists()
        assert session.table is None

    def test_context_manager_closes(self, tmp_path, small_zip_city_state):
        from repro.dataset.csvio import write_csv
        from repro.sharding import SpillToDiskShardStore

        path = tmp_path / "zips.csv"
        write_csv(small_zip_city_state.table, path)
        store = SpillToDiskShardStore()
        with AnmatSession(dataset_name="ctx") as session:
            session.upload_csv(path, shard_rows=40, store=store)
            directory = store.directory
            assert directory.exists()
        assert not directory.exists()

    def test_load_table_closes_the_replaced_store(self, small_zip_city_state):
        from repro.sharding import ShardedTable, SpillToDiskShardStore

        store = SpillToDiskShardStore()
        sharded = ShardedTable.from_table(small_zip_city_state.table, 40, store=store)
        session = AnmatSession(dataset_name="replace")
        session.load_table(sharded)
        directory = store.directory
        assert directory.exists()
        session.load_table(small_zip_city_state.table.copy())
        assert not directory.exists()
        # the session keeps working on the new table
        session.run_discovery()
        session.close()

    def test_failing_upload_releases_the_object_root(
        self, tmp_path, small_zip_city_state
    ):
        # regression: a put that kept failing mid-upload used to leak
        # the object root — the store was adopted only after from_chunks
        # succeeded, so nothing closed it on the error path
        from repro.dataset.csvio import write_csv
        from repro.sharding import (
            FaultInjectingClient,
            LocalObjectClient,
            ObjectShardStore,
            ObjectStoreError,
            RetryPolicy,
        )

        path = tmp_path / "zips.csv"
        write_csv(small_zip_city_state.table, path)
        client = FaultInjectingClient(
            LocalObjectClient(),  # private tempdir — the leakable root
            script=[("put", "transient")] * 99,
        )
        root = client.inner.root
        store = ObjectShardStore(
            client=client,
            owns_client=True,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
        )
        with pytest.raises(ObjectStoreError, match="upload failed"):
            with AnmatSession(dataset_name="leaky") as session:
                session.upload_csv(path, shard_rows=40, store=store)
        assert not root.exists(), "object root leaked after a failed upload"

    def test_upload_store_comes_from_config(self, tmp_path, small_zip_city_state):
        from repro.dataset.csvio import write_csv
        from repro.sharding import SpillToDiskShardStore

        path = tmp_path / "zips.csv"
        write_csv(small_zip_city_state.table, path)
        session = AnmatSession(
            dataset_name="cfg-store",
            config=DiscoveryConfig(
                shard_rows=40, store="spill", spill_dir=str(tmp_path / "spill")
            ),
        )
        session.upload_csv(path)
        source_store = session._source._upload_sharded.store
        assert isinstance(source_store, SpillToDiskShardStore)
        assert source_store.directory == tmp_path / "spill"
        session.close()

    def test_close_is_idempotent_and_resets_state(self):
        session = AnmatSession(dataset_name="idempotent")
        session.close()
        session.close()
        with pytest.raises(ProjectError):
            session.run_profiling()


class TestRecheckShardSize:
    """Regression: a re-check after edits must inherit the upload's
    custom shard size instead of silently re-sharding at the default —
    a repartition would both change the plan shape and defeat the rule
    maintainer (whose baseline versions only align on the same shards)."""

    def _custom_sharded_session(self, small_zip_city_state, shard_rows=50):
        from repro.sharding import ShardedTable

        sharded = ShardedTable.from_table(small_zip_city_state.table, shard_rows)
        session = AnmatSession(dataset_name="custom-shards")
        session.set_parameters(min_coverage=0.5)
        session.load_table(sharded)
        return session, sharded.n_shards

    def test_recheck_keeps_the_uploads_shard_size(self, small_zip_city_state):
        session, n_shards = self._custom_sharded_session(small_zip_city_state)
        session.run_discovery()
        assert session.last_plan.shard_rows == 50
        session.table.set_cell(3, "city", "Mutated")
        session.recheck()
        plan = session.last_plan
        assert plan.shard_rows == 50, (
            "recheck re-sharded at a different size than the upload"
        )
        assert plan.n_shards == n_shards
        assert any("shard size of 50 rows" in d for d in plan.decisions)
        # and because the partition matched, maintenance ran incrementally
        assert plan.rule_maintenance == "incremental"
        assert session._source.sharded_view(plan.shard_rows).n_shards == n_shards
        session.close()

    def test_recheck_after_edit_loop_keeps_shard_size(self, small_zip_city_state):
        session, n_shards = self._custom_sharded_session(small_zip_city_state)
        session.run_discovery()
        session.confirm_all()
        session.run_detection()
        session.edit_cell(7, "city", "Springfield")
        session.recheck()
        assert session.last_plan.shard_rows == 50
        assert session.last_plan.n_shards == n_shards
        assert session.state is SessionState.DETECTED
        session.close()
